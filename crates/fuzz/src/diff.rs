//! The differential check: one kernel, one adversarial configuration, all
//! execution semantics cross-checked bitwise.
//!
//! For a program that survives the frontend, the driver runs the full
//! equivalence lattice the repo pins in its property tests, at a *single*
//! randomly sampled configuration:
//!
//! * `f64` domain — compiled vs tree-walking reference for the whole-frame,
//!   tiled and cone-DAG decompositions, plus tiled == whole for local
//!   borders, plus a serial-vs-parallel sweep;
//! * quantised domain — the same lattice at an adversarial fixed-point
//!   width (the ladder includes 8, 18, 31, 54, 63 and 64 bits);
//! * integer co-simulation — golden vectors recorded and re-verified with
//!   [`isl_vhdl::check::verify_vectors`] (integer-exact at any width), and
//!   for formats whose raw words round-trip through `f64` (width ≤ 54)
//!   the whole integer cone-level run is compared **bit-for-bit** against
//!   the quantised cone-DAG engine.
//!
//! Every comparison is `f64::to_bits` equality — "close" is not a verdict.
//! A run that errors is only consistent if its reference twin errors with
//! the same message.

use isl_cosim::CoSimulator;
use isl_fpga::FixedFormat;
use isl_ir::{Cone, Window};
use isl_sim::harness::{run_f64, run_quantized, Engine, RunSpec, Semantics};
use isl_sim::{synthetic, BorderMode, FrameSet, Quantizer, SimError, Simulator};
use isl_vhdl::check::verify_vectors;

use crate::rng::Rng;

/// Fixed-point widths the sampler draws from: the byte boundary, the
/// DSP-friendly default, odd widths straddling `i32`, the largest width
/// whose raw words survive an `f64` round trip, and the `i64` rails.
pub const WIDTH_LADDER: [u32; 6] = [8, 18, 31, 54, 63, 64];

/// One adversarial execution configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Fixed-point word width in bits.
    pub width: u32,
    /// Fractional bits.
    pub frac: u32,
    /// Border resolution mode.
    pub border: BorderMode,
    /// Cone output window.
    pub window: Window,
    /// Cone depth (deliberately often a non-divisor of `iterations`).
    pub depth: u32,
    /// Worker-thread cap for the compiled engines.
    pub threads: usize,
    /// Frame width in elements.
    pub frame_w: usize,
    /// Frame height in elements (forced to 1 for rank-1 kernels).
    pub frame_h: usize,
    /// Iteration count.
    pub iterations: u32,
    /// Seed for the synthetic input frames.
    pub frame_seed: u64,
}

impl DiffConfig {
    /// Sample an adversarial configuration.
    pub fn sample(rng: &mut Rng) -> Self {
        let width = WIDTH_LADDER[rng.below(WIDTH_LADDER.len())];
        // Leave integer headroom; wide words get a deep fraction.
        let frac = (width / 2 + rng.below(1 + width as usize / 4) as u32).min(width - 1);
        let border = match rng.below(4) {
            0 => BorderMode::Clamp,
            1 => BorderMode::Mirror,
            2 => BorderMode::Wrap,
            _ => BorderMode::Constant(0.25),
        };
        let iterations = rng.range_i64(2, 6) as u32;
        DiffConfig {
            width,
            frac,
            border,
            window: Window::rect(
                rng.range_i64(2, 5) as u32,
                rng.range_i64(2, 5) as u32,
            ),
            // 1..=4 with no divisibility relation to `iterations` enforced:
            // remainder levels are exactly the schedule we want to stress.
            depth: rng.range_i64(1, 4) as u32,
            threads: *rng.pick(&[1usize, 2, 4]),
            frame_w: rng.range_i64(6, 12) as usize,
            frame_h: rng.range_i64(5, 10) as usize,
            iterations,
            frame_seed: rng.u64(),
        }
    }

    /// A fixed, cheap configuration for smoke tests.
    pub fn small() -> Self {
        DiffConfig {
            width: 18,
            frac: 10,
            border: BorderMode::Clamp,
            window: Window::square(3),
            depth: 2,
            threads: 1,
            frame_w: 7,
            frame_h: 5,
            iterations: 3,
            frame_seed: 0x5EED,
        }
    }

    /// The fixed-point format of this configuration.
    pub fn format(&self) -> FixedFormat {
        FixedFormat::new(self.width, self.frac)
    }
}

/// A single failed cross-check.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Which equivalence broke (e.g. `tiled-quantized vs reference`).
    pub check: String,
    /// First divergence, with both values as bit patterns.
    pub detail: String,
}

/// The verdict of one differential iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffOutcome {
    /// Every applicable cross-check held bitwise.
    Agree {
        /// Number of cross-checks that ran.
        checks: usize,
    },
    /// The frontend or symbolic executor rejected the program — a
    /// structured rejection, not a failure.
    CompileError(String),
    /// Two semantics disagreed: a bug in at least one of them.
    Mismatch(Mismatch),
}

/// Synthetic input frames for `pattern`: one noise frame per field.
pub fn frames_for(
    pattern: &isl_ir::StencilPattern,
    w: usize,
    h: usize,
    seed: u64,
) -> FrameSet {
    FrameSet::from_frames(
        pattern
            .fields()
            .iter()
            .enumerate()
            .map(|(i, _)| synthetic::noise(w, h, seed ^ ((i as u64) << 32)))
            .collect(),
    )
    .expect("congruent noise frames")
}

fn first_diff(a: &FrameSet, b: &FrameSet) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("frame counts differ: {} vs {}", a.len(), b.len()));
    }
    for fi in 0..a.len() {
        let (fa, fb) = (a.frame(fi), b.frame(fi));
        for (i, (x, y)) in fa.as_slice().iter().zip(fb.as_slice()).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Some(format!(
                    "frame {fi} element {i}: {x:?} ({:#018x}) vs {y:?} ({:#018x})",
                    x.to_bits(),
                    y.to_bits()
                ));
            }
        }
    }
    None
}

/// Compare two runs that may each have failed: bitwise-equal successes or
/// identically-worded errors are consistent, anything else is a mismatch.
fn cross_check(
    check: &str,
    a: Result<FrameSet, SimError>,
    b: Result<FrameSet, SimError>,
    mismatches: &mut Vec<Mismatch>,
) -> usize {
    match (a, b) {
        (Ok(fa), Ok(fb)) => {
            if let Some(detail) = first_diff(&fa, &fb) {
                mismatches.push(Mismatch { check: check.into(), detail });
            }
            1
        }
        (Err(ea), Err(eb)) => {
            if ea.to_string() != eb.to_string() {
                mismatches.push(Mismatch {
                    check: check.into(),
                    detail: format!("errors disagree: `{ea}` vs `{eb}`"),
                });
            }
            1
        }
        (Ok(_), Err(e)) => {
            mismatches.push(Mismatch {
                check: check.into(),
                detail: format!("left ran, right failed: {e}"),
            });
            1
        }
        (Err(e), Ok(_)) => {
            mismatches.push(Mismatch {
                check: check.into(),
                detail: format!("left failed, right ran: {e}"),
            });
            1
        }
    }
}

/// Compile `source` through the real frontend and run the full
/// differential matrix at `cfg`.
pub fn run_differential(source: &str, cfg: &DiffConfig) -> DiffOutcome {
    let (pattern, _info) = match isl_symexec::compile_str(source) {
        Ok(p) => p,
        Err(e) => return DiffOutcome::CompileError(e.to_string()),
    };
    let rank1 = pattern.rank() == 1;
    let frame_h = if rank1 { 1 } else { cfg.frame_h };
    let window = if rank1 { Window::line(cfg.window.w) } else { cfg.window };

    let sim = match Simulator::new(&pattern) {
        Ok(s) => s,
        Err(e) => return DiffOutcome::CompileError(format!("simulator rejected pattern: {e}")),
    };
    let sim = sim.with_border(cfg.border).with_threads(cfg.threads);
    let serial = Simulator::new(&pattern)
        .expect("already validated")
        .with_border(cfg.border)
        .with_threads(1);

    let init = frames_for(&pattern, cfg.frame_w, frame_h, cfg.frame_seed);
    let q = Quantizer::new(cfg.width, cfg.frac);
    let fmt = cfg.format();
    let local = cfg.border.is_local();

    let mut checks = 0usize;
    let mut mismatches = Vec::new();

    // -- f64 and quantised lattices ------------------------------------
    for semantics in Semantics::ALL {
        if semantics == Semantics::Tiled && !local {
            continue; // tiled paths reject non-local borders by contract
        }
        let spec = RunSpec { semantics, iterations: cfg.iterations, window, depth: cfg.depth };
        checks += cross_check(
            &format!("f64 {} compiled vs reference", semantics.name()),
            run_f64(&sim, spec, Engine::Compiled, &init),
            run_f64(&sim, spec, Engine::Reference, &init),
            &mut mismatches,
        );
        checks += cross_check(
            &format!("quantized {} compiled vs reference", semantics.name()),
            run_quantized(&sim, spec, Engine::Compiled, &init, q),
            run_quantized(&sim, spec, Engine::Reference, &init, q),
            &mut mismatches,
        );
        checks += cross_check(
            &format!("f64 {} parallel vs serial", semantics.name()),
            run_f64(&sim, spec, Engine::Compiled, &init),
            run_f64(&serial, spec, Engine::Compiled, &init),
            &mut mismatches,
        );
    }
    if local {
        let spec = RunSpec {
            semantics: Semantics::Tiled,
            iterations: cfg.iterations,
            window,
            depth: cfg.depth,
        };
        checks += cross_check(
            "f64 tiled vs whole-frame",
            run_f64(&sim, spec, Engine::Compiled, &init),
            sim.run(&init, cfg.iterations),
            &mut mismatches,
        );
        checks += cross_check(
            "quantized tiled vs whole-frame",
            run_quantized(&sim, spec, Engine::Compiled, &init, q),
            sim.run_quantized(&init, cfg.iterations, q),
            &mut mismatches,
        );
    }

    // -- integer co-simulation leg -------------------------------------
    match CoSimulator::new(&pattern, fmt) {
        Ok(cosim) => {
            let cosim = cosim.with_border(cfg.border);
            match cosim.golden_vectors(&init, cfg.iterations, window, cfg.depth) {
                Ok(files) => {
                    for file in &files {
                        checks += 1;
                        match Cone::build(&pattern, file.window, file.depth) {
                            Ok(cone) => {
                                if let Err(e) = verify_vectors(&cone, fmt, file) {
                                    mismatches.push(Mismatch {
                                        check: format!(
                                            "golden vectors (w{} d{}) self-verify",
                                            file.window, file.depth
                                        ),
                                        detail: e.to_string(),
                                    });
                                }
                            }
                            Err(e) => mismatches.push(Mismatch {
                                check: "cone build for recorded vectors".into(),
                                detail: e.to_string(),
                            }),
                        }
                    }
                }
                Err(e) => {
                    // The cosim cone-level run must agree with the quantised
                    // engine even about rejection.
                    checks += 1;
                    if sim
                        .run_cone_dag_quantized(&init, cfg.iterations, window, cfg.depth, q)
                        .is_ok()
                    {
                        mismatches.push(Mismatch {
                            check: "cosim golden vectors vs quantized cone-DAG".into(),
                            detail: format!("cosim failed where the engine ran: {e}"),
                        });
                    }
                }
            }
            // Raw words round-trip exactly through f64 only up to 54 bits;
            // beyond that the bitwise integer-vs-quantized contract cannot
            // be stated through a dequantise.
            if cfg.width <= 54 {
                checks += cross_check(
                    "integer cone levels vs quantized cone-DAG",
                    cosim
                        .run_cone_levels(&init, cfg.iterations, window, cfg.depth)
                        .map(|int| int.dequantize(fmt))
                        .map_err(|e| SimError::Cone(e.to_string())),
                    sim.run_cone_dag_quantized(&init, cfg.iterations, window, cfg.depth, q)
                        .map_err(|e| SimError::Cone(e.to_string())),
                    &mut mismatches,
                );
            }
        }
        Err(e) => {
            return DiffOutcome::CompileError(format!("cosim rejected pattern: {e}"));
        }
    }

    match mismatches.into_iter().next() {
        Some(m) => DiffOutcome::Mismatch(m),
        None => DiffOutcome::Agree { checks },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLUR: &str = r#"
#pragma isl iterations 3
void blur(const float a[H][W], float a_out[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            a_out[y][x] = (a[y][x] + a[y][x-1] + a[y-1][x] + a[y][x+1] + a[y+1][x]) / 8.0f;
        }
    }
}
"#;

    #[test]
    fn known_good_kernel_agrees_everywhere() {
        let out = run_differential(BLUR, &DiffConfig::small());
        match out {
            DiffOutcome::Agree { checks } => assert!(checks >= 10, "only {checks} checks ran"),
            other => panic!("expected agreement, got {other:?}"),
        }
    }

    #[test]
    fn wrap_border_skips_tiled_but_still_checks() {
        let cfg = DiffConfig { border: BorderMode::Wrap, ..DiffConfig::small() };
        match run_differential(BLUR, &cfg) {
            DiffOutcome::Agree { checks } => assert!(checks >= 6),
            other => panic!("expected agreement, got {other:?}"),
        }
    }

    #[test]
    fn wide_words_stay_integer_exact() {
        let cfg = DiffConfig { width: 64, frac: 32, ..DiffConfig::small() };
        match run_differential(BLUR, &cfg) {
            DiffOutcome::Agree { .. } => {}
            other => panic!("expected agreement at width 64, got {other:?}"),
        }
    }

    #[test]
    fn broken_source_reports_compile_error() {
        match run_differential("void broken(", &DiffConfig::small()) {
            DiffOutcome::CompileError(_) => {}
            other => panic!("expected compile error, got {other:?}"),
        }
    }

    #[test]
    fn sampled_configs_are_plausible() {
        let mut rng = Rng::new(3);
        for _ in 0..200 {
            let c = DiffConfig::sample(&mut rng);
            assert!(c.frac < c.width);
            assert!(c.depth >= 1 && c.iterations >= 2);
            assert!(c.frame_w >= c.window.w as usize);
        }
    }
}
