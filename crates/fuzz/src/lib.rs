//! # isl-fuzz — the reliability subsystem
//!
//! The repo pins its execution semantics with property tests over
//! hand-picked patterns. This crate turns that spot-check into a standing
//! adversarial process, with two engines:
//!
//! ## 1. The differential fuzzer
//!
//! [`gen::generate`] emits random-but-plausible stencil kernels **as C
//! source text**, so every case travels the full production pipeline:
//! lexer → parser → semantic analysis → symbolic execution → pattern. Each
//! surviving program is executed at an adversarial [`DiffConfig`] (widths
//! from the ladder 8/18/31/54/63/64, all border modes, non-divisor cone
//! depths, 1–4 threads) through **all execution semantics** — the
//! tree-walking reference, the compiled engines, the quantised lane
//! engines and the integer co-simulation VM — and every pinned equivalence
//! is cross-checked with `f64::to_bits` equality ([`run_differential`]).
//!
//! A mismatch is automatically minimised ([`mod@shrink`]: statement
//! delta-debugging through the real parser and pretty-printer, operand
//! simplification, configuration shrinking) and persisted as a replayable
//! [`CorpusEntry`] — the regression corpus in `tests/corpus/` replays
//! through CI forever after.
//!
//! ## 2. Fault-injection campaigns
//!
//! [`isl_cosim::CoSimulator::fault_campaign`] (driven here by the
//! `isl-fuzz campaign` binary and surfaced in the staged API as
//! `Certified::fault_campaign`) sweeps every instruction of an
//! architecture's cone programs against transient bit-flips and stuck-at
//! faults, classifying each as detected / masked / silent and confirming
//! every detection at instruction granularity through vector triage. The
//! quantified output — detection rate, per-level breakdown, detection
//! latency in windows — is the reliability evidence the DAC'13 flow's
//! certification stage was missing.
//!
//! ## 3. Frontend robustness
//!
//! [`fuzz_frontend`] mangles real kernel sources byte- and token-wise and
//! asserts the frontend always *returns* — structured errors are fine,
//! panics are findings. The frontend's nesting budget and the symbolic
//! executor's step/size/offset budgets exist because of this campaign.
//!
//! ## 4. Persistence-format fuzzing
//!
//! [`run_persist_campaign`] attacks the `isl-persist` on-disk store
//! format: random record sets are round-tripped bit-identically, version
//! bumps must invalidate wholesale, and saved images are corrupted with
//! bit flips, garbage runs, truncation and duplicated regions — every
//! load must *return* (panics are findings), every surviving record must
//! be one that was really written, and everything else must be counted
//! as skipped. Violations are shrunk by byte-range delta-debugging; the
//! canonical corruption fixtures live in `tests/corpus/persist/`.
//!
//! Everything is deterministic from a 64-bit seed ([`Rng`] wraps the same
//! SplitMix64 that generates workload frames), so any finding replays
//! exactly from its reported seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod diff;
pub mod gen;
pub mod mutate;
pub mod persist;
pub mod rng;
pub mod shrink;

pub use corpus::{load_dir, CorpusEntry};
pub use diff::{frames_for, run_differential, DiffConfig, DiffOutcome, Mismatch, WIDTH_LADDER};
pub use gen::generate;
pub use mutate::{fuzz_frontend, MutationReport, PanicCase};
pub use persist::{
    replay_fixtures, run_persist_campaign, PersistCampaignReport, PersistFailure,
};
pub use rng::Rng;
pub use shrink::{shrink, shrink_with};

/// Outcome tally of a differential campaign ([`run_campaign`]).
#[derive(Debug, Clone, Default)]
pub struct DiffCampaignReport {
    /// Iterations attempted.
    pub iterations: usize,
    /// Programs that compiled and agreed across all semantics.
    pub agreed: usize,
    /// Cross-checks that ran in total.
    pub checks: usize,
    /// Programs the frontend rejected (structured errors — expected).
    pub rejected: usize,
    /// Minimised mismatches, as replayable corpus entries.
    pub failures: Vec<CorpusEntry>,
}

/// A progress sample of a running differential campaign, handed to the
/// [`run_campaign_with_progress`] callback every `every` iterations (and
/// once more at the end of the run).
#[derive(Debug, Clone, Copy)]
pub struct DiffProgress {
    /// Iterations completed so far.
    pub iteration: usize,
    /// Iterations the campaign will run in total.
    pub iterations: usize,
    /// Campaign throughput since the start, iterations per second.
    pub iters_per_sec: f64,
    /// Cross-checks that ran so far.
    pub checks: usize,
    /// Programs the frontend rejected so far.
    pub rejected: usize,
    /// Mismatches found (the growth of the failure corpus) so far.
    pub corpus_size: usize,
}

/// Run a seeded differential campaign: generate, execute, cross-check and
/// (on mismatch) shrink, `iterations` times.
///
/// `shrink_budget` bounds the re-check count spent minimising each
/// failure; pass 0 to keep raw counterexamples.
pub fn run_campaign(iterations: usize, seed: u64, shrink_budget: usize) -> DiffCampaignReport {
    run_campaign_with_progress(iterations, seed, shrink_budget, 0, |_| {})
}

/// [`run_campaign`] with a progress feed: `on_progress` is called with a
/// [`DiffProgress`] sample every `every` completed iterations and once at
/// the end of the run (`every == 0` reports only the final sample).
///
/// With telemetry enabled ([`isl_telemetry::enabled`]) the loop also
/// feeds the global collector: one `fuzz.iters` count per iteration,
/// `fuzz.checks` per cross-check, and a `fuzz.corpus` counter that grows
/// with every minimised mismatch, all under a `("fuzz", "diff campaign")`
/// span.
pub fn run_campaign_with_progress(
    iterations: usize,
    seed: u64,
    shrink_budget: usize,
    every: usize,
    mut on_progress: impl FnMut(&DiffProgress),
) -> DiffCampaignReport {
    let _span = isl_telemetry::span("fuzz", "diff campaign");
    let start = std::time::Instant::now();
    let mut rng = Rng::new(seed);
    let mut report = DiffCampaignReport::default();
    let progress = |report: &DiffCampaignReport| DiffProgress {
        iteration: report.iterations,
        iterations,
        iters_per_sec: report.iterations as f64 / start.elapsed().as_secs_f64().max(1e-9),
        checks: report.checks,
        rejected: report.rejected,
        corpus_size: report.failures.len(),
    };
    for i in 0..iterations {
        let source = generate(&mut rng);
        let config = DiffConfig::sample(&mut rng);
        report.iterations += 1;
        isl_telemetry::add("fuzz.iters", 1);
        match run_differential(&source, &config) {
            DiffOutcome::Agree { checks } => {
                report.agreed += 1;
                report.checks += checks;
                isl_telemetry::add("fuzz.checks", checks as u64);
            }
            DiffOutcome::CompileError(_) => report.rejected += 1,
            DiffOutcome::Mismatch(_) => {
                let (src, cfg) = if shrink_budget > 0 {
                    shrink(&source, &config, shrink_budget)
                } else {
                    (source.clone(), config)
                };
                report.failures.push(CorpusEntry {
                    name: format!("shrunk-{seed:#x}-{i}"),
                    config: cfg,
                    source: src,
                });
                isl_telemetry::add("fuzz.corpus", 1);
            }
        }
        if every > 0 && report.iterations % every == 0 {
            on_progress(&progress(&report));
        }
    }
    // Final sample, unless the last loop iteration just emitted it.
    if every == 0 || iterations == 0 || !iterations.is_multiple_of(every) {
        on_progress(&progress(&report));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let a = run_campaign(15, 0xC0FFEE, 50);
        assert_eq!(a.iterations, 15);
        assert!(
            a.failures.is_empty(),
            "differential mismatch: {}",
            a.failures[0].to_text()
        );
        assert!(a.agreed > 0, "nothing compiled in 15 iterations");
        let b = run_campaign(15, 0xC0FFEE, 50);
        assert_eq!(a.agreed, b.agreed);
        assert_eq!(a.checks, b.checks);
    }
}
