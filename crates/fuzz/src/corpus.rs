//! The replayable regression corpus.
//!
//! Every mismatch the fuzzer ever finds is persisted as a plain `.c` file
//! whose first line is a `// fuzz:` header encoding the exact
//! [`DiffConfig`] that exposed it. The CI regression test replays every
//! entry through all execution semantics on every run, so a fixed bug
//! stays fixed.
//!
//! ```text
//! // fuzz: width=18 frac=10 border=mirror window=4x3 depth=3 threads=2 frames=9x7 iters=5 seed=0x5eed
//! #pragma isl iterations 5
//! void fuzzed(const float a[H][W], float a_out[H][W]) { ... }
//! ```

use std::fmt::Write as _;
use std::path::Path;

use isl_sim::BorderMode;

use crate::diff::DiffConfig;

/// One corpus entry: a kernel plus the configuration that exposed it.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// File stem the entry was loaded from (or will be saved under).
    pub name: String,
    /// The configuration to replay at.
    pub config: DiffConfig,
    /// Kernel source (without the header line).
    pub source: String,
}

fn border_str(b: BorderMode) -> String {
    match b {
        BorderMode::Clamp => "clamp".into(),
        BorderMode::Mirror => "mirror".into(),
        BorderMode::Wrap => "wrap".into(),
        BorderMode::Constant(v) => format!("constant:{v}"),
    }
}

fn parse_border(s: &str) -> Result<BorderMode, String> {
    match s {
        "clamp" => Ok(BorderMode::Clamp),
        "mirror" => Ok(BorderMode::Mirror),
        "wrap" => Ok(BorderMode::Wrap),
        _ => match s.strip_prefix("constant:") {
            Some(v) => v
                .parse::<f64>()
                .map(BorderMode::Constant)
                .map_err(|e| format!("bad constant border `{s}`: {e}")),
            None => Err(format!("unknown border mode `{s}`")),
        },
    }
}

impl CorpusEntry {
    /// Serialise as header line + source.
    pub fn to_text(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "// fuzz: width={} frac={} border={} window={}x{} depth={} threads={} frames={}x{} iters={} seed={:#x}",
            c.width,
            c.frac,
            border_str(c.border),
            c.window.w,
            c.window.h,
            c.depth,
            c.threads,
            c.frame_w,
            c.frame_h,
            c.iterations,
            c.frame_seed,
        );
        out.push_str(&self.source);
        out
    }

    /// Parse an entry back from its on-disk text.
    ///
    /// # Errors
    ///
    /// A description of the malformed or missing header field.
    pub fn parse(name: &str, text: &str) -> Result<CorpusEntry, String> {
        let (header, source) = text
            .split_once('\n')
            .ok_or_else(|| "empty corpus file".to_string())?;
        let fields = header
            .strip_prefix("// fuzz:")
            .ok_or_else(|| format!("`{name}`: first line is not a `// fuzz:` header"))?;
        let mut config = DiffConfig::small();
        let mut seen_width = false;
        for kv in fields.split_whitespace() {
            let (key, value) = kv
                .split_once('=')
                .ok_or_else(|| format!("`{name}`: malformed field `{kv}`"))?;
            let num = |v: &str| -> Result<u64, String> {
                let (digits, radix) = match v.strip_prefix("0x") {
                    Some(h) => (h, 16),
                    None => (v, 10),
                };
                u64::from_str_radix(digits, radix)
                    .map_err(|e| format!("`{name}`: bad value `{v}` for `{key}`: {e}"))
            };
            let pair = |v: &str, sep: char| -> Result<(u64, u64), String> {
                let (a, b) = v
                    .split_once(sep)
                    .ok_or_else(|| format!("`{name}`: bad pair `{v}` for `{key}`"))?;
                Ok((num(a)?, num(b)?))
            };
            match key {
                "width" => {
                    config.width = num(value)? as u32;
                    seen_width = true;
                }
                "frac" => config.frac = num(value)? as u32,
                "border" => config.border = parse_border(value).map_err(|e| format!("`{name}`: {e}"))?,
                "window" => {
                    let (w, h) = pair(value, 'x')?;
                    config.window = isl_ir::Window::rect(w as u32, h as u32);
                }
                "depth" => config.depth = num(value)? as u32,
                "threads" => config.threads = num(value)? as usize,
                "frames" => {
                    let (w, h) = pair(value, 'x')?;
                    config.frame_w = w as usize;
                    config.frame_h = h as usize;
                }
                "iters" => config.iterations = num(value)? as u32,
                "seed" => config.frame_seed = num(value)?,
                other => return Err(format!("`{name}`: unknown field `{other}`")),
            }
        }
        if !seen_width {
            return Err(format!("`{name}`: header missing `width`"));
        }
        Ok(CorpusEntry {
            name: name.to_string(),
            config,
            source: source.to_string(),
        })
    }
}

/// Load every `.c` entry of a corpus directory, sorted by file name.
///
/// # Errors
///
/// I/O failures and malformed headers, with the offending path named.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut entries = Vec::new();
    let rd = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths: Vec<_> = rd
        .filter_map(Result::ok)
        .map(|d| d.path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    paths.sort();
    for p in paths {
        let name = p
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("corpus-entry")
            .to_string();
        let text =
            std::fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
        entries.push(CorpusEntry::parse(&name, &text)?);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let entry = CorpusEntry {
            name: "t".into(),
            config: DiffConfig {
                width: 31,
                frac: 20,
                border: BorderMode::Constant(0.25),
                window: isl_ir::Window::rect(4, 3),
                depth: 3,
                threads: 2,
                frame_w: 9,
                frame_h: 7,
                iterations: 5,
                frame_seed: 0xDEAD_BEEF,
            },
            source: "void k() {}\n".into(),
        };
        let text = entry.to_text();
        let back = CorpusEntry::parse("t", &text).unwrap();
        assert_eq!(back, entry);
    }

    #[test]
    fn all_border_modes_round_trip() {
        for b in [
            BorderMode::Clamp,
            BorderMode::Mirror,
            BorderMode::Wrap,
            BorderMode::Constant(-1.5),
        ] {
            assert_eq!(parse_border(&border_str(b)).unwrap(), b);
        }
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(CorpusEntry::parse("x", "void k() {}\n").is_err());
        assert!(CorpusEntry::parse("x", "// fuzz: frac=3\nvoid k() {}\n").is_err());
    }
}
