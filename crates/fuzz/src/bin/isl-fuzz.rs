//! `isl-fuzz` — the reliability subsystem's command line.
//!
//! ```text
//! isl-fuzz diff     --iters 1000 --seed 1 [--corpus-dir DIR] [--shrink-budget 300]
//!                   [--progress-every 100]
//! isl-fuzz replay   <entry.c> [...]
//! isl-fuzz analyze  [--corpus-dir DIR]
//! isl-fuzz mutate   --iters 2000 --seed 1
//! isl-fuzz campaign [--fast]
//! isl-fuzz persist  --iters 500 --seed 1 [--corpus-dir DIR]
//!                   [--shrink-budget 2000] [--write-fixtures DIR]
//!                   [--replay-dir DIR]
//! ```
//!
//! * `diff` — seeded differential campaign over all execution semantics;
//!   exits non-zero if any mismatch survives, after shrinking and printing
//!   (and optionally persisting) each counterexample. A progress line
//!   (iters/s, cross-checks, corpus size) goes to stderr every
//!   `--progress-every` iterations (0 silences it).
//! * `analyze` — replays the checked-in corpus through the `isl-analyze`
//!   bytecode verifier: every program form (f64 kernels, quantized kernels,
//!   fused step, folded and unfolded cones, quantized cone) is compiled at
//!   the entry's recorded configuration and checked for def-before-use,
//!   CSE congruence, DCE soundness and slot-interference freedom; the
//!   quantized cone is additionally pushed through the abstract
//!   interpreter. Exits non-zero on any finding. This is the CI gate that
//!   keeps the verifier sound over real compiler output.
//! * `mutate` — frontend robustness campaign over mangled kernel sources;
//!   exits non-zero on any panic.
//! * `campaign` — full stuck-at + bit-flip fault-injection campaigns over
//!   the DSE-chosen architectures of the paper's two case studies, printing
//!   the quantified coverage reports.
//! * `persist` — fuzz the `isl-persist` on-disk store format: round-trip
//!   random record sets, then bit-flip / splice / truncate the saved
//!   images, asserting every load returns with honest survivors and
//!   counted skips (never a panic). `--write-fixtures DIR` regenerates
//!   the canonical corruption fixtures; `--replay-dir DIR` replays them.
//!
//! Every subcommand also accepts the global observability flags
//! `--telemetry <out.json>` (structured run report: spans, counters,
//! gauges) and `--trace <out.trace.json>` (Chrome trace-event file,
//! loadable in Perfetto / `chrome://tracing`); either one enables the
//! telemetry collector for the run.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use isl_fuzz::fuzz_frontend;
use isl_hls::prelude::*;
use isl_hls::FlowError;

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_u64(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    match arg_value(args, name) {
        None => Ok(default),
        Some(v) => {
            let (digits, radix) = match v.strip_prefix("0x") {
                Some(h) => (h, 16),
                None => (v.as_str(), 10),
            };
            u64::from_str_radix(digits, radix).map_err(|e| format!("bad {name} `{v}`: {e}"))
        }
    }
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let iters = parse_u64(args, "--iters", 1000)? as usize;
    let seed = parse_u64(args, "--seed", 1)?;
    let budget = parse_u64(args, "--shrink-budget", 300)? as usize;
    let every = parse_u64(args, "--progress-every", 100)? as usize;
    let corpus_dir = arg_value(args, "--corpus-dir");

    println!("differential campaign: {iters} iterations, seed {seed:#x}");
    let report = isl_fuzz::run_campaign_with_progress(iters, seed, budget, every, |p| {
        eprintln!(
            "  [{}/{}] {:.0} iters/s, {} cross-checks, {} rejected, corpus {}",
            p.iteration, p.iterations, p.iters_per_sec, p.checks, p.rejected, p.corpus_size
        );
    });
    println!(
        "  {} agreed ({} cross-checks), {} rejected by the frontend, {} mismatches",
        report.agreed,
        report.checks,
        report.rejected,
        report.failures.len()
    );
    for f in &report.failures {
        println!("\n==== MISMATCH {} ====\n{}", f.name, f.to_text());
        if let Some(dir) = &corpus_dir {
            let path = std::path::Path::new(dir).join(format!("{}.c", f.name));
            std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
            std::fs::write(&path, f.to_text())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            println!("(persisted to {})", path.display());
        }
    }
    Ok(if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err("replay needs at least one corpus entry path".into());
    }
    let mut clean = true;
    for path in args {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let entry = isl_fuzz::CorpusEntry::parse(path, &text)?;
        match isl_fuzz::run_differential(&entry.source, &entry.config) {
            isl_fuzz::DiffOutcome::Agree { checks } => {
                println!("{path}: agree ({checks} cross-checks)");
            }
            isl_fuzz::DiffOutcome::CompileError(e) => {
                println!("{path}: rejected by the frontend: {e}");
                clean = false;
            }
            isl_fuzz::DiffOutcome::Mismatch(m) => {
                println!("{path}: MISMATCH in `{}`:\n  {}", m.check, m.detail);
                clean = false;
            }
        }
    }
    Ok(if clean { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// Compile every program form of one corpus entry at its recorded
/// configuration and run the bytecode verifier over each. Returns
/// `(programs, instructions)` verified, or the first finding.
fn verify_entry(entry: &isl_fuzz::CorpusEntry) -> Result<(usize, usize), String> {
    let (pattern, _info) = isl_symexec::compile_str(&entry.source)
        .map_err(|e| format!("frontend rejected corpus entry: {e}"))?;
    let cfg = &entry.config;
    let fmt = cfg.format();
    let params: Vec<f64> = pattern.params().iter().map(|p| p.default).collect();
    let window = if pattern.rank() == 1 {
        isl_ir::Window::line(cfg.window.w)
    } else {
        cfg.window
    };

    let mut programs = 0usize;
    let mut instrs = 0usize;

    let compiled = isl_sim::CompiledPattern::compile(&pattern, &params, true);
    let quantized = isl_sim::QuantizedPattern::compile(&pattern, &params, fmt);
    for i in 0..pattern.fields().len() {
        if let Some(k) = compiled.kernel(i) {
            isl_analyze::verify_kernel(k).map_err(|e| format!("f64 kernel {i}: {e}"))?;
            programs += 1;
            instrs += k.len();
        }
        if let Some(k) = quantized.kernel(i) {
            isl_analyze::verify_quantized_kernel(k)
                .map_err(|e| format!("quantized kernel {i}: {e}"))?;
            programs += 1;
            instrs += k.len();
        }
    }
    isl_analyze::verify_step(quantized.fused()).map_err(|e| format!("fused step: {e}"))?;
    programs += 1;
    instrs += quantized.fused().len();

    // Cone construction can legitimately reject a window/depth combination
    // (reach constraints); that is a frontend contract, not a bytecode bug.
    if let Ok(cone) = isl_ir::Cone::build(&pattern, window, cfg.depth) {
        for fold in [false, true] {
            let cc = isl_sim::CompiledCone::compile_with(&cone, &params, fold);
            isl_analyze::verify_cone(&cc)
                .map_err(|e| format!("cone (fold={fold}): {e}"))?;
            programs += 1;
            instrs += cc.len();
        }
        let qc = isl_sim::QuantizedCone::compile(&cone, &params, fmt);
        isl_analyze::verify_quantized_cone(&qc).map_err(|e| format!("quantized cone: {e}"))?;
        let analysis =
            isl_analyze::Analysis::of_quantized_cone(&qc, isl_analyze::WordRange::full(fmt))
                .map_err(|e| format!("abstract interpretation of quantized cone: {e}"))?;
        if analysis.is_empty() {
            return Err("abstract interpretation produced no facts".into());
        }
        programs += 1;
        instrs += qc.len();
    }

    Ok((programs, instrs))
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, String> {
    let dir = arg_value(args, "--corpus-dir").unwrap_or_else(|| "tests/corpus".into());
    let entries = isl_fuzz::load_dir(std::path::Path::new(&dir))?;
    if entries.is_empty() {
        return Err(format!("no corpus entries found in {dir}"));
    }
    println!("bytecode verification over {} corpus entries in {dir}", entries.len());
    let mut findings = 0usize;
    let mut programs = 0usize;
    let mut instrs = 0usize;
    for entry in &entries {
        match verify_entry(entry) {
            Ok((p, n)) => {
                programs += p;
                instrs += n;
                println!("  {}: {p} programs clean ({n} instructions)", entry.name);
            }
            Err(e) => {
                findings += 1;
                println!("  {}: FINDING: {e}", entry.name);
            }
        }
    }
    println!(
        "  total: {programs} programs, {instrs} instructions verified, {findings} findings"
    );
    Ok(if findings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_mutate(args: &[String]) -> Result<ExitCode, String> {
    let iters = parse_u64(args, "--iters", 2000)? as usize;
    let seed = parse_u64(args, "--seed", 1)?;
    let seeds: Vec<&str> = vec![
        isl_algorithms::gaussian::SOURCE,
        isl_algorithms::chambolle::SOURCE,
        isl_algorithms::heat::SOURCE,
        isl_algorithms::jacobi::SOURCE,
    ];
    println!("frontend mutation campaign: {iters} iterations, seed {seed:#x}");
    let report = fuzz_frontend(&seeds, iters, seed);
    println!(
        "  {} compiled, {} rejected with structured errors, {} panics",
        report.compiled,
        report.rejected,
        report.panics.len()
    );
    for p in &report.panics {
        println!("\n==== PANIC: {} ====\n{}", p.message, p.source);
    }
    Ok(if report.panics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_campaign(args: &[String]) -> Result<ExitCode, FlowError> {
    let fast = args.iter().any(|a| a == "--fast");
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(2..=5, 1..=3, 4);
    let (w, h) = if fast { (16, 12) } else { (24, 18) };

    for algo in [isl_algorithms::gaussian_igf(), isl_algorithms::chambolle()] {
        let flow = IslFlow::from_algorithm(&algo)?;
        let explored = flow
            .session()
            .explore(&device, flow.workload(w, h), &space)?;
        let best = explored.fastest().expect("explorations are non-empty");
        let init = isl_fuzz::frames_for(flow.pattern(), w as usize, h as usize, 0x5EED);
        let certified = explored.certify_fastest(&init)?;
        let fmt = certified.certificate().format;
        let schedule = if fast {
            isl_hls::cosim::MaskSchedule::lsb()
        } else {
            isl_hls::cosim::MaskSchedule::standard(fmt)
        };
        println!(
            "== {} — DSE-chosen architecture w{} d{}, format {fmt} ==",
            algo.name, best.arch.window, best.arch.depth
        );
        let report = certified.fault_campaign(&init, &schedule)?;
        println!("{report}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_persist(args: &[String]) -> Result<ExitCode, String> {
    if let Some(dir) = arg_value(args, "--write-fixtures") {
        let written = isl_fuzz::persist::write_fixtures(std::path::Path::new(&dir))?;
        println!("wrote {} fixtures + MANIFEST.txt to {dir}", written.len());
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(dir) = arg_value(args, "--replay-dir") {
        let names = isl_fuzz::replay_fixtures(std::path::Path::new(&dir))?;
        for n in &names {
            println!("{dir}/{n}: loads clean, survivors and skips match the manifest");
        }
        return Ok(ExitCode::SUCCESS);
    }
    let iters = parse_u64(args, "--iters", 500)? as usize;
    let seed = parse_u64(args, "--seed", 1)?;
    let budget = parse_u64(args, "--shrink-budget", 2000)? as usize;
    let corpus_dir = arg_value(args, "--corpus-dir");

    println!("persistence campaign: {iters} iterations, seed {seed:#x}");
    let report = isl_fuzz::run_persist_campaign(iters, seed, budget);
    println!(
        "  {} round trips, {} version invalidations, {} corrupted loads \
         ({} records skipped and counted), {} violations",
        report.round_trips,
        report.invalidations,
        report.attacks,
        report.records_skipped,
        report.failures.len()
    );
    for f in &report.failures {
        println!("\n==== VIOLATION {} ====\n{} ({} bytes)", f.name, f.detail, f.image.len());
        if let Some(dir) = &corpus_dir {
            let path = std::path::Path::new(dir).join(format!("{}.islstore", f.name));
            std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
            std::fs::write(&path, &f.image)
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            println!("(persisted to {})", path.display());
        }
    }
    Ok(if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Remove the flag `name` and its value from `args`, returning the value.
fn take_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    args.remove(i);
    (i < args.len()).then(|| args.remove(i))
}

/// Write the telemetry sinks requested by the global `--telemetry` /
/// `--trace` flags.
fn write_telemetry(
    telemetry_out: Option<&str>,
    trace_out: Option<&str>,
) -> Result<(), String> {
    let snapshot = isl_telemetry::snapshot();
    if let Some(path) = telemetry_out {
        std::fs::write(path, snapshot.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("telemetry run report written to {path}");
    }
    if let Some(path) = trace_out {
        std::fs::write(path, snapshot.chrome_trace())
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("chrome trace written to {path} (load in ui.perfetto.dev)");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: isl-fuzz <diff|replay|analyze|mutate|campaign|persist> [options] \
                 [--telemetry out.json] [--trace out.trace.json]";
    isl_analyze::install_debug_verifier();
    let telemetry_out = take_flag(&mut args, "--telemetry");
    let trace_out = take_flag(&mut args, "--trace");
    if telemetry_out.is_some() || trace_out.is_some() {
        isl_telemetry::start();
    }
    let Some(cmd) = args.first() else {
        eprintln!("{usage}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result: Result<ExitCode, String> = match cmd.as_str() {
        "diff" => cmd_diff(rest),
        "replay" => cmd_replay(rest),
        "analyze" => cmd_analyze(rest),
        "mutate" => cmd_mutate(rest),
        "campaign" => cmd_campaign(rest).map_err(|e| e.to_string()),
        "persist" => cmd_persist(rest),
        other => Err(format!("unknown command `{other}`\n{usage}")),
    };
    let result = result
        .and_then(|code| write_telemetry(telemetry_out.as_deref(), trace_out.as_deref()).map(|()| code));
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("isl-fuzz: {msg}");
            ExitCode::FAILURE
        }
    }
}
