//! Automatic minimisation of failing fuzz cases.
//!
//! A raw counterexample from the generator is noise: a dozen statements,
//! deep expressions, a big frame. The shrinker reduces it along three axes
//! while re-checking after every candidate edit that the *same kind* of
//! failure still reproduces:
//!
//! 1. **statement delta-debugging** — parse the source with the real
//!    frontend, delete one statement at a time from the AST, re-print with
//!    the frontend's pretty-printer;
//! 2. **operand simplification** — replace expression nodes by one of
//!    their children or a literal, innermost-last;
//! 3. **configuration shrinking** — fewer iterations, depth 1, one thread,
//!    the smallest window, halved frames.
//!
//! All passes are budgeted by *re-check count*, so a pathological case
//! cannot stall a campaign; the result is whatever the budget reached —
//! shrinking is best-effort by design.

use isl_frontend::{ast, parse};

use crate::diff::{run_differential, DiffConfig, DiffOutcome};

/// Shrink `source`/`cfg` as far as `budget` re-checks allow, preserving
/// the property "still produces a differential mismatch".
pub fn shrink(source: &str, cfg: &DiffConfig, budget: usize) -> (String, DiffConfig) {
    let mut fails = |src: &str, c: &DiffConfig| {
        matches!(run_differential(src, c), DiffOutcome::Mismatch(_))
    };
    shrink_with(source, cfg, budget, &mut fails)
}

/// Shrink against an arbitrary failure predicate (exposed for tests and
/// for shrinking against a *specific* mismatch rather than any).
pub fn shrink_with(
    source: &str,
    cfg: &DiffConfig,
    budget: usize,
    fails: &mut dyn FnMut(&str, &DiffConfig) -> bool,
) -> (String, DiffConfig) {
    let mut remaining = budget;
    let mut best_src = source.to_string();
    let mut best_cfg = *cfg;

    let mut check = |src: &str, c: &DiffConfig, remaining: &mut usize| -> bool {
        if *remaining == 0 {
            return false;
        }
        *remaining -= 1;
        fails(src, c)
    };

    // Pass 1+2: AST-level surgery, iterated to a fixed point.
    loop {
        let mut progressed = false;

        // Statement deletion.
        let mut k = 0;
        loop {
            if remaining == 0 {
                break;
            }
            let Some(mut kernel) = reparse(&best_src) else { break };
            let mut kk = k;
            if !remove_nth_stmt(&mut kernel.body, &mut kk) {
                break; // scanned past the last statement
            }
            let text = kernel.to_string();
            if check(&text, &best_cfg, &mut remaining) {
                best_src = text;
                progressed = true;
                // Indices shifted left; `k` now names the next statement.
            } else {
                k += 1;
            }
        }

        // Expression simplification: replace each node by a child or a
        // literal.
        let mut slot = 0;
        while let Some(kernel) = reparse(&best_src) {
            let total: usize = exprs_of(&kernel).iter().map(|e| expr_size(e)).sum();
            if slot >= total || remaining == 0 {
                break;
            }
            let candidates = {
                let mut k2 = kernel.clone();
                let node = nth_expr_mut(&mut k2, slot).expect("slot < total");
                replacement_candidates(node)
            };
            let mut replaced = false;
            for cand in candidates {
                let mut k2 = kernel.clone();
                *nth_expr_mut(&mut k2, slot).expect("slot < total") = cand;
                let text = k2.to_string();
                if text != best_src && check(&text, &best_cfg, &mut remaining) {
                    best_src = text;
                    progressed = true;
                    replaced = true;
                    break;
                }
                if remaining == 0 {
                    break;
                }
            }
            if !replaced {
                slot += 1;
            }
        }

        if !progressed || remaining == 0 {
            break;
        }
    }

    // Pass 3: configuration shrinking — each accepted candidate tweaks one
    // axis of the *current* best, iterated until nothing is accepted.
    loop {
        let mut progressed = false;
        for c in config_candidates(&best_cfg) {
            if remaining == 0 {
                break;
            }
            if check(&best_src, &c, &mut remaining) {
                best_cfg = c;
                progressed = true;
                break;
            }
        }
        if !progressed || remaining == 0 {
            break;
        }
    }

    (best_src, best_cfg)
}

fn reparse(src: &str) -> Option<ast::Kernel> {
    parse(src).ok()
}

fn config_candidates(cfg: &DiffConfig) -> Vec<DiffConfig> {
    let mut out = Vec::new();
    let mut it = cfg.iterations;
    while it > 1 {
        it -= 1;
        out.push(DiffConfig { iterations: it, ..*cfg });
    }
    if cfg.depth > 1 {
        out.push(DiffConfig { depth: 1, ..*cfg });
    }
    if cfg.threads > 1 {
        out.push(DiffConfig { threads: 1, ..*cfg });
    }
    if cfg.window != isl_ir::Window::square(2) {
        out.push(DiffConfig { window: isl_ir::Window::square(2), ..*cfg });
    }
    if cfg.frame_w > 5 || cfg.frame_h > 4 {
        out.push(DiffConfig {
            frame_w: (cfg.frame_w / 2).max(5),
            frame_h: (cfg.frame_h / 2).max(4),
            ..*cfg
        });
    }
    out
}

// -- statement surgery -----------------------------------------------------

/// Delete the `k`-th (depth-first) statement held in a block vector.
/// Returns `false` when fewer than `k + 1` such statements exist.
fn remove_nth_stmt(stmts: &mut Vec<ast::Stmt>, k: &mut usize) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        if *k == 0 {
            stmts.remove(i);
            return true;
        }
        *k -= 1;
        let removed = match &mut stmts[i] {
            ast::Stmt::Block(b) => remove_nth_stmt(b, k),
            ast::Stmt::For { body, .. } => remove_in_stmt(body, k),
            ast::Stmt::If { then_, else_, .. } => {
                remove_in_stmt(then_, k)
                    || else_.as_mut().is_some_and(|e| remove_in_stmt(e, k))
            }
            _ => false,
        };
        if removed {
            return true;
        }
        i += 1;
    }
    false
}

fn remove_in_stmt(s: &mut ast::Stmt, k: &mut usize) -> bool {
    match s {
        ast::Stmt::Block(b) => remove_nth_stmt(b, k),
        ast::Stmt::For { body, .. } => remove_in_stmt(body, k),
        ast::Stmt::If { then_, else_, .. } => {
            remove_in_stmt(then_, k) || else_.as_mut().is_some_and(|e| remove_in_stmt(e, k))
        }
        _ => false,
    }
}

// -- expression surgery ----------------------------------------------------

/// Value-position expressions of a kernel (index expressions are left
/// alone — they must stay in `loop-var ± constant` form).
fn exprs_of(k: &ast::Kernel) -> Vec<&ast::ExprAst> {
    let mut out = Vec::new();
    fn walk<'a>(s: &'a ast::Stmt, out: &mut Vec<&'a ast::ExprAst>) {
        match s {
            ast::Stmt::Decl { value, .. } => out.push(value),
            ast::Stmt::Assign { value, .. } => out.push(value),
            ast::Stmt::If { cond, then_, else_, .. } => {
                out.push(cond);
                walk(then_, out);
                if let Some(e) = else_ {
                    walk(e, out);
                }
            }
            ast::Stmt::For { body, .. } => walk(body, out),
            ast::Stmt::Block(b) => b.iter().for_each(|s| walk(s, out)),
        }
    }
    k.body.iter().for_each(|s| walk(s, &mut out));
    out
}

fn exprs_of_mut(k: &mut ast::Kernel) -> Vec<&mut ast::ExprAst> {
    let mut out = Vec::new();
    fn walk<'a>(s: &'a mut ast::Stmt, out: &mut Vec<&'a mut ast::ExprAst>) {
        match s {
            ast::Stmt::Decl { value, .. } => out.push(value),
            ast::Stmt::Assign { value, .. } => out.push(value),
            ast::Stmt::If { cond, then_, else_, .. } => {
                out.push(cond);
                walk(then_, out);
                if let Some(e) = else_ {
                    walk(e, out);
                }
            }
            ast::Stmt::For { body, .. } => walk(body, out),
            ast::Stmt::Block(b) => b.iter_mut().for_each(|s| walk(s, out)),
        }
    }
    k.body.iter_mut().for_each(|s| walk(s, &mut out));
    out
}

/// Node count of an expression tree (subscript subtrees excluded, matching
/// the surgery walk).
fn expr_size(e: &ast::ExprAst) -> usize {
    1 + match e {
        ast::ExprAst::Unary { arg, .. } => expr_size(arg),
        ast::ExprAst::Binary { lhs, rhs, .. } => expr_size(lhs) + expr_size(rhs),
        ast::ExprAst::Call { args, .. } => args.iter().map(expr_size).sum(),
        ast::ExprAst::Ternary { cond, then_, else_ } => {
            expr_size(cond) + expr_size(then_) + expr_size(else_)
        }
        _ => 0,
    }
}

/// The `slot`-th value-position expression node of the kernel, depth-first
/// across statements (size-directed descent keeps the borrow checker
/// happy).
fn nth_expr_mut(k: &mut ast::Kernel, mut slot: usize) -> Option<&mut ast::ExprAst> {
    for root in exprs_of_mut(k) {
        let size = expr_size(root);
        if slot < size {
            return Some(nth_in_expr(root, slot));
        }
        slot -= size;
    }
    None
}

fn nth_in_expr(e: &mut ast::ExprAst, k: usize) -> &mut ast::ExprAst {
    if k == 0 {
        return e;
    }
    let mut k = k - 1;
    match e {
        ast::ExprAst::Unary { arg, .. } => nth_in_expr(arg, k),
        ast::ExprAst::Binary { lhs, rhs, .. } => {
            let ls = expr_size(lhs);
            if k < ls {
                nth_in_expr(lhs, k)
            } else {
                nth_in_expr(rhs, k - ls)
            }
        }
        ast::ExprAst::Call { args, .. } => {
            for a in args.iter_mut() {
                let s = expr_size(a);
                if k < s {
                    return nth_in_expr(a, k);
                }
                k -= s;
            }
            unreachable!("slot within expr_size but past all children")
        }
        ast::ExprAst::Ternary { cond, then_, else_ } => {
            let (cs, ts) = (expr_size(cond), expr_size(then_));
            if k < cs {
                nth_in_expr(cond, k)
            } else if k < cs + ts {
                nth_in_expr(then_, k - cs)
            } else {
                nth_in_expr(else_, k - cs - ts)
            }
        }
        _ => unreachable!("leaf reached with slot remaining"),
    }
}

/// Smaller stand-ins for a node, most structure-preserving first.
fn replacement_candidates(e: &ast::ExprAst) -> Vec<ast::ExprAst> {
    let mut out = Vec::new();
    match e {
        ast::ExprAst::Unary { arg, .. } => out.push((**arg).clone()),
        ast::ExprAst::Binary { lhs, rhs, .. } => {
            out.push((**lhs).clone());
            out.push((**rhs).clone());
        }
        ast::ExprAst::Call { args, .. } => out.extend(args.iter().cloned()),
        ast::ExprAst::Ternary { then_, else_, .. } => {
            out.push((**then_).clone());
            out.push((**else_).clone());
        }
        _ => {}
    }
    if !matches!(e, ast::ExprAst::Num(_)) {
        out.push(ast::ExprAst::Num(1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAT: &str = r#"
#pragma isl iterations 4
void fat(const float a[H][W], float a_out[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float t0 = a[y][x-1] * 0.5f;
            float t1 = fminf(a[y-1][x], a[y+1][x]);
            float t2 = t0 + t1;
            a_out[y][x] = (t2 + a[y][x] * 2.0f) / 4.0f;
        }
    }
}
"#;

    #[test]
    fn shrinks_statements_while_preserving_the_predicate() {
        // "Fails" whenever the kernel still compiles and mentions t0: the
        // shrinker must keep t0 alive but drop the unrelated t1 path.
        let mut fails = |src: &str, _: &DiffConfig| {
            src.contains("t0") && isl_symexec::compile_str(src).is_ok()
        };
        let cfg = DiffConfig::small();
        let (out, _) = shrink_with(FAT, &cfg, 400, &mut fails);
        assert!(out.contains("t0"));
        assert!(out.len() < FAT.len(), "no shrinking happened:\n{out}");
        assert!(!out.contains("fminf"), "dead fminf survived:\n{out}");
    }

    #[test]
    fn shrinks_config_axes() {
        let mut fails = |_: &str, _: &DiffConfig| true;
        let cfg = DiffConfig { iterations: 5, depth: 3, threads: 4, ..DiffConfig::small() };
        let (_, c) = shrink_with(FAT, &cfg, 400, &mut fails);
        assert_eq!(c.iterations, 1);
        assert_eq!(c.depth, 1);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn budget_zero_is_identity() {
        let mut fails = |_: &str, _: &DiffConfig| true;
        let cfg = DiffConfig::small();
        let (out, c) = shrink_with(FAT, &cfg, 0, &mut fails);
        assert_eq!(out, FAT);
        assert_eq!(c, cfg);
    }
}
