//! Random-but-plausible stencil kernel generator.
//!
//! Emits kernels **as C source text** and feeds nothing to the pipeline
//! that a user could not type: every generated program goes through the
//! real lexer → parser → semantic analysis → symbolic execution, so the
//! differential fuzzer exercises the frontend with the same fidelity as
//! the execution engines.
//!
//! The generator aims for *mostly valid* programs: it tracks declared
//! locals, writes each output array exactly once, keeps every array
//! congruent, and guards divisions (`/ const` or `/ (fabsf(e) + 0.5f)`)
//! so quantised runs do not collapse into all-saturated noise. A small
//! fraction of generated programs is still rejected by semantic analysis
//! or the symbolic executor — those rejections must be *structured
//! errors*, never panics, which is itself part of what the fuzzer checks.
//!
//! Grammar sketch (all constructs of the supported C subset):
//!
//! ```text
//! kernel  := pragmas sig '{' for-nest '}'
//! fields  := 1..2 dynamic pairs (a/a_out, b/b_out) [+ static g] [+ scalar tau]
//! body    := decl*  [const-tap loop]  [if/else]  out-writes
//! expr    := tap | const | local | tau | g-tap
//!          | e+e | e-e | e*e | e/const | e/(fabsf(e)+0.5f)
//!          | fminf | fmaxf | fabsf | sqrtf(fabsf e) | -e | (c?t:e)
//! ```

use std::fmt::Write as _;

use crate::rng::Rng;

const CONSTS: [f64; 8] = [0.25, 0.5, 1.0, 2.0, 0.125, 3.0, -0.75, 1.75];
const DIVISORS: [f64; 4] = [2.0, 4.0, 8.0, 16.0];

/// What the generator decided to build, before rendering.
struct Shape {
    rank: usize,
    /// Dynamic field base names (`a` pairs with `a_out`).
    dyn_fields: Vec<&'static str>,
    has_static: bool,
    has_param: bool,
    iterations: u32,
}

/// Renders one float constant the way the frontend lexes it back.
fn fmt_const(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{v:.1}f")
    } else {
        format!("{v}f")
    }
}

/// One spatial tap `a[y+dy][x+dx]` (or `a[x+dx]` for rank 1).
fn fmt_tap(array: &str, rank: usize, dy: i64, dx: i64) -> String {
    let idx = |var: &str, off: i64| match off {
        0 => var.to_string(),
        o if o > 0 => format!("{var} + {o}"),
        o => format!("{var} - {}", -o),
    };
    if rank == 1 {
        format!("{array}[{}]", idx("x", dx))
    } else {
        format!("{array}[{}][{}]", idx("y", dy), idx("x", dx))
    }
}

struct ExprGen<'a> {
    rng: &'a mut Rng,
    shape: &'a Shape,
    locals: Vec<String>,
}

impl ExprGen<'_> {
    fn offset(&mut self) -> i64 {
        // Bias toward the 3x3 neighbourhood, occasionally reach radius 2.
        if self.rng.chance(0.8) {
            self.rng.range_i64(-1, 1)
        } else {
            self.rng.range_i64(-2, 2)
        }
    }

    fn leaf(&mut self) -> String {
        let roll = self.rng.f64();
        if roll < 0.55 {
            let field = *self.rng.pick(&self.shape.dyn_fields);
            let (dy, dx) = (self.offset(), self.offset());
            fmt_tap(field, self.shape.rank, dy, dx)
        } else if roll < 0.70 && !self.locals.is_empty() {
            self.locals[self.rng.below(self.locals.len())].clone()
        } else if roll < 0.80 && self.shape.has_static {
            let (dy, dx) = (self.offset(), self.offset());
            fmt_tap("g", self.shape.rank, dy, dx)
        } else if roll < 0.88 && self.shape.has_param {
            "tau".to_string()
        } else {
            fmt_const(*self.rng.pick(&CONSTS))
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.chance(0.25) {
            return self.leaf();
        }
        match self.rng.below(10) {
            0..=2 => {
                let op = *self.rng.pick(&["+", "-", "*"]);
                format!("({} {op} {})", self.expr(depth - 1), self.expr(depth - 1))
            }
            3 => format!(
                "({} / {})",
                self.expr(depth - 1),
                fmt_const(*self.rng.pick(&DIVISORS))
            ),
            4 => format!(
                "({} / (fabsf({}) + 0.5f))",
                self.expr(depth - 1),
                self.expr(depth - 1)
            ),
            5 => {
                let f = *self.rng.pick(&["fminf", "fmaxf"]);
                format!("{f}({}, {})", self.expr(depth - 1), self.expr(depth - 1))
            }
            6 => format!("fabsf({})", self.expr(depth - 1)),
            7 => format!("sqrtf(fabsf({}))", self.expr(depth - 1)),
            8 => format!(
                "(({} {} {}) ? {} : {})",
                self.expr(depth - 1),
                self.rng.pick(&["<", "<=", ">", ">="]),
                self.expr(depth - 1),
                self.expr(depth - 1),
                self.expr(depth - 1)
            ),
            _ => format!("(-{})", self.expr(depth - 1)),
        }
    }
}

/// Generate one random kernel as C source text.
///
/// Deterministic in the state of `rng`: replaying the same seed replays
/// the same program sequence.
pub fn generate(rng: &mut Rng) -> String {
    let shape = Shape {
        rank: if rng.chance(0.8) { 2 } else { 1 },
        dyn_fields: if rng.chance(0.7) { vec!["a"] } else { vec!["a", "b"] },
        has_static: rng.chance(0.25),
        has_param: rng.chance(0.35),
        iterations: rng.range_i64(2, 6) as u32,
    };

    let mut src = String::new();
    let _ = writeln!(src, "#pragma isl iterations {}", shape.iterations);
    if shape.has_param {
        let _ = writeln!(src, "#pragma isl param tau {}", *rng.pick(&[0.25, 0.5, 1.5]));
    }

    // Signature: every dynamic pair, then the static field, then the scalar.
    let dims = if shape.rank == 1 { "[N]" } else { "[H][W]" };
    let mut params = Vec::new();
    for f in &shape.dyn_fields {
        params.push(format!("const float {f}{dims}"));
        params.push(format!("float {f}_out{dims}"));
    }
    if shape.has_static {
        params.push(format!("const float g{dims}"));
    }
    if shape.has_param {
        params.push("float tau".to_string());
    }
    let _ = writeln!(src, "void fuzzed({}) {{", params.join(", "));

    let (open, close, indent) = if shape.rank == 1 {
        ("    for (int x = 0; x < N; x++) {\n", "    }\n", "        ")
    } else {
        (
            "    for (int y = 0; y < H; y++) {\n        for (int x = 0; x < W; x++) {\n",
            "        }\n    }\n",
            "            ",
        )
    };
    src.push_str(open);

    let mut body = String::new();
    let mut g = ExprGen { rng, shape: &shape, locals: Vec::new() };

    // Local declarations.
    let n_locals = 1 + g.rng.below(3);
    for i in 0..n_locals {
        let name = format!("t{i}");
        let e = g.expr(3);
        let _ = writeln!(body, "{indent}float {name} = {e};");
        g.locals.push(name);
    }

    // Occasional constant-trip accumulation loop (exercises loop unrolling
    // in the symbolic executor).
    if g.rng.chance(0.2) {
        let field = *g.rng.pick(&shape.dyn_fields);
        let tap = if shape.rank == 1 {
            format!("{field}[x + k - 1]")
        } else {
            format!("{field}[y][x + k - 1]")
        };
        let _ = writeln!(body, "{indent}float acc = t0;");
        let _ = writeln!(
            body,
            "{indent}for (int k = 0; k < 3; k++) {{ acc = acc + {tap}; }}"
        );
        g.locals.push("acc".to_string());
    }

    // Occasional data-dependent branch (merged into selects downstream).
    if g.rng.chance(0.3) {
        let cond = format!(
            "{} {} {}",
            g.expr(1),
            g.rng.pick(&["<", ">"]),
            fmt_const(*g.rng.pick(&CONSTS))
        );
        let then_e = g.expr(2);
        if g.rng.chance(0.5) {
            let else_e = g.expr(2);
            let _ = writeln!(
                body,
                "{indent}if ({cond}) {{ t0 = {then_e}; }} else {{ t0 = {else_e}; }}"
            );
        } else {
            let _ = writeln!(body, "{indent}if ({cond}) {{ t0 = {then_e}; }}");
        }
    }

    // Exactly one write per output array.
    for f in &shape.dyn_fields {
        let e = g.expr(3);
        let target = if shape.rank == 1 {
            format!("{f}_out[x]")
        } else {
            format!("{f}_out[y][x]")
        };
        let _ = writeln!(body, "{indent}{target} = {e};");
    }

    src.push_str(&body);
    src.push_str(close);
    src.push_str("}\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&mut Rng::new(42));
        let b = generate(&mut Rng::new(42));
        assert_eq!(a, b);
    }

    #[test]
    fn most_generated_kernels_compile() {
        let mut rng = Rng::new(1);
        let mut ok = 0;
        let total = 60;
        for _ in 0..total {
            let src = generate(&mut rng);
            if isl_symexec::compile_str(&src).is_ok() {
                ok += 1;
            }
        }
        // The generator is allowed to emit a few semantically rejected
        // programs, but the bulk must reach the execution engines.
        assert!(ok * 2 > total, "only {ok}/{total} generated kernels compiled");
    }

    #[test]
    fn rejections_are_structured_errors_not_panics() {
        let mut rng = Rng::new(99);
        for _ in 0..60 {
            let src = generate(&mut rng);
            let _ = isl_symexec::compile_str(&src); // must not panic
        }
    }
}
