//! Quantised whole-frame simulation: fixed-point error accumulation at the
//! scale of a full ISL run.
//!
//! The per-cone fixed-point evaluator in `isl-fpga` answers "how far is one
//! cone pass from `f64`?"; this module answers the system-level question —
//! after `N` iterations over a whole frame, how much error has the hardware
//! data path accumulated? The quantiser applies round-to-nearest with
//! saturation after *every* operation, like the generated VHDL.

use isl_ir::{FieldId, FieldKind};

use crate::compile::CompiledPattern;
use crate::error::SimError;
use crate::frame::{Frame, FrameSet};
use crate::sim::Simulator;
use crate::vm;

/// A fixed-point rounding rule: signed, `width` total bits, `frac`
/// fractional bits.
///
/// This is the *same* format the hardware side describes as
/// `isl_fpga::FixedFormat`; the `isl-cosim` crate provides the lossless
/// conversions between the two (and property-tests that `apply` agrees
/// bit-for-bit with `FixedFormat::round_trip`), so there is exactly one
/// notion of "the hardware's rounding rule" across the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    width: u32,
    frac: u32,
}

impl Quantizer {
    /// Build a quantiser.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < width <= 63` and `frac < width`.
    pub fn new(width: u32, frac: u32) -> Self {
        assert!(width > 0 && width <= 63, "width must be in 1..=63");
        assert!(frac < width, "frac must leave at least the sign bit");
        Quantizer { width, frac }
    }

    /// The default hardware format (Q8.10 in 18 bits).
    pub fn q18_10() -> Self {
        Quantizer::new(18, 10)
    }

    /// Total bits, including sign.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Fractional bits.
    pub fn frac(&self) -> u32 {
        self.frac
    }

    /// Quantisation step.
    pub fn resolution(&self) -> f64 {
        (2.0f64).powi(-(self.frac as i32))
    }

    /// Round-to-nearest with saturation, back in real units.
    ///
    /// **NaN contract:** NaN maps to `0.0` — the same documented rule as
    /// `isl_fpga::FixedFormat::quantize` (raw word 0), so the two
    /// implementations agree on *every* input, not just finite ones.
    pub fn apply(&self, v: f64) -> f64 {
        if v.is_nan() {
            return 0.0;
        }
        let scale = (1u64 << self.frac) as f64;
        let max_raw = ((1i64 << (self.width - 1)) - 1) as f64;
        let min_raw = (-(1i64 << (self.width - 1))) as f64;
        let raw = (v * scale).round().clamp(min_raw, max_raw);
        // `+ 0.0` canonicalises -0.0 to +0.0: the raw-word domain has a
        // single zero, and `FixedFormat::round_trip` (which co-simulation
        // pins this function to, bit for bit) goes through that word.
        raw / scale + 0.0
    }
}

impl Simulator<'_> {
    /// Run `iterations` whole-frame steps with fixed-point rounding after
    /// every operation — the frame-scale analogue of the generated hardware.
    ///
    /// Executes on the compiled bytecode engine, lowered **without** constant
    /// folding so every intermediate value of the reference expression tree
    /// still exists and receives its own rounding — bit-identical to
    /// [`Simulator::run_quantized_reference`], which tests enforce.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::step`].
    pub fn run_quantized(
        &self,
        init: &FrameSet,
        iterations: u32,
        q: Quantizer,
    ) -> Result<FrameSet, SimError> {
        if init.len() != self.pattern().fields().len() {
            return Err(SimError::FieldCountMismatch {
                expected: self.pattern().fields().len(),
                got: init.len(),
            });
        }
        let mut state = quantize_set(init, q);
        let program = CompiledPattern::compile(self.pattern(), self.params(), false);
        let mut spare: Option<FrameSet> = None;
        for _ in 0..iterations {
            let next = vm::step_quantized(
                &program,
                &state,
                self.border(),
                q,
                self.threads(),
                spare.take(),
            );
            spare = Some(std::mem::replace(&mut state, next));
        }
        Ok(state)
    }

    /// [`Simulator::run_quantized`] through the tree-walking interpreter —
    /// the golden reference for the quantised engine.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::step`].
    pub fn run_quantized_reference(
        &self,
        init: &FrameSet,
        iterations: u32,
        q: Quantizer,
    ) -> Result<FrameSet, SimError> {
        let mut state = quantize_set(init, q);
        for _ in 0..iterations {
            state = self.step_quantized(&state, q)?;
        }
        Ok(state)
    }

    fn step_quantized(&self, state: &FrameSet, q: Quantizer) -> Result<FrameSet, SimError> {
        // Mirror Simulator::step, with the post-op rounding hook.
        if state.len() != self.pattern().fields().len() {
            return Err(SimError::FieldCountMismatch {
                expected: self.pattern().fields().len(),
                got: state.len(),
            });
        }
        let (w, h) = (state.width(), state.height());
        let border = self.border();
        let mut next = Vec::with_capacity(state.len());
        for (i, decl) in self.pattern().fields().iter().enumerate() {
            let fid = FieldId::new(i as u16);
            match decl.kind {
                FieldKind::Static => next.push(state.frame_arc(i)),
                FieldKind::Dynamic => {
                    let update = self.pattern().update(fid).expect("validated pattern");
                    let mut out = Frame::new(w, h);
                    for y in 0..h {
                        for x in 0..w {
                            let v = update.eval_map(
                                &|f: FieldId, o: isl_ir::Offset| {
                                    state.frame(f.index()).sample(
                                        x as i64 + o.dx as i64,
                                        y as i64 + o.dy as i64,
                                        border,
                                    )
                                },
                                &|p: isl_ir::ParamId| self.param_value(p),
                                &|v| q.apply(v),
                            );
                            out.set(x, y, v);
                        }
                    }
                    next.push(std::sync::Arc::new(out));
                }
            }
        }
        Ok(FrameSet::from_shared(next).expect("shapes preserved"))
    }
}

/// Quantise every sample of every frame (loading into the fixed-point
/// domain).
pub(crate) fn quantize_set(init: &FrameSet, q: Quantizer) -> FrameSet {
    FrameSet::from_frames(
        init.frames()
            .iter()
            .map(|f| Frame::from_fn(f.width(), f.height(), |x, y| q.apply(f.get(x, y))))
            .collect(),
    )
    .expect("shapes preserved")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::border::BorderMode;
    use crate::synthetic;
    use isl_ir::{BinaryOp, Expr, Offset, StencilPattern};

    fn blur() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("blur");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(4.0)))
            .unwrap();
        p
    }

    #[test]
    fn quantizer_rounds_and_saturates() {
        let q = Quantizer::new(8, 4);
        assert_eq!(q.apply(0.5), 0.5);
        assert_eq!(q.apply(0.51), 0.5);
        assert_eq!(q.apply(1000.0), 7.9375); // (2^7 - 1) / 16
        assert_eq!(q.apply(-1000.0), -8.0);
        assert_eq!(q.resolution(), 0.0625);
    }

    #[test]
    fn quantized_run_tracks_f64() {
        let p = blur();
        let sim = Simulator::new(&p).unwrap();
        let init = FrameSet::from_frames(vec![synthetic::noise(16, 12, 5)]).unwrap();
        let exact = sim.run(&init, 8).unwrap();
        let fixed = sim.run_quantized(&init, 8, Quantizer::q18_10()).unwrap();
        // Averaging keeps per-iteration error near one LSB; 8 iterations of
        // a contraction accumulate only a small multiple of it.
        let diff = exact.max_abs_diff(&fixed);
        assert!(diff < 32.0 * Quantizer::q18_10().resolution(), "diff {diff}");
    }

    #[test]
    fn error_shrinks_with_finer_formats() {
        let p = blur();
        let sim = Simulator::new(&p).unwrap().with_border(BorderMode::Mirror);
        let init = FrameSet::from_frames(vec![synthetic::noise(12, 12, 9)]).unwrap();
        let exact = sim.run(&init, 6).unwrap();
        let err = |q: Quantizer| {
            exact.max_abs_diff(&sim.run_quantized(&init, 6, q).unwrap())
        };
        let coarse = err(Quantizer::new(12, 4));
        let fine = err(Quantizer::new(24, 16));
        assert!(fine < coarse, "{fine} !< {coarse}");
        assert!(fine < 1e-3);
    }

    #[test]
    fn compiled_quantized_engine_matches_reference_bitwise() {
        let p = blur();
        for border in [BorderMode::Clamp, BorderMode::Mirror, BorderMode::Constant(0.5)] {
            let sim = Simulator::new(&p).unwrap().with_border(border);
            let init = FrameSet::from_frames(vec![synthetic::noise(19, 11, 3)]).unwrap();
            let q = Quantizer::q18_10();
            let a = sim.run_quantized(&init, 5, q).unwrap();
            let b = sim.run_quantized_reference(&init, 5, q).unwrap();
            for (x, y) in a.frame(0).as_slice().iter().zip(b.frame(0).as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "border {border}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn integer_valued_dynamics_are_exact() {
        // Sums of integers within range round-trip exactly.
        let mut p = StencilPattern::new(1).with_name("shift");
        let f = p.add_field("f", FieldKind::Dynamic);
        p.set_update(f, Expr::input(f, Offset::d1(-1))).unwrap();
        let sim = Simulator::new(&p).unwrap();
        let init = FrameSet::from_frames(vec![Frame::from_samples(&[1.0, 2.0, 3.0, 4.0])])
            .unwrap();
        let exact = sim.run(&init, 3).unwrap();
        let fixed = sim.run_quantized(&init, 3, Quantizer::q18_10()).unwrap();
        assert_eq!(exact.max_abs_diff(&fixed), 0.0);
    }
}
