//! Quantised whole-frame simulation: fixed-point error accumulation at the
//! scale of a full ISL run.
//!
//! The per-cone fixed-point evaluator in `isl-fpga` answers "how far is one
//! cone pass from `f64`?"; this module answers the system-level question —
//! after `N` iterations over a whole frame, how much error has the hardware
//! data path accumulated? Execution runs entirely in the **raw word
//! domain** on [`crate::compile::QuantizedPattern`] programs: the rounding
//! rule is fused into every instruction at compile time (saturating
//! fixed-point add/sub, truncating widened mul/div — the exact
//! `isl_fpga::FixedFormat` datapath the generated VHDL implements), so
//! there is no per-op rounding hook and no way to run a program with the
//! wrong quantiser.

use isl_fpga::FixedFormat;
use isl_ir::{FieldId, FieldKind};

use crate::error::SimError;
use crate::frame::FrameSet;
use crate::qvm::{self, WordSet};
use crate::sim::Simulator;

/// A fixed-point rounding rule: signed, `width` total bits, `frac`
/// fractional bits.
///
/// This is a thin wrapper around `isl_fpga::FixedFormat` — the *single*
/// definition of the hardware's numeric behaviour across the workspace
/// (the `isl-cosim` crate property-tests the agreement). [`Quantizer::apply`]
/// is exactly `FixedFormat::round_trip`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quantizer {
    fmt: FixedFormat,
}

impl Quantizer {
    /// Build a quantiser.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < width <= 64` and `frac < width`.
    pub fn new(width: u32, frac: u32) -> Self {
        Quantizer {
            fmt: FixedFormat::new(width, frac),
        }
    }

    /// The default hardware format (Q8.10 in 18 bits).
    pub fn q18_10() -> Self {
        Quantizer::new(18, 10)
    }

    /// Total bits, including sign.
    pub fn width(&self) -> u32 {
        self.fmt.width
    }

    /// Fractional bits.
    pub fn frac(&self) -> u32 {
        self.fmt.frac
    }

    /// The underlying hardware format.
    pub fn format(&self) -> FixedFormat {
        self.fmt
    }

    /// Quantisation step.
    pub fn resolution(&self) -> f64 {
        self.fmt.resolution()
    }

    /// Round-to-nearest with saturation, back in real units — exactly
    /// `FixedFormat::round_trip` (NaN maps to `0.0`, the raw word 0).
    ///
    /// Lossy above 53 significant bits: this is the `f64`-domain view of
    /// the format, for loading and inspecting frames. The engines
    /// themselves never leave the raw word domain.
    pub fn apply(&self, v: f64) -> f64 {
        self.fmt.round_trip(v)
    }
}

impl From<FixedFormat> for Quantizer {
    fn from(fmt: FixedFormat) -> Self {
        Quantizer { fmt }
    }
}

impl Simulator<'_> {
    /// Run `iterations` whole-frame steps in fixed point — the frame-scale
    /// analogue of the generated hardware.
    ///
    /// Executes on the compiled **quantised** bytecode engine: the pattern
    /// is lowered fold-free (every intermediate of the reference expression
    /// tree survives as one instruction), then every instruction becomes a
    /// branch-free saturating lane kernel over raw words — bit-identical to
    /// [`Simulator::run_quantized_reference`], which tests enforce.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::step`].
    pub fn run_quantized(
        &self,
        init: &FrameSet,
        iterations: u32,
        q: Quantizer,
    ) -> Result<FrameSet, SimError> {
        if init.len() != self.pattern().fields().len() {
            return Err(SimError::FieldCountMismatch {
                expected: self.pattern().fields().len(),
                got: init.len(),
            });
        }
        let fmt = q.format();
        let program =
            self.program_cache()
                .quantized_pattern_program(self.pattern(), self.params(), fmt);
        let mut state = WordSet::quantize(init, fmt);
        let mut spare: Option<WordSet> = None;
        for _ in 0..iterations {
            let next =
                qvm::step_quantized(&program, &state, self.border(), self.threads(), spare.take());
            spare = Some(std::mem::replace(&mut state, next));
        }
        Ok(state.dequantize(fmt))
    }

    /// [`Simulator::run_quantized`] through the tree-walking interpreter in
    /// the raw word domain — the golden reference for the quantised engine.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::step`].
    pub fn run_quantized_reference(
        &self,
        init: &FrameSet,
        iterations: u32,
        q: Quantizer,
    ) -> Result<FrameSet, SimError> {
        if init.len() != self.pattern().fields().len() {
            return Err(SimError::FieldCountMismatch {
                expected: self.pattern().fields().len(),
                got: init.len(),
            });
        }
        let fmt = q.format();
        let mut state = WordSet::quantize(init, fmt);
        for _ in 0..iterations {
            state = self.step_quantized_raw(&state, fmt);
        }
        Ok(state.dequantize(fmt))
    }

    /// One tree-walking whole-frame step over raw words (mirrors
    /// [`Simulator::step_reference`] with `FixedFormat` node semantics).
    fn step_quantized_raw(&self, state: &WordSet, fmt: FixedFormat) -> WordSet {
        let (w, h) = (state.width(), state.height());
        let border = self.border();
        let braw = qvm::border_raw(border, fmt);
        let mut next = Vec::with_capacity(self.pattern().fields().len());
        for (i, decl) in self.pattern().fields().iter().enumerate() {
            let fid = FieldId::new(i as u16);
            match decl.kind {
                FieldKind::Static => next.push(state.words_arc(i)),
                FieldKind::Dynamic => {
                    let update = self.pattern().update(fid).expect("validated pattern");
                    let mut out = vec![0i64; w * h];
                    for y in 0..h {
                        for x in 0..w {
                            let read = |f: FieldId, o: isl_ir::Offset| {
                                state.sample(
                                    f.index(),
                                    x as i64 + o.dx as i64,
                                    y as i64 + o.dy as i64,
                                    border,
                                    braw,
                                )
                            };
                            let param = |p: isl_ir::ParamId| self.param_value(p);
                            out[y * w + x] = qvm::eval_expr_raw(update, &read, &param, fmt);
                        }
                    }
                    next.push(std::sync::Arc::new(out));
                }
            }
        }
        WordSet::from_shared(w, h, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::border::BorderMode;
    use crate::frame::Frame;
    use crate::synthetic;
    use isl_ir::{BinaryOp, Expr, Offset, StencilPattern};

    fn blur() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("blur");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(4.0)))
            .unwrap();
        p
    }

    #[test]
    fn quantizer_rounds_and_saturates() {
        let q = Quantizer::new(8, 4);
        assert_eq!(q.apply(0.5), 0.5);
        assert_eq!(q.apply(0.51), 0.5);
        assert_eq!(q.apply(1000.0), 7.9375); // (2^7 - 1) / 16
        assert_eq!(q.apply(-1000.0), -8.0);
        assert_eq!(q.resolution(), 0.0625);
    }

    #[test]
    fn quantized_run_tracks_f64() {
        let p = blur();
        let sim = Simulator::new(&p).unwrap();
        let init = FrameSet::from_frames(vec![synthetic::noise(16, 12, 5)]).unwrap();
        let exact = sim.run(&init, 8).unwrap();
        let fixed = sim.run_quantized(&init, 8, Quantizer::q18_10()).unwrap();
        // Averaging keeps per-iteration error near one LSB; 8 iterations of
        // a contraction accumulate only a small multiple of it.
        let diff = exact.max_abs_diff(&fixed);
        assert!(diff < 32.0 * Quantizer::q18_10().resolution(), "diff {diff}");
    }

    #[test]
    fn error_shrinks_with_finer_formats() {
        let p = blur();
        let sim = Simulator::new(&p).unwrap().with_border(BorderMode::Mirror);
        let init = FrameSet::from_frames(vec![synthetic::noise(12, 12, 9)]).unwrap();
        let exact = sim.run(&init, 6).unwrap();
        let err = |q: Quantizer| {
            exact.max_abs_diff(&sim.run_quantized(&init, 6, q).unwrap())
        };
        let coarse = err(Quantizer::new(12, 4));
        let fine = err(Quantizer::new(24, 16));
        assert!(fine < coarse, "{fine} !< {coarse}");
        assert!(fine < 1e-3);
    }

    #[test]
    fn compiled_quantized_engine_matches_reference_bitwise() {
        let p = blur();
        for border in [BorderMode::Clamp, BorderMode::Mirror, BorderMode::Constant(0.5)] {
            let sim = Simulator::new(&p).unwrap().with_border(border);
            let init = FrameSet::from_frames(vec![synthetic::noise(19, 11, 3)]).unwrap();
            let q = Quantizer::q18_10();
            let a = sim.run_quantized(&init, 5, q).unwrap();
            let b = sim.run_quantized_reference(&init, 5, q).unwrap();
            for (x, y) in a.frame(0).as_slice().iter().zip(b.frame(0).as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "border {border}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn integer_valued_dynamics_are_exact() {
        // Sums of integers within range round-trip exactly.
        let mut p = StencilPattern::new(1).with_name("shift");
        let f = p.add_field("f", FieldKind::Dynamic);
        p.set_update(f, Expr::input(f, Offset::d1(-1))).unwrap();
        let sim = Simulator::new(&p).unwrap();
        let init = FrameSet::from_frames(vec![Frame::from_samples(&[1.0, 2.0, 3.0, 4.0])])
            .unwrap();
        let exact = sim.run(&init, 3).unwrap();
        let fixed = sim.run_quantized(&init, 3, Quantizer::q18_10()).unwrap();
        assert_eq!(exact.max_abs_diff(&fixed), 0.0);
    }
}
