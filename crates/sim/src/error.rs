//! Simulation error type.

use std::error::Error;
use std::fmt;

/// Errors from constructing or running a [`crate::Simulator`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Only rank-1 and rank-2 patterns can be simulated on frames.
    UnsupportedRank(usize),
    /// The frame set does not match the pattern's field list.
    FieldCountMismatch {
        /// Fields the pattern declares.
        expected: usize,
        /// Frames supplied.
        got: usize,
    },
    /// Frames in a set have differing dimensions.
    FrameSizeMismatch,
    /// Parameter vector has the wrong length.
    ParamCountMismatch {
        /// Parameters the pattern declares.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// The tiled executor cannot honour a non-local border mode.
    NonLocalBorder,
    /// The underlying pattern is invalid.
    Pattern(String),
    /// Cone construction failed.
    Cone(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnsupportedRank(r) => {
                write!(f, "cannot simulate rank-{r} patterns (supported: 1, 2)")
            }
            SimError::FieldCountMismatch { expected, got } => write!(
                f,
                "frame set has {got} frames but the pattern declares {expected} fields"
            ),
            SimError::FrameSizeMismatch => write!(f, "frames in a set must share dimensions"),
            SimError::ParamCountMismatch { expected, got } => write!(
                f,
                "parameter vector has {got} values but the pattern declares {expected}"
            ),
            SimError::NonLocalBorder => write!(
                f,
                "wrap borders break tile locality; the cone architecture requires clamp, mirror or constant"
            ),
            SimError::Pattern(m) => write!(f, "invalid pattern: {m}"),
            SimError::Cone(m) => write!(f, "cone construction failed: {m}"),
        }
    }
}

impl Error for SimError {}
