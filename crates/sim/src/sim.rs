//! Golden, tiled and cone-DAG execution of stencil patterns.

use std::sync::Arc;

use isl_ir::{Cone, ConeCache, FieldId, FieldKind, StencilPattern, Window};

use isl_fpga::FixedFormat;

use crate::border::BorderMode;
use crate::compile::{CompiledCone, CompiledPattern, ProgramCache};
use crate::error::SimError;
use crate::fixed::Quantizer;
use crate::frame::{Frame, FrameSet};
use crate::qvm::{self, WordSet};
use crate::vm;

/// Result of a fixed-point run ([`Simulator::run_until_converged`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceReport {
    /// Iterations actually performed.
    pub iterations: u32,
    /// Last observed max-abs update delta.
    pub delta: f64,
    /// Whether the delta fell below the threshold before the iteration cap.
    pub converged: bool,
}

/// Executes a [`StencilPattern`] on frames under three semantics: golden
/// whole-frame iteration, exact tiled (cone-architecture) execution, and
/// hardware-faithful cone-DAG evaluation.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Simulator<'p> {
    pattern: &'p StencilPattern,
    border: BorderMode,
    params: Vec<f64>,
    threads: usize,
    programs: ProgramCache,
    cones: Option<ConeCache>,
}

impl<'p> Simulator<'p> {
    /// Wrap a validated pattern with default border (clamp) and default
    /// parameter values.
    ///
    /// # Errors
    ///
    /// [`SimError::UnsupportedRank`] for rank-3 patterns;
    /// [`SimError::Pattern`] if the pattern fails validation.
    pub fn new(pattern: &'p StencilPattern) -> Result<Self, SimError> {
        pattern
            .validate()
            .map_err(|e| SimError::Pattern(e.to_string()))?;
        if pattern.rank() > 2 {
            return Err(SimError::UnsupportedRank(pattern.rank()));
        }
        Ok(Simulator {
            pattern,
            border: BorderMode::default(),
            params: pattern.params().iter().map(|p| p.default).collect(),
            threads: 0,
            programs: ProgramCache::new(),
            cones: None,
        })
    }

    /// Share a compile cache with other simulators (and other sessions'
    /// engines): every `(pattern, params, fold, cone shape)` identity is
    /// then lowered at most once across all of them. The cache keys on
    /// content, so attaching one cache to simulators of different patterns
    /// or parameter bindings is safe.
    pub fn with_program_cache(mut self, programs: ProgramCache) -> Self {
        self.programs = programs;
        self
    }

    /// Share a cone store: the cone-DAG engines (compiled *and* reference)
    /// then fetch their per-depth cones from `cones` instead of rebuilding
    /// them per run.
    pub fn with_cone_cache(mut self, cones: ConeCache) -> Self {
        self.cones = Some(cones);
        self
    }

    /// Build (or fetch from the attached cone store) the simplified cone of
    /// one shape.
    fn build_cone(&self, window: Window, depth: u32) -> Result<Arc<Cone>, SimError> {
        match &self.cones {
            Some(cache) => cache
                .get_or_build(self.pattern, window, depth, true)
                .map_err(|e| SimError::Cone(e.to_string())),
            None => Cone::build(self.pattern, window, depth)
                .map(Arc::new)
                .map_err(|e| SimError::Cone(e.to_string())),
        }
    }

    /// Select the border mode.
    pub fn with_border(mut self, border: BorderMode) -> Self {
        self.border = border;
        self
    }

    /// Cap the worker threads used by the compiled engine (0 = one per
    /// available core, 1 = fully serial). Results are bit-identical for any
    /// thread count; only wall-clock time changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override parameter values (by [`isl_ir::ParamId`] index).
    ///
    /// # Errors
    ///
    /// [`SimError::ParamCountMismatch`] when the length differs from the
    /// pattern's parameter list.
    pub fn with_params(mut self, params: Vec<f64>) -> Result<Self, SimError> {
        if params.len() != self.pattern.params().len() {
            return Err(SimError::ParamCountMismatch {
                expected: self.pattern.params().len(),
                got: params.len(),
            });
        }
        self.params = params;
        // Parameters are baked into the bytecode, but the program cache is
        // keyed by the binding's bit patterns — no invalidation needed.
        Ok(self)
    }

    /// The compiled bytecode program for this pattern + parameter binding
    /// (built on first use, served from the program cache afterwards).
    pub fn compiled(&self) -> Arc<CompiledPattern> {
        self.programs.pattern_program(self.pattern, &self.params, true)
    }

    /// The pattern being simulated.
    pub fn pattern(&self) -> &StencilPattern {
        self.pattern
    }

    /// The active border mode.
    pub fn border(&self) -> BorderMode {
        self.border
    }

    /// Value of parameter `p` (default or override).
    pub fn param_value(&self, p: isl_ir::ParamId) -> f64 {
        self.params[p.index()]
    }

    /// The full parameter binding, in [`isl_ir::ParamId`] order.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// The configured worker-thread cap (0 = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The attached program cache (crate-internal: the quantised entry
    /// points in [`crate::fixed`] fetch their programs through it).
    pub(crate) fn program_cache(&self) -> &ProgramCache {
        &self.programs
    }

    fn check(&self, state: &FrameSet) -> Result<(), SimError> {
        if state.len() != self.pattern.fields().len() {
            return Err(SimError::FieldCountMismatch {
                expected: self.pattern.fields().len(),
                got: state.len(),
            });
        }
        Ok(())
    }

    // -- golden semantics ---------------------------------------------------

    /// One whole-frame iteration (the body of Algorithm 1).
    ///
    /// # Errors
    ///
    /// [`SimError::FieldCountMismatch`] when the frame set does not match the
    /// pattern.
    pub fn step(&self, state: &FrameSet) -> Result<FrameSet, SimError> {
        self.check(state)?;
        let program = self.compiled();
        Ok(vm::step_compiled(&program, state, self.border, self.threads))
    }

    /// One whole-frame iteration through the tree-walking interpreter — the
    /// golden reference semantics the compiled engine is property-tested
    /// against. Prefer [`Simulator::step`] (bit-identical, much faster).
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::step`].
    pub fn step_reference(&self, state: &FrameSet) -> Result<FrameSet, SimError> {
        self.check(state)?;
        let (w, h) = (state.width(), state.height());
        let mut next = Vec::with_capacity(state.len());
        for (i, decl) in self.pattern.fields().iter().enumerate() {
            let fid = FieldId::new(i as u16);
            match decl.kind {
                FieldKind::Static => next.push(state.frame_arc(i)),
                FieldKind::Dynamic => {
                    let update = self.pattern.update(fid).expect("validated pattern");
                    let mut out = Frame::new(w, h);
                    for y in 0..h {
                        for x in 0..w {
                            let v = update.eval(
                                &|f: FieldId, o: isl_ir::Offset| {
                                    state.frame(f.index()).sample(
                                        x as i64 + o.dx as i64,
                                        y as i64 + o.dy as i64,
                                        self.border,
                                    )
                                },
                                &|p: isl_ir::ParamId| self.params[p.index()],
                            );
                            out.set(x, y, v);
                        }
                    }
                    next.push(std::sync::Arc::new(out));
                }
            }
        }
        Ok(FrameSet::from_shared(next).expect("shapes preserved"))
    }

    /// `iterations` golden whole-frame steps through the tree-walking
    /// interpreter (see [`Simulator::step_reference`]).
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::step`].
    pub fn run_reference(&self, init: &FrameSet, iterations: u32) -> Result<FrameSet, SimError> {
        let mut state = init.clone();
        for _ in 0..iterations {
            state = self.step_reference(&state)?;
        }
        Ok(state)
    }

    /// `iterations` golden whole-frame steps.
    ///
    /// Stepping is **double-buffered**: from the third iteration on, the
    /// retiring state's dynamic frames (uniquely owned by the run loop) are
    /// recycled as the next step's output buffers, so long runs allocate a
    /// bounded ping-pong pair instead of one frame set per iteration.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::step`].
    pub fn run(&self, init: &FrameSet, iterations: u32) -> Result<FrameSet, SimError> {
        self.check(init)?;
        let program = self.compiled();
        let mut state = init.clone();
        let mut spare: Option<FrameSet> = None;
        for _ in 0..iterations {
            let next =
                vm::step_compiled_into(&program, &state, self.border, self.threads, spare.take());
            spare = Some(std::mem::replace(&mut state, next));
        }
        Ok(state)
    }

    /// Iterate until the max-abs delta of the dynamic fields drops below
    /// `epsilon`, or `max_iterations` is reached — the "fixed point of the
    /// single step transformation" formulation from the paper's introduction.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::step`].
    pub fn run_until_converged(
        &self,
        init: &FrameSet,
        epsilon: f64,
        max_iterations: u32,
    ) -> Result<(FrameSet, ConvergenceReport), SimError> {
        self.check(init)?;
        let program = self.compiled();
        let mut state = init.clone();
        let mut spare: Option<FrameSet> = None;
        let mut delta = f64::INFINITY;
        for i in 0..max_iterations {
            let next =
                vm::step_compiled_into(&program, &state, self.border, self.threads, spare.take());
            delta = self
                .pattern
                .dynamic_fields()
                .iter()
                .map(|f| state.frame(f.index()).max_abs_diff(next.frame(f.index())))
                .fold(0.0, f64::max);
            spare = Some(std::mem::replace(&mut state, next));
            if delta < epsilon {
                return Ok((
                    state,
                    ConvergenceReport {
                        iterations: i + 1,
                        delta,
                        converged: true,
                    },
                ));
            }
        }
        Ok((
            state,
            ConvergenceReport {
                iterations: max_iterations,
                delta,
                converged: false,
            },
        ))
    }

    // -- tiled (cone-architecture) semantics --------------------------------

    /// Execute `iterations` through levels of depth-`depth` cones applied
    /// window by window — the paper's architecture template, with border
    /// resolution at every level. Bit-identical to [`Simulator::run`] for
    /// local border modes.
    ///
    /// Iterations are decomposed exactly like the flow's architecture
    /// instances: `floor(iterations / depth)` levels of `depth`, plus one
    /// remainder level when `depth` does not divide `iterations`.
    ///
    /// Levels execute on the compiled bytecode engine over reusable halo
    /// buffers, with tiles distributed over threads in bands of whole tile
    /// rows and level outputs double-buffered — bit-identical to
    /// [`Simulator::run_tiled_reference`] (tests enforce it) and more than
    /// an order of magnitude faster.
    ///
    /// # Errors
    ///
    /// [`SimError::NonLocalBorder`] for wrap borders; [`SimError::Cone`] for
    /// `depth == 0`; plus the [`Simulator::step`] errors.
    pub fn run_tiled(
        &self,
        init: &FrameSet,
        iterations: u32,
        window: Window,
        depth: u32,
    ) -> Result<FrameSet, SimError> {
        self.check_tiled(init, depth)?;
        let program = self.programs.pattern_program(self.pattern, &self.params, true);
        let r = self.pattern.radius() as i64;
        let (tw, th) = (window.w as i64, window.h as i64);
        let mut state = init.clone();
        let mut spare: Option<FrameSet> = None;
        for d in level_depths(iterations, depth) {
            let next = vm::tiled_level_compiled(
                &program,
                &state,
                self.border,
                self.threads,
                (tw, th),
                d,
                r,
                spare.take(),
            );
            spare = Some(std::mem::replace(&mut state, next));
        }
        Ok(state)
    }

    /// [`Simulator::run_tiled`] through the tree-walking interpreter — the
    /// golden cone-architecture semantics the compiled tiled engine is
    /// property-tested against. Prefer [`Simulator::run_tiled`]
    /// (bit-identical, much faster).
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_tiled`].
    pub fn run_tiled_reference(
        &self,
        init: &FrameSet,
        iterations: u32,
        window: Window,
        depth: u32,
    ) -> Result<FrameSet, SimError> {
        self.check_tiled(init, depth)?;
        let mut state = init.clone();
        for d in level_depths(iterations, depth) {
            state = self.tiled_level(&state, window, d)?;
        }
        Ok(state)
    }

    /// [`Simulator::run_tiled`] in fixed point — the tiled cone
    /// architecture with the hardware's numeric behaviour, so rounding is
    /// validated window by window at the exact decomposition the DSE chose.
    ///
    /// Executes on the quantised bytecode engine: levels are lowered
    /// fold-free, quantised into `q`'s format at compile time, and run as
    /// saturating lane kernels over raw words — bit-identical to
    /// [`Simulator::run_tiled_quantized_reference`], which tests enforce.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_tiled`].
    pub fn run_tiled_quantized(
        &self,
        init: &FrameSet,
        iterations: u32,
        window: Window,
        depth: u32,
        q: Quantizer,
    ) -> Result<FrameSet, SimError> {
        self.check_tiled(init, depth)?;
        let fmt = q.format();
        let program = self
            .programs
            .quantized_pattern_program(self.pattern, &self.params, fmt);
        let r = self.pattern.radius() as i64;
        let (tw, th) = (window.w as i64, window.h as i64);
        let mut state = WordSet::quantize(init, fmt);
        let mut spare: Option<WordSet> = None;
        for d in level_depths(iterations, depth) {
            let next = qvm::tiled_level_quantized(
                &program,
                &state,
                self.border,
                self.threads,
                (tw, th),
                d,
                r,
                spare.take(),
            );
            spare = Some(std::mem::replace(&mut state, next));
        }
        Ok(state.dequantize(fmt))
    }

    /// [`Simulator::run_tiled_quantized`] through the tree-walking
    /// interpreter in the raw word domain — the golden quantised
    /// cone-architecture semantics.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_tiled`].
    pub fn run_tiled_quantized_reference(
        &self,
        init: &FrameSet,
        iterations: u32,
        window: Window,
        depth: u32,
        q: Quantizer,
    ) -> Result<FrameSet, SimError> {
        self.check_tiled(init, depth)?;
        let fmt = q.format();
        let mut state = WordSet::quantize(init, fmt);
        for d in level_depths(iterations, depth) {
            state = self.tiled_level_raw(&state, window, d, fmt)?;
        }
        Ok(state.dequantize(fmt))
    }

    fn check_tiled(&self, init: &FrameSet, depth: u32) -> Result<(), SimError> {
        self.check(init)?;
        if depth == 0 {
            return Err(SimError::Cone("cone depth must be at least 1".into()));
        }
        if !self.border.is_local() {
            return Err(SimError::NonLocalBorder);
        }
        Ok(())
    }

    /// One reference level: apply depth-`d` cones over every window tile.
    fn tiled_level(
        &self,
        state: &FrameSet,
        window: Window,
        d: u32,
    ) -> Result<FrameSet, SimError> {
        let (w, h) = (state.width() as i64, state.height() as i64);
        let r = self.pattern.radius() as i64;
        let mut next: Vec<Arc<Frame>> = state.frames().to_vec();

        // Field id → dynamic slot, computed once per level instead of a
        // linear scan on every dynamic read inside the tile hot loop.
        let dyn_fields = self.pattern.dynamic_fields();
        let (_, dyn_index) = vm::dyn_slot_map(
            self.pattern.fields().len(),
            dyn_fields.iter().map(|f| f.index()),
        );

        let (tw, th) = (window.w as i64, window.h as i64);
        let mut ty = 0;
        while ty < h {
            let mut tx = 0;
            while tx < w {
                self.tile(state, &mut next, (tx, ty), (tw, th), d, r, &dyn_index)?;
                tx += tw;
            }
            ty += th;
        }
        Ok(FrameSet::from_shared(next).expect("shapes preserved"))
    }

    /// Compute one tile through `d` levels, reading `state`, writing `next`.
    #[allow(clippy::too_many_arguments)]
    fn tile(
        &self,
        state: &FrameSet,
        next: &mut [Arc<Frame>],
        (tx, ty): (i64, i64),
        (tw, th): (i64, i64),
        d: u32,
        r: i64,
        dyn_index: &[Option<usize>],
    ) -> Result<(), SimError> {
        let (w, h) = (state.width() as i64, state.height() as i64);
        let dyn_fields = self.pattern.dynamic_fields();

        // Level extents, clipped to the frame: level `l` needs the tile grown
        // by radius x (d - l).
        let rect = |l: u32| -> (i64, i64, i64, i64) {
            let halo = r * (d - l) as i64;
            let x0 = (tx - halo).max(0);
            let y0 = if h > 1 { (ty - halo).max(0) } else { 0 };
            let x1 = (tx + tw - 1 + halo).min(w - 1);
            let y1 = if h > 1 { (ty + th - 1 + halo).min(h - 1) } else { 0 };
            (x0, y0, x1, y1)
        };

        // Level-0 buffers: direct copies of the current state over ext(0).
        let (x0, y0, x1, y1) = rect(0);
        let (bw, bh) = ((x1 - x0 + 1) as usize, (y1 - y0 + 1) as usize);
        let mut bufs: Vec<Vec<f64>> = dyn_fields
            .iter()
            .map(|f| {
                let fr = state.frame(f.index());
                let mut b = vec![0.0; bw * bh];
                for yy in 0..bh as i64 {
                    for xx in 0..bw as i64 {
                        b[(yy * bw as i64 + xx) as usize] =
                            fr.get((x0 + xx) as usize, (y0 + yy) as usize);
                    }
                }
                b
            })
            .collect();
        let mut buf_rect = (x0, y0, x1, y1);

        for l in 1..=d {
            let (nx0, ny0, nx1, ny1) = rect(l);
            let (nbw, nbh) = ((nx1 - nx0 + 1) as usize, (ny1 - ny0 + 1) as usize);
            let mut new_bufs: Vec<Vec<f64>> = dyn_fields
                .iter()
                .map(|_| vec![0.0; nbw * nbh])
                .collect();
            let (px0, py0, px1, py1) = buf_rect;
            let pbw = (px1 - px0 + 1) as usize;
            for (di, f) in dyn_fields.iter().enumerate() {
                let update = self.pattern.update(*f).expect("validated pattern");
                for yy in ny0..=ny1 {
                    for xx in nx0..=nx1 {
                        let read = |rf: FieldId, o: isl_ir::Offset| {
                            let (qx, qy) = (xx + o.dx as i64, yy + o.dy as i64);
                            if self.pattern.field(rf).kind == FieldKind::Static {
                                return state.frame(rf.index()).sample(qx, qy, self.border);
                            }
                            // Border-resolve at absolute frame coordinates,
                            // then look up in the previous level's buffer.
                            // (Resolve y even for height-1 frames: a
                            // rank-2 pattern can tap dy ≠ 0 there, and
                            // the golden run border-resolves it.)
                            let rx = self.border.resolve(qx, w);
                            let ry = self.border.resolve(qy, h);
                            match (rx, ry) {
                                (Some(rx), Some(ry)) => {
                                    debug_assert!(
                                        rx >= px0 && rx <= px1 && ry >= py0 && ry <= py1,
                                        "tile halo must cover border-resolved reads"
                                    );
                                    let di2 = dyn_index[rf.index()].expect("dynamic read");
                                    bufs[di2][((ry - py0) as usize) * pbw + (rx - px0) as usize]
                                }
                                _ => self
                                    .border
                                    .constant_value()
                                    .expect("non-resolving border is Constant"),
                            }
                        };
                        let param = |p: isl_ir::ParamId| self.params[p.index()];
                        let v = update.eval(&read, &param);
                        new_bufs[di][((yy - ny0) as usize) * nbw + (xx - nx0) as usize] = v;
                    }
                }
            }
            bufs = new_bufs;
            buf_rect = (nx0, ny0, nx1, ny1);
        }

        // Commit the top level into the output frames.
        let (fx0, fy0, fx1, fy1) = buf_rect;
        let fbw = (fx1 - fx0 + 1) as usize;
        for (di, f) in dyn_fields.iter().enumerate() {
            let out = Arc::make_mut(&mut next[f.index()]);
            for yy in fy0..=fy1 {
                for xx in fx0..=fx1 {
                    out.set(
                        xx as usize,
                        yy as usize,
                        bufs[di][((yy - fy0) as usize) * fbw + (xx - fx0) as usize],
                    );
                }
            }
        }
        Ok(())
    }

    /// One quantised reference level in the raw word domain — mirrors
    /// [`Simulator::tiled_level`] with `FixedFormat` node semantics.
    fn tiled_level_raw(
        &self,
        state: &WordSet,
        window: Window,
        d: u32,
        fmt: FixedFormat,
    ) -> Result<WordSet, SimError> {
        let (w, h) = (state.width() as i64, state.height() as i64);
        let r = self.pattern.radius() as i64;
        let mut next: Vec<Arc<Vec<i64>>> = (0..state.len()).map(|i| state.words_arc(i)).collect();
        let dyn_fields = self.pattern.dynamic_fields();
        let (_, dyn_index) = vm::dyn_slot_map(
            self.pattern.fields().len(),
            dyn_fields.iter().map(|f| f.index()),
        );
        let (tw, th) = (window.w as i64, window.h as i64);
        let mut ty = 0;
        while ty < h {
            let mut tx = 0;
            while tx < w {
                self.tile_raw(state, &mut next, (tx, ty), (tw, th), d, r, &dyn_index, fmt)?;
                tx += tw;
            }
            ty += th;
        }
        Ok(WordSet::from_shared(
            state.width(),
            state.height(),
            next,
        ))
    }

    /// Compute one tile through `d` raw-word levels — mirrors
    /// [`Simulator::tile`] with every node one `FixedFormat` operation.
    #[allow(clippy::too_many_arguments)]
    fn tile_raw(
        &self,
        state: &WordSet,
        next: &mut [Arc<Vec<i64>>],
        (tx, ty): (i64, i64),
        (tw, th): (i64, i64),
        d: u32,
        r: i64,
        dyn_index: &[Option<usize>],
        fmt: FixedFormat,
    ) -> Result<(), SimError> {
        let (w, h) = (state.width() as i64, state.height() as i64);
        let braw = qvm::border_raw(self.border, fmt);
        let dyn_fields = self.pattern.dynamic_fields();

        let rect = |l: u32| -> (i64, i64, i64, i64) {
            let halo = r * (d - l) as i64;
            let x0 = (tx - halo).max(0);
            let y0 = if h > 1 { (ty - halo).max(0) } else { 0 };
            let x1 = (tx + tw - 1 + halo).min(w - 1);
            let y1 = if h > 1 { (ty + th - 1 + halo).min(h - 1) } else { 0 };
            (x0, y0, x1, y1)
        };

        // Level-0 buffers: verbatim word copies of the current state.
        let (x0, y0, x1, y1) = rect(0);
        let (bw, bh) = ((x1 - x0 + 1) as usize, (y1 - y0 + 1) as usize);
        let mut bufs: Vec<Vec<i64>> = dyn_fields
            .iter()
            .map(|f| {
                let fr = state.words(f.index());
                let mut b = vec![0i64; bw * bh];
                for yy in 0..bh as i64 {
                    for xx in 0..bw as i64 {
                        b[(yy * bw as i64 + xx) as usize] =
                            fr[((y0 + yy) * w + x0 + xx) as usize];
                    }
                }
                b
            })
            .collect();
        let mut buf_rect = (x0, y0, x1, y1);

        for l in 1..=d {
            let (nx0, ny0, nx1, ny1) = rect(l);
            let (nbw, nbh) = ((nx1 - nx0 + 1) as usize, (ny1 - ny0 + 1) as usize);
            let mut new_bufs: Vec<Vec<i64>> = dyn_fields
                .iter()
                .map(|_| vec![0i64; nbw * nbh])
                .collect();
            let (px0, py0, px1, py1) = buf_rect;
            let pbw = (px1 - px0 + 1) as usize;
            for (di, f) in dyn_fields.iter().enumerate() {
                let update = self.pattern.update(*f).expect("validated pattern");
                for yy in ny0..=ny1 {
                    for xx in nx0..=nx1 {
                        let read = |rf: FieldId, o: isl_ir::Offset| {
                            let (qx, qy) = (xx + o.dx as i64, yy + o.dy as i64);
                            if self.pattern.field(rf).kind == FieldKind::Static {
                                return state.sample(rf.index(), qx, qy, self.border, braw);
                            }
                            let rx = self.border.resolve(qx, w);
                            let ry = self.border.resolve(qy, h);
                            match (rx, ry) {
                                (Some(rx), Some(ry)) => {
                                    debug_assert!(
                                        rx >= px0 && rx <= px1 && ry >= py0 && ry <= py1,
                                        "tile halo must cover border-resolved reads"
                                    );
                                    let di2 = dyn_index[rf.index()].expect("dynamic read");
                                    bufs[di2][((ry - py0) as usize) * pbw + (rx - px0) as usize]
                                }
                                _ => braw,
                            }
                        };
                        let param = |p: isl_ir::ParamId| self.params[p.index()];
                        let v = qvm::eval_expr_raw(update, &read, &param, fmt);
                        new_bufs[di][((yy - ny0) as usize) * nbw + (xx - nx0) as usize] = v;
                    }
                }
            }
            bufs = new_bufs;
            buf_rect = (nx0, ny0, nx1, ny1);
        }

        // Commit the top level into the output word buffers.
        let (fx0, fy0, fx1, fy1) = buf_rect;
        let fbw = (fx1 - fx0 + 1) as usize;
        for (di, f) in dyn_fields.iter().enumerate() {
            let out = Arc::make_mut(&mut next[f.index()]);
            for yy in fy0..=fy1 {
                for xx in fx0..=fx1 {
                    out[(yy * w + xx) as usize] =
                        bufs[di][((yy - fy0) as usize) * fbw + (xx - fx0) as usize];
                }
            }
        }
        Ok(())
    }

    // -- cone-DAG semantics ---------------------------------------------------

    /// Execute through the actual hash-consed cone DAGs (the structures the
    /// VHDL backend emits), window by window.
    ///
    /// Cones resolve borders only at their *base* inputs, exactly like the
    /// generated hardware; intermediate levels extrapolate past the frame
    /// edge. The result therefore matches [`Simulator::run`] on the frame
    /// interior (at distance ≥ `radius × iterations` from the edge) and may
    /// differ in a border band — the standard behaviour of streaming stencil
    /// hardware.
    ///
    /// Each distinct level depth is lowered **once** to a flat multi-output
    /// bytecode program ([`crate::compile::CompiledCone`]) and executed tile
    /// by tile on the VM — bit-identical to
    /// [`Simulator::run_cone_dag_reference`] (tests enforce it) for every
    /// thread count.
    ///
    /// # Errors
    ///
    /// [`SimError::Cone`] when cone construction fails, plus the
    /// [`Simulator::step`] errors.
    pub fn run_cone_dag(
        &self,
        init: &FrameSet,
        iterations: u32,
        window: Window,
        depth: u32,
    ) -> Result<FrameSet, SimError> {
        self.check(init)?;
        if depth == 0 {
            return Err(SimError::Cone("cone depth must be at least 1".into()));
        }
        let (tw, th) = (window.w as i64, window.h as i64);
        // At most two distinct depths appear (the main one plus a possible
        // remainder); fetch each from the program cache exactly once.
        let mut programs: Vec<(u32, Arc<CompiledCone>)> = Vec::new();
        let mut state = init.clone();
        let mut spare: Option<FrameSet> = None;
        for d in level_depths(iterations, depth) {
            if !programs.iter().any(|(pd, _)| *pd == d) {
                let cone = self.build_cone(window, d)?;
                programs.push((
                    d,
                    self.programs
                        .cone_program(self.pattern, &cone, &self.params, true),
                ));
            }
            let cc = &programs
                .iter()
                .find(|(pd, _)| *pd == d)
                .expect("program built above")
                .1;
            let next = vm::cone_level_compiled(
                cc,
                &state,
                self.border,
                self.threads,
                (tw, th),
                spare.take(),
            );
            spare = Some(std::mem::replace(&mut state, next));
        }
        Ok(state)
    }

    /// [`Simulator::run_cone_dag`] in fixed point — the exact numeric
    /// behaviour of the generated hardware's multi-level datapath, window
    /// by window.
    ///
    /// Cones are lowered **without** constant folding so every operation
    /// node of the cone graph (the set the VHDL registers) survives as one
    /// saturating fixed-point instruction — bit-identical to
    /// [`Simulator::run_cone_dag_quantized_reference`], which tests enforce.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_cone_dag`].
    pub fn run_cone_dag_quantized(
        &self,
        init: &FrameSet,
        iterations: u32,
        window: Window,
        depth: u32,
        q: Quantizer,
    ) -> Result<FrameSet, SimError> {
        self.check(init)?;
        if depth == 0 {
            return Err(SimError::Cone("cone depth must be at least 1".into()));
        }
        let fmt = q.format();
        let (tw, th) = (window.w as i64, window.h as i64);
        let mut programs: Vec<(u32, Arc<crate::compile::QuantizedCone>)> = Vec::new();
        let mut state = WordSet::quantize(init, fmt);
        let mut spare: Option<WordSet> = None;
        for d in level_depths(iterations, depth) {
            if !programs.iter().any(|(pd, _)| *pd == d) {
                let cone = self.build_cone(window, d)?;
                programs.push((
                    d,
                    self.programs
                        .quantized_cone_program(self.pattern, &cone, &self.params, fmt),
                ));
            }
            let qc = &programs
                .iter()
                .find(|(pd, _)| *pd == d)
                .expect("program built above")
                .1;
            let next = qvm::cone_level_quantized(
                qc,
                &state,
                self.border,
                self.threads,
                (tw, th),
                spare.take(),
            );
            spare = Some(std::mem::replace(&mut state, next));
        }
        Ok(state.dequantize(fmt))
    }

    /// [`Simulator::run_cone_dag_quantized`] through a tree-walking graph
    /// interpreter in the raw word domain — the golden quantised
    /// hardware-datapath semantics.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_cone_dag`].
    pub fn run_cone_dag_quantized_reference(
        &self,
        init: &FrameSet,
        iterations: u32,
        window: Window,
        depth: u32,
        q: Quantizer,
    ) -> Result<FrameSet, SimError> {
        self.check(init)?;
        if depth == 0 {
            return Err(SimError::Cone("cone depth must be at least 1".into()));
        }
        let fmt = q.format();
        let mut state = WordSet::quantize(init, fmt);
        for d in level_depths(iterations, depth) {
            let cone = self.build_cone(window, d)?;
            state = self.cone_level_raw(&state, &cone, fmt)?;
        }
        Ok(state.dequantize(fmt))
    }

    /// [`Simulator::run_cone_dag`] through [`Cone::eval`]'s tree-walking
    /// graph interpreter — the golden hardware-data-path semantics the
    /// compiled cone engine is property-tested against. Prefer
    /// [`Simulator::run_cone_dag`] (bit-identical, much faster).
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_cone_dag`].
    pub fn run_cone_dag_reference(
        &self,
        init: &FrameSet,
        iterations: u32,
        window: Window,
        depth: u32,
    ) -> Result<FrameSet, SimError> {
        self.check(init)?;
        if depth == 0 {
            return Err(SimError::Cone("cone depth must be at least 1".into()));
        }
        let mut state = init.clone();
        for d in level_depths(iterations, depth) {
            let cone = self.build_cone(window, d)?;
            state = self.cone_level(&state, &cone)?;
        }
        Ok(state)
    }

    fn cone_level(&self, state: &FrameSet, cone: &Cone) -> Result<FrameSet, SimError> {
        let (w, h) = (state.width() as i64, state.height() as i64);
        let window = cone.window();
        let mut next: Vec<Arc<Frame>> = state.frames().to_vec();
        let (tw, th) = (window.w as i64, window.h as i64);
        let mut ty = 0;
        while ty < h {
            let mut tx = 0;
            while tx < w {
                let read = |f: isl_ir::FieldId, p: isl_ir::Point| {
                    state
                        .frame(f.index())
                        .sample(tx + p.x as i64, ty + p.y as i64, self.border)
                };
                for (f, p, v) in cone.eval(read, &self.params) {
                    let (ax, ay) = (tx + p.x as i64, ty + p.y as i64);
                    if ax < w && ay < h {
                        Arc::make_mut(&mut next[f.index()]).set(ax as usize, ay as usize, v);
                    }
                }
                tx += tw;
            }
            ty += th;
        }
        Ok(FrameSet::from_shared(next).expect("shapes preserved"))
    }

    /// One cone level over raw words — the tree-walking golden reference of
    /// the quantised cone engine.
    fn cone_level_raw(
        &self,
        state: &WordSet,
        cone: &Cone,
        fmt: FixedFormat,
    ) -> Result<WordSet, SimError> {
        let (w, h) = (state.width() as i64, state.height() as i64);
        let braw = qvm::border_raw(self.border, fmt);
        let window = cone.window();
        let mut next: Vec<Arc<Vec<i64>>> =
            (0..state.len()).map(|i| state.words_arc(i)).collect();
        let (tw, th) = (window.w as i64, window.h as i64);
        let mut ty = 0;
        while ty < h {
            let mut tx = 0;
            while tx < w {
                let read = |f: isl_ir::FieldId, p: isl_ir::Point| {
                    state.sample(
                        f.index(),
                        tx + p.x as i64,
                        ty + p.y as i64,
                        self.border,
                        braw,
                    )
                };
                for (f, p, v) in eval_cone_graph_raw(cone, read, &self.params, fmt) {
                    let (ax, ay) = (tx + p.x as i64, ty + p.y as i64);
                    if ax < w && ay < h {
                        Arc::make_mut(&mut next[f.index()])[(ay * w + ax) as usize] = v;
                    }
                }
                tx += tw;
            }
            ty += th;
        }
        Ok(WordSet::from_shared(w as usize, h as usize, next))
    }
}

/// Evaluate a cone's dataflow graph in the raw word domain: every node is
/// one saturating `FixedFormat` operation (selects forward words unrounded,
/// like the hardware mux) — the tree-walking golden reference of the
/// quantised cone engine.
fn eval_cone_graph_raw<R>(
    cone: &Cone,
    read: R,
    params: &[f64],
    fmt: FixedFormat,
) -> Vec<(isl_ir::FieldId, isl_ir::Point, i64)>
where
    R: Fn(isl_ir::FieldId, isl_ir::Point) -> i64,
{
    use isl_ir::{Leaf, Node};
    let graph = cone.graph();
    let mut vals: Vec<i64> = Vec::with_capacity(graph.len());
    for (_, node) in graph.nodes() {
        let v = match node {
            Node::Leaf(Leaf::Input { field, point }) | Node::Leaf(Leaf::Static { field, point }) => {
                read(*field, *point)
            }
            Node::Leaf(Leaf::Const(c)) => fmt.quantize(c.value()),
            Node::Leaf(Leaf::Param(p)) => fmt.quantize(params[p.index()]),
            Node::Unary { op, arg } => fmt.apply_unary(*op, vals[arg.index()]),
            Node::Binary { op, lhs, rhs } => {
                fmt.apply_binary(*op, vals[lhs.index()], vals[rhs.index()])
            }
            Node::Select { cond, then_, else_ } => {
                if vals[cond.index()] != 0 {
                    vals[then_.index()]
                } else {
                    vals[else_.index()]
                }
            }
        };
        vals.push(v);
    }
    cone.outputs()
        .iter()
        .map(|o| (o.field, o.point, vals[o.node.index()]))
        .collect()
}

/// Decompose `iterations` into cone levels of `depth` plus a remainder level
/// — the paper's "additional specific core" for non-divisor depths. Public
/// because every consumer of the cone architecture (the quantised engines
/// here, the bit-true co-simulator in `isl-cosim`) must agree on exactly
/// this plan for their outputs to correspond level by level.
pub fn level_depths(iterations: u32, depth: u32) -> Vec<u32> {
    let mut v = vec![depth; (iterations / depth) as usize];
    if !iterations.is_multiple_of(depth) {
        v.push(iterations % depth);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_ir::{BinaryOp, Expr, Offset};

    fn jacobi() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("jacobi");
        let f = p.add_field("f", FieldKind::Dynamic);
        let avg = Expr::binary(
            BinaryOp::Mul,
            Expr::sum([
                Expr::input(f, Offset::d2(0, -1)),
                Expr::input(f, Offset::d2(-1, 0)),
                Expr::input(f, Offset::d2(1, 0)),
                Expr::input(f, Offset::d2(0, 1)),
            ]),
            Expr::constant(0.25),
        );
        p.set_update(f, avg).unwrap();
        p
    }

    fn relax_to_static() -> StencilPattern {
        // f' = 0.5 f + 0.5 g — converges to the static field g.
        let mut p = StencilPattern::new(2).with_name("relax");
        let f = p.add_field("f", FieldKind::Dynamic);
        let g = p.add_field("g", FieldKind::Static);
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::ZERO), Expr::constant(0.5)),
            Expr::binary(BinaryOp::Mul, Expr::input(g, Offset::ZERO), Expr::constant(0.5)),
        );
        p.set_update(f, e).unwrap();
        p
    }

    fn noisy(w: usize, h: usize) -> Frame {
        Frame::from_fn(w, h, |x, y| {
            ((x * 31 + y * 17) % 11) as f64 * 0.7 + (x as f64 * 0.1)
        })
    }

    #[test]
    fn golden_step_smooths() {
        let p = jacobi();
        let sim = Simulator::new(&p).unwrap();
        let init = FrameSet::from_frames(vec![noisy(12, 12)]).unwrap();
        let out = sim.run(&init, 5).unwrap();
        // Variance must drop under repeated averaging.
        let var = |f: &Frame| {
            let m = f.mean();
            f.as_slice().iter().map(|v| (v - m) * (v - m)).sum::<f64>() / f.len() as f64
        };
        assert!(var(out.frame(0)) < var(init.frame(0)));
    }

    #[test]
    fn tiled_equals_golden_all_local_borders() {
        let p = jacobi();
        let init = FrameSet::from_frames(vec![noisy(17, 13)]).unwrap();
        for border in [
            BorderMode::Clamp,
            BorderMode::Mirror,
            BorderMode::Constant(0.5),
        ] {
            let sim = Simulator::new(&p).unwrap().with_border(border);
            let golden = sim.run(&init, 5).unwrap();
            for (window, depth) in [
                (Window::square(4), 1),
                (Window::square(4), 2),
                (Window::square(3), 5),
                (Window::rect(5, 2), 3),
                (Window::square(1), 2),
            ] {
                let tiled = sim.run_tiled(&init, 5, window, depth).unwrap();
                assert!(
                    golden.max_abs_diff(&tiled) < 1e-12,
                    "border {border}, window {window}, depth {depth}"
                );
            }
        }
    }

    #[test]
    fn tiled_handles_remainder_levels() {
        // 7 iterations with depth 3 = levels [3, 3, 1].
        assert_eq!(level_depths(7, 3), vec![3, 3, 1]);
        assert_eq!(level_depths(10, 5), vec![5, 5]);
        assert_eq!(level_depths(3, 5), vec![3]);
        let p = jacobi();
        let sim = Simulator::new(&p).unwrap();
        let init = FrameSet::from_frames(vec![noisy(11, 9)]).unwrap();
        let golden = sim.run(&init, 7).unwrap();
        let tiled = sim.run_tiled(&init, 7, Window::square(4), 3).unwrap();
        assert!(golden.max_abs_diff(&tiled) < 1e-12);
    }

    #[test]
    fn cone_dag_rejects_zero_depth() {
        let p = jacobi();
        let sim = Simulator::new(&p).unwrap();
        let init = FrameSet::from_frames(vec![noisy(8, 8)]).unwrap();
        for f in [Simulator::run_cone_dag, Simulator::run_cone_dag_reference] {
            assert!(matches!(
                f(&sim, &init, 3, Window::square(4), 0),
                Err(SimError::Cone(_))
            ));
        }
    }

    #[test]
    fn tiled_rejects_wrap() {
        let p = jacobi();
        let sim = Simulator::new(&p).unwrap().with_border(BorderMode::Wrap);
        let init = FrameSet::from_frames(vec![noisy(8, 8)]).unwrap();
        assert_eq!(
            sim.run_tiled(&init, 2, Window::square(4), 2).unwrap_err(),
            SimError::NonLocalBorder
        );
        // Golden still supports wrap.
        sim.run(&init, 2).unwrap();
    }

    #[test]
    fn tiled_multi_field_with_static() {
        let p = relax_to_static();
        let sim = Simulator::new(&p).unwrap();
        let init = FrameSet::from_frames(vec![noisy(10, 10), Frame::from_fn(10, 10, |x, _| x as f64)])
            .unwrap();
        let golden = sim.run(&init, 4).unwrap();
        let tiled = sim.run_tiled(&init, 4, Window::square(3), 2).unwrap();
        assert!(golden.max_abs_diff(&tiled) < 1e-12);
        // Static field untouched.
        assert_eq!(golden.frame(1), init.frame(1));
    }

    #[test]
    fn one_dimensional_tiled() {
        let mut p = StencilPattern::new(1).with_name("avg1d");
        let f = p.add_field("f", FieldKind::Dynamic);
        p.set_update(
            f,
            Expr::binary(
                BinaryOp::Mul,
                Expr::sum([
                    Expr::input(f, Offset::d1(-1)),
                    Expr::input(f, Offset::d1(0)),
                    Expr::input(f, Offset::d1(1)),
                ]),
                Expr::constant(1.0 / 3.0),
            ),
        )
        .unwrap();
        let sim = Simulator::new(&p).unwrap().with_border(BorderMode::Mirror);
        let init = FrameSet::from_frames(vec![Frame::from_samples(&[
            3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0, 5.0,
        ])])
        .unwrap();
        let golden = sim.run(&init, 6).unwrap();
        let tiled = sim.run_tiled(&init, 6, Window::line(4), 2).unwrap();
        assert!(golden.max_abs_diff(&tiled) < 1e-12);
    }

    #[test]
    fn compiled_tiled_matches_reference_bitwise() {
        let p = relax_to_static();
        let init = FrameSet::from_frames(vec![noisy(19, 13), Frame::from_fn(19, 13, |x, _| x as f64)])
            .unwrap();
        for border in [BorderMode::Clamp, BorderMode::Mirror, BorderMode::Constant(0.25)] {
            for threads in [1, 2, 4] {
                let sim = Simulator::new(&p)
                    .unwrap()
                    .with_border(border)
                    .with_threads(threads);
                for (window, depth) in [
                    (Window::square(4), 2),
                    (Window::rect(5, 2), 3),
                    (Window::square(1), 2),
                    (Window::square(7), 4),
                ] {
                    let fast = sim.run_tiled(&init, 7, window, depth).unwrap();
                    let gold = sim.run_tiled_reference(&init, 7, window, depth).unwrap();
                    for fi in 0..init.len() {
                        for (a, b) in fast
                            .frame(fi)
                            .as_slice()
                            .iter()
                            .zip(gold.frame(fi).as_slice())
                        {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "border {border}, window {window}, depth {depth}, {threads}t"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn compiled_cone_dag_matches_reference_bitwise() {
        let p = jacobi();
        let init = FrameSet::from_frames(vec![noisy(22, 15)]).unwrap();
        for border in [BorderMode::Clamp, BorderMode::Wrap, BorderMode::Constant(0.5)] {
            for threads in [1, 2, 4] {
                let sim = Simulator::new(&p)
                    .unwrap()
                    .with_border(border)
                    .with_threads(threads);
                for (window, depth) in [(Window::square(4), 2), (Window::rect(6, 3), 3)] {
                    let fast = sim.run_cone_dag(&init, 5, window, depth).unwrap();
                    let gold = sim.run_cone_dag_reference(&init, 5, window, depth).unwrap();
                    for (a, b) in fast
                        .frame(0)
                        .as_slice()
                        .iter()
                        .zip(gold.frame(0).as_slice())
                    {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "border {border}, window {window}, depth {depth}, {threads}t"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cone_dag_matches_golden_in_interior() {
        let p = jacobi();
        let sim = Simulator::new(&p).unwrap();
        let init = FrameSet::from_frames(vec![noisy(24, 24)]).unwrap();
        let iters = 4u32;
        let golden = sim.run(&init, iters).unwrap();
        let dag = sim.run_cone_dag(&init, iters, Window::square(4), 2).unwrap();
        let margin = (p.radius() * iters) as usize;
        for y in margin..24 - margin {
            for x in margin..24 - margin {
                let a = golden.frame(0).get(x, y);
                let b = dag.frame(0).get(x, y);
                assert!((a - b).abs() < 1e-12, "mismatch at ({x},{y}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn convergence_to_static_field() {
        let p = relax_to_static();
        let sim = Simulator::new(&p).unwrap();
        let g = Frame::from_fn(8, 8, |x, y| (x + y) as f64);
        let init = FrameSet::from_frames(vec![Frame::new(8, 8), g.clone()]).unwrap();
        let (fixed, report) = sim.run_until_converged(&init, 1e-9, 200).unwrap();
        assert!(report.converged);
        assert!(report.iterations < 200);
        assert!(fixed.frame(0).max_abs_diff(&g) < 1e-6);
    }

    #[test]
    fn non_convergence_is_reported() {
        // f' = f + 1 never converges.
        let mut p = StencilPattern::new(1);
        let f = p.add_field("f", FieldKind::Dynamic);
        p.set_update(
            f,
            Expr::binary(BinaryOp::Add, Expr::input(f, Offset::ZERO), Expr::constant(1.0)),
        )
        .unwrap();
        let sim = Simulator::new(&p).unwrap();
        let init = FrameSet::from_frames(vec![Frame::from_samples(&[0.0; 4])]).unwrap();
        let (_, report) = sim.run_until_converged(&init, 1e-9, 10).unwrap();
        assert!(!report.converged);
        assert_eq!(report.iterations, 10);
        assert!((report.delta - 1.0).abs() < 1e-12);
    }

    #[test]
    fn params_are_respected() {
        let mut p = StencilPattern::new(1);
        let f = p.add_field("f", FieldKind::Dynamic);
        let tau = p.add_param("tau", 0.5);
        p.set_update(
            f,
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::ZERO), Expr::param(tau)),
        )
        .unwrap();
        let init = FrameSet::from_frames(vec![Frame::from_samples(&[8.0])]).unwrap();
        let by_default = Simulator::new(&p).unwrap().run(&init, 1).unwrap();
        assert_eq!(by_default.frame(0).get(0, 0), 4.0);
        let by_override = Simulator::new(&p)
            .unwrap()
            .with_params(vec![0.25])
            .unwrap()
            .run(&init, 1)
            .unwrap();
        assert_eq!(by_override.frame(0).get(0, 0), 2.0);
        assert!(matches!(
            Simulator::new(&p).unwrap().with_params(vec![]),
            Err(SimError::ParamCountMismatch { .. })
        ));
    }

    #[test]
    fn field_count_mismatch_detected() {
        let p = jacobi();
        let sim = Simulator::new(&p).unwrap();
        let bad = FrameSet::from_frames(vec![noisy(4, 4), noisy(4, 4)]).unwrap();
        assert!(matches!(
            sim.step(&bad),
            Err(SimError::FieldCountMismatch { expected: 1, got: 2 })
        ));
    }
}
