//! Deterministic synthetic frame generators.
//!
//! The paper's experiments run on 1024x768 and Full-HD camera frames we do
//! not have; these generators produce deterministic stand-ins with the same
//! statistical roles (smooth regions, edges, noise) so every experiment is
//! reproducible byte-for-byte. All randomness is a seeded splitmix64 stream.

use crate::frame::Frame;

/// A tiny, fast, deterministic PRNG (splitmix64). Not cryptographic; used
/// only to synthesise reproducible test frames.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A smooth diagonal luminance gradient in `[0, 1]`.
pub fn gradient(width: usize, height: usize) -> Frame {
    Frame::from_fn(width, height, |x, y| {
        (x + y) as f64 / (width + height - 2).max(1) as f64
    })
}

/// A checkerboard with `cell`-pixel squares (hard edges for blur tests).
///
/// # Panics
///
/// Panics if `cell == 0`.
pub fn checkerboard(width: usize, height: usize, cell: usize) -> Frame {
    assert!(cell > 0, "cell size must be positive");
    Frame::from_fn(width, height, |x, y| {
        if ((x / cell) + (y / cell)).is_multiple_of(2) {
            1.0
        } else {
            0.0
        }
    })
}

/// Uniform noise in `[0, 1)` from `seed`.
pub fn noise(width: usize, height: usize, seed: u64) -> Frame {
    let mut rng = SplitMix64::new(seed);
    Frame::from_fn(width, height, |_, _| rng.next_f64())
}

/// A smooth scene of `spots` Gaussian blobs plus a gradient floor — a
/// camera-like test frame for denoising and optical-flow style workloads.
pub fn gaussian_spots(width: usize, height: usize, seed: u64, spots: usize) -> Frame {
    let mut rng = SplitMix64::new(seed);
    let blobs: Vec<(f64, f64, f64, f64)> = (0..spots)
        .map(|_| {
            (
                rng.next_f64() * width as f64,
                rng.next_f64() * height as f64,
                (0.02 + 0.08 * rng.next_f64()) * width.max(height) as f64, // sigma
                0.3 + 0.7 * rng.next_f64(),                                // amplitude
            )
        })
        .collect();
    Frame::from_fn(width, height, |x, y| {
        let mut v = 0.1 * (x + y) as f64 / (width + height) as f64;
        for (cx, cy, sigma, amp) in &blobs {
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            v += amp * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
        }
        v
    })
}

/// `scene` corrupted with additive uniform noise of amplitude `amplitude`
/// (denoising workloads).
pub fn add_noise(scene: &Frame, seed: u64, amplitude: f64) -> Frame {
    let mut rng = SplitMix64::new(seed);
    Frame::from_fn(scene.width(), scene.height(), |x, y| {
        scene.get(x, y) + amplitude * (rng.next_f64() - 0.5)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_noise() {
        let a = noise(16, 16, 42);
        let b = noise(16, 16, 42);
        let c = noise(16, 16, 43);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn noise_in_unit_interval() {
        let f = noise(32, 32, 7);
        for &v in f.as_slice() {
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn checkerboard_alternates() {
        let f = checkerboard(8, 8, 2);
        assert_eq!(f.get(0, 0), 1.0);
        assert_eq!(f.get(2, 0), 0.0);
        assert_eq!(f.get(0, 2), 0.0);
        assert_eq!(f.get(2, 2), 1.0);
    }

    #[test]
    fn gradient_monotone() {
        let f = gradient(10, 10);
        assert_eq!(f.get(0, 0), 0.0);
        assert_eq!(f.get(9, 9), 1.0);
        assert!(f.get(4, 4) < f.get(5, 5));
    }

    #[test]
    fn spots_are_reproducible_and_bounded() {
        let a = gaussian_spots(64, 48, 1, 5);
        let b = gaussian_spots(64, 48, 1, 5);
        assert_eq!(a, b);
        for &v in a.as_slice() {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn add_noise_perturbs() {
        let clean = gradient(16, 16);
        let dirty = add_noise(&clean, 3, 0.2);
        let d = clean.max_abs_diff(&dirty);
        assert!(d > 0.0 && d <= 0.1 + 1e-9);
    }
}
