//! Uniform engine-harness hooks over the simulator's execution matrix.
//!
//! The simulator exposes twelve `run*` entry points: three decomposition
//! **semantics** (whole-frame, tiled cone architecture, cone-DAG level
//! schedule) × two **engines** (tree-walking reference, compiled bytecode)
//! × two **domains** (`f64`, quantised fixed point). Callers that sweep the
//! matrix — the differential fuzzer above all — need one dispatch point
//! instead of twelve method names; this module is that point.
//!
//! [`run_f64`] and [`run_quantized`] take a [`RunSpec`] naming the
//! decomposition and an [`Engine`] naming the evaluator, and forward to
//! the corresponding `Simulator` method. The bitwise contracts between the
//! cells (compiled == reference within every semantics; tiled == whole for
//! local borders) are the repo's standing equivalence properties — the
//! harness adds no semantics of its own.

use isl_ir::Window;

use crate::error::SimError;
use crate::fixed::Quantizer;
use crate::frame::FrameSet;
use crate::sim::Simulator;

/// Which decomposition of the iteration space a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Whole-frame stepping, one iteration at a time.
    Whole,
    /// The paper's tiled cone architecture: levels of depth-`d` cones,
    /// window by window, borders resolved at each level's base.
    Tiled,
    /// The cone-DAG schedule: the same levels executed through compiled
    /// whole-cone programs (interior-exact; borders differ from `Tiled`).
    ConeDag,
}

impl Semantics {
    /// All decomposition semantics, in sweep order.
    pub const ALL: [Semantics; 3] = [Semantics::Whole, Semantics::Tiled, Semantics::ConeDag];

    /// Short stable name (`whole` / `tiled` / `cone-dag`).
    pub fn name(self) -> &'static str {
        match self {
            Semantics::Whole => "whole",
            Semantics::Tiled => "tiled",
            Semantics::ConeDag => "cone-dag",
        }
    }
}

/// Which evaluator executes a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The tree-walking golden interpreter.
    Reference,
    /// The compiled bytecode / lane engines.
    Compiled,
}

impl Engine {
    /// Both engines, reference first.
    pub const ALL: [Engine; 2] = [Engine::Reference, Engine::Compiled];

    /// Short stable name (`reference` / `compiled`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Reference => "reference",
            Engine::Compiled => "compiled",
        }
    }
}

/// One run of the execution matrix: a decomposition plus its parameters.
/// `window` and `depth` are ignored by [`Semantics::Whole`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Decomposition semantics.
    pub semantics: Semantics,
    /// Iteration count.
    pub iterations: u32,
    /// Cone window (tiled / cone-DAG only).
    pub window: Window,
    /// Cone depth (tiled / cone-DAG only).
    pub depth: u32,
}

/// Execute `spec` on `engine` in the `f64` domain.
///
/// # Errors
///
/// Whatever the dispatched `Simulator` method reports.
pub fn run_f64(
    sim: &Simulator<'_>,
    spec: RunSpec,
    engine: Engine,
    init: &FrameSet,
) -> Result<FrameSet, SimError> {
    let RunSpec { iterations: n, window: w, depth: d, .. } = spec;
    match (spec.semantics, engine) {
        (Semantics::Whole, Engine::Reference) => sim.run_reference(init, n),
        (Semantics::Whole, Engine::Compiled) => sim.run(init, n),
        (Semantics::Tiled, Engine::Reference) => sim.run_tiled_reference(init, n, w, d),
        (Semantics::Tiled, Engine::Compiled) => sim.run_tiled(init, n, w, d),
        (Semantics::ConeDag, Engine::Reference) => sim.run_cone_dag_reference(init, n, w, d),
        (Semantics::ConeDag, Engine::Compiled) => sim.run_cone_dag(init, n, w, d),
    }
}

/// Execute `spec` on `engine` in the quantised fixed-point domain.
///
/// # Errors
///
/// Whatever the dispatched `Simulator` method reports.
pub fn run_quantized(
    sim: &Simulator<'_>,
    spec: RunSpec,
    engine: Engine,
    init: &FrameSet,
    q: Quantizer,
) -> Result<FrameSet, SimError> {
    let RunSpec { iterations: n, window: w, depth: d, .. } = spec;
    match (spec.semantics, engine) {
        (Semantics::Whole, Engine::Reference) => sim.run_quantized_reference(init, n, q),
        (Semantics::Whole, Engine::Compiled) => sim.run_quantized(init, n, q),
        (Semantics::Tiled, Engine::Reference) => sim.run_tiled_quantized_reference(init, n, w, d, q),
        (Semantics::Tiled, Engine::Compiled) => sim.run_tiled_quantized(init, n, w, d, q),
        (Semantics::ConeDag, Engine::Reference) => {
            sim.run_cone_dag_quantized_reference(init, n, w, d, q)
        }
        (Semantics::ConeDag, Engine::Compiled) => sim.run_cone_dag_quantized(init, n, w, d, q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use isl_ir::{BinaryOp, Expr, FieldKind, Offset, StencilPattern};

    fn cross() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("cross");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(0, 0)),
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(1, 0)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(4.0)))
            .unwrap();
        p
    }

    #[test]
    fn dispatch_matches_direct_calls_bitwise() {
        let p = cross();
        let sim = Simulator::new(&p).unwrap();
        let init = FrameSet::from_frames(vec![Frame::from_fn(9, 7, |x, y| {
            (x as f64).mul_add(0.25, y as f64 * -0.5)
        })])
        .unwrap();
        let spec = RunSpec {
            semantics: Semantics::Tiled,
            iterations: 3,
            window: Window::square(4),
            depth: 2,
        };
        let via_harness = run_f64(&sim, spec, Engine::Compiled, &init).unwrap();
        let direct = sim.run_tiled(&init, 3, Window::square(4), 2).unwrap();
        for (a, b) in via_harness.frames().iter().zip(direct.frames()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        let q = Quantizer::new(16, 8);
        let qa = run_quantized(&sim, spec, Engine::Reference, &init, q).unwrap();
        let qb = sim
            .run_tiled_quantized_reference(&init, 3, Window::square(4), 2, q)
            .unwrap();
        for (a, b) in qa.frames().iter().zip(qb.frames()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }
}
