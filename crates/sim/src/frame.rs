//! Frames (grids of samples) and frame sets.

use std::fmt;
use std::sync::Arc;

use crate::border::BorderMode;
use crate::error::SimError;

/// A 2D grid of `f64` samples (use height 1 for 1D stencils).
///
/// ```
/// use isl_sim::{Frame, BorderMode};
/// let f = Frame::from_fn(4, 3, |x, y| (10 * y + x) as f64);
/// assert_eq!(f.get(1, 2), 21.0);
/// assert_eq!(f.sample(-1, 0, BorderMode::Clamp), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    width: usize,
    height: usize,
    data: Vec<f64>,
}

impl Frame {
    /// A zero-filled frame.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        Frame {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Build a frame from a generator function `(x, y) -> value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut frame = Frame::new(width, height);
        for y in 0..height {
            for x in 0..width {
                frame.data[y * width + x] = f(x, y);
            }
        }
        frame
    }

    /// Build a frame that takes ownership of row-major `data`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f64>) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        assert_eq!(data.len(), width * height, "sample count must match dimensions");
        Frame { width, height, data }
    }

    /// Build a 1D frame (height 1) from samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "frame dimensions must be positive");
        Frame {
            width: samples.len(),
            height: 1,
            data: samples.to_vec(),
        }
    }

    /// Width in samples.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in samples (1 for 1D).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the frame is empty (never true: dimensions are positive).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// In-bounds sample access.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "frame access out of bounds");
        self.data[y * self.width + x]
    }

    /// In-bounds sample write.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        assert!(x < self.width && y < self.height, "frame access out of bounds");
        self.data[y * self.width + x] = v;
    }

    /// Border-resolved read at possibly-out-of-frame coordinates.
    pub fn sample(&self, x: i64, y: i64, border: BorderMode) -> f64 {
        let rx = border.resolve(x, self.width as i64);
        let ry = border.resolve(y, self.height as i64);
        match (rx, ry) {
            (Some(rx), Some(ry)) => self.data[ry as usize * self.width + rx as usize],
            _ => border
                .constant_value()
                .expect("resolve returns None only for Constant"),
        }
    }

    /// Raw samples, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consume the frame, returning its sample storage. Used by the engine's
    /// double-buffered stepping to recycle output allocations.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Largest absolute difference against another frame.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn max_abs_diff(&self, other: &Frame) -> f64 {
        assert!(
            self.width == other.width && self.height == other.height,
            "cannot diff frames of different sizes"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Root-mean-square difference against another frame.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn rms_diff(&self, other: &Frame) -> f64 {
        assert!(
            self.width == other.width && self.height == other.height,
            "cannot diff frames of different sizes"
        );
        let sum: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (sum / self.data.len() as f64).sqrt()
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame {}x{}", self.width, self.height)
    }
}

/// One frame per stencil field, aligned with the pattern's field ids.
///
/// Frames are stored behind [`Arc`] so that a step which leaves a field
/// untouched (every `Static` field, every iteration) shares the frame
/// instead of copying it; [`FrameSet::frame_mut`] restores copy-on-write
/// semantics for callers that do mutate.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSet {
    frames: Vec<Arc<Frame>>,
}

impl FrameSet {
    /// Assemble a set from per-field frames (index = field id). All frames
    /// must share dimensions.
    ///
    /// # Errors
    ///
    /// [`SimError::FrameSizeMismatch`] when dimensions differ,
    /// [`SimError::FieldCountMismatch`] when empty.
    pub fn from_frames(frames: Vec<Frame>) -> Result<Self, SimError> {
        Self::from_shared(frames.into_iter().map(Arc::new).collect())
    }

    /// Assemble a set from already-shared frames without copying them.
    ///
    /// # Errors
    ///
    /// Same as [`FrameSet::from_frames`].
    pub fn from_shared(frames: Vec<Arc<Frame>>) -> Result<Self, SimError> {
        if frames.is_empty() {
            return Err(SimError::FieldCountMismatch { expected: 1, got: 0 });
        }
        let (w, h) = (frames[0].width(), frames[0].height());
        if frames.iter().any(|f| f.width() != w || f.height() != h) {
            return Err(SimError::FrameSizeMismatch);
        }
        Ok(FrameSet { frames })
    }

    /// The frame of field `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn frame(&self, i: usize) -> &Frame {
        &self.frames[i]
    }

    /// A shared handle to the frame of field `i` (no sample copy).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn frame_arc(&self, i: usize) -> Arc<Frame> {
        Arc::clone(&self.frames[i])
    }

    /// Mutable access to the frame of field `i` (copy-on-write: the samples
    /// are copied only if the frame is currently shared).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn frame_mut(&mut self, i: usize) -> &mut Frame {
        Arc::make_mut(&mut self.frames[i])
    }

    /// All frames, in field order, as shared handles.
    pub fn frames(&self) -> &[Arc<Frame>] {
        &self.frames
    }

    /// Consume the set, returning the shared frames in field order. Frames
    /// whose handle was the last one can then be reclaimed with
    /// [`Arc::try_unwrap`] — the basis of the engine's ping-pong buffering.
    pub fn into_frames(self) -> Vec<Arc<Frame>> {
        self.frames
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the set is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame width (shared by construction).
    pub fn width(&self) -> usize {
        self.frames[0].width()
    }

    /// Frame height (shared by construction).
    pub fn height(&self) -> usize {
        self.frames[0].height()
    }

    /// A stable content hash of the whole set: shape plus the exact bit
    /// pattern of every sample of every field (FNV-1a, reproducible across
    /// processes). Two sets with equal fingerprints are bit-identical
    /// inputs for every engine, which is what makes the fingerprint a sound
    /// key for caching run artifacts — golden vectors, architecture
    /// certificates — at the flow level.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(self.frames.len() as u64);
        eat(self.width() as u64);
        eat(self.height() as u64);
        for frame in &self.frames {
            for v in frame.as_slice() {
                eat(v.to_bits());
            }
        }
        h
    }

    /// Largest absolute difference across all fields.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different shapes.
    pub fn max_abs_diff(&self, other: &FrameSet) -> f64 {
        assert_eq!(self.frames.len(), other.frames.len(), "field count mismatch");
        self.frames
            .iter()
            .zip(&other.frames)
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout() {
        let f = Frame::from_fn(3, 2, |x, y| (y * 10 + x) as f64);
        assert_eq!(f.get(0, 0), 0.0);
        assert_eq!(f.get(2, 1), 12.0);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn sample_borders() {
        let f = Frame::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(f.sample(-1, 0, BorderMode::Clamp), 1.0);
        assert_eq!(f.sample(3, 0, BorderMode::Clamp), 3.0);
        assert_eq!(f.sample(-1, 0, BorderMode::Mirror), 2.0);
        assert_eq!(f.sample(-1, 0, BorderMode::Wrap), 3.0);
        assert_eq!(f.sample(-1, 0, BorderMode::Constant(9.0)), 9.0);
        assert_eq!(f.sample(1, 0, BorderMode::Constant(9.0)), 2.0);
    }

    #[test]
    fn diffs() {
        let a = Frame::from_samples(&[1.0, 2.0]);
        let b = Frame::from_samples(&[1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!((a.rms_diff(&b) - (0.125f64).sqrt()).abs() < 1e-12);
        assert_eq!(a.mean(), 1.5);
    }

    #[test]
    fn frameset_checks_shapes() {
        let a = Frame::new(4, 4);
        let b = Frame::new(4, 5);
        assert_eq!(
            FrameSet::from_frames(vec![a.clone(), b]),
            Err(SimError::FrameSizeMismatch)
        );
        let set = FrameSet::from_frames(vec![a.clone(), a]).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.width(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        Frame::new(2, 2).get(2, 0);
    }
}
