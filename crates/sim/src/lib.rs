//! # isl-sim — functional simulation of iterative stencil loops
//!
//! The architecture template of the DAC 2013 paper rests on a claim
//! (Section 3.1): *the desired processing can be performed by repeatedly
//! applying a cone to portions of the input matrix*. This crate provides the
//! machinery to state and check that claim executably:
//!
//! * [`Frame`] / [`FrameSet`] — 1D and 2D grids of `f64` samples with
//!   explicit [`BorderMode`] resolution;
//! * [`Simulator::run`] — the *golden* semantics: one whole frame per
//!   iteration, exactly Algorithm 1 of the paper;
//! * [`Simulator::run_tiled`] — the *cone architecture* semantics: the frame
//!   is processed window by window through levels of depth-`d` cones, with
//!   border handling applied at every level at absolute frame coordinates.
//!   For clamp/mirror/constant borders this is **bit-identical** to the
//!   golden run (tests enforce it);
//! * [`Simulator::run_cone_dag`] — evaluates the actual hash-consed cone
//!   DAGs (the thing the VHDL implements) per window; identical to golden on
//!   the frame interior, and the hardware-faithful data path;
//! * [`Simulator::run_until_converged`] — fixed-point iteration for the
//!   "potentially unbounded" ISL variant mentioned in Section 2;
//! * [`synthetic`] — deterministic frame generators standing in for the
//!   paper's camera images.
//!
//! ## The compiled execution engine
//!
//! **Every** execution path — [`Simulator::step`], [`Simulator::run`],
//! [`Simulator::run_until_converged`], [`Simulator::run_quantized`],
//! [`Simulator::run_tiled`] and [`Simulator::run_cone_dag`] — executes on a
//! **compiled bytecode engine** rather than walking the [`isl_ir::Expr`]
//! tree (or the cone graph) per element:
//!
//! * [`compile`] lowers each dynamic field's update expression once into a
//!   flat, register-indexed instruction buffer ([`CompiledPattern`]) — no
//!   `Box` chasing, parameters bound up front, constants folded and common
//!   subexpressions shared. The program is built lazily on first step and
//!   cached on the simulator.
//! * For the cone-DAG path, [`compile`] additionally lowers a whole cone
//!   level — the hash-consed multi-iteration graph the VHDL backend emits —
//!   into one multi-output program ([`CompiledCone`]) with CSE across the
//!   entire cone and **slot-allocated registers** (linear scan, freed after
//!   last use), so the evaluator's scratch holds only the peak live set, an
//!   order of magnitude below the instruction count. A **kill-first
//!   scheduling pre-pass** (greedy consumer clustering: always emit the
//!   ready instruction that retires the most operand slots) reorders the
//!   program before allocation whenever that shrinks the peak further —
//!   15–45 % fewer slots on the wide IGF/Chambolle cones, never more
//!   (the compiler keeps whichever order allocates smaller).
//! * The VM evaluates each frame in **three planes**: an *interior plane*
//!   where every stencil tap is statically in-bounds (reads become raw
//!   row-slice copies and the program runs instruction-at-a-time over whole
//!   row spans, which vectorises), plus *border strips* that fall back to
//!   per-pixel evaluation with full [`BorderMode`] resolution. The same
//!   machinery runs [`Simulator::run_tiled`]'s levels over reusable tile
//!   halo buffers (frames and halo buffers are one source-view type), and
//!   [`Simulator::run_cone_dag`]'s window tiles as structure-of-arrays
//!   *lanes* — one lane per tile, arithmetic amortised across a whole band
//!   of tiles.
//! * Steps are **double-buffered**: run loops recycle the retiring frame
//!   set's uniquely-owned allocations as the next step's output buffers, so
//!   long runs stop paying the allocator per iteration.
//! * Work is distributed over a **persistent worker pool** ([`parallel`]):
//!   threads are spawned once per process and parked between calls, cutting
//!   the per-step spawn overhead that used to eat the engine's gains on
//!   small frames. Interior rows parallelise in contiguous row bands, tiled
//!   and cone levels in bands of whole tile rows; tune with
//!   [`Simulator::with_threads`] (default: one per core, automatically
//!   serial for tiny frames).
//!
//! ## The quantised datapath
//!
//! Every execution semantics also has a **quantised** variant —
//! [`Simulator::run_quantized`], [`Simulator::run_tiled_quantized`],
//! [`Simulator::run_cone_dag_quantized`] — that runs entirely in the **raw
//! word domain** of a hardware fixed-point format
//! ([`Quantizer`] / [`isl_fpga::FixedFormat`]): frames are quantised once
//! on entry, every instruction is a saturating integer operation
//! (`i128`-widened truncating multiply/divide, saturating add/sub — exactly
//! the datapath the generated VHDL implements), and words dequantise once
//! on exit. Three design decisions make this both fast and trustworthy:
//!
//! * **Rounding is fused at compile time.** [`compile`] lowers the pattern
//!   (fold-free, so every node of the reference expression tree survives)
//!   into a dedicated quantised program ([`QuantizedPattern`] /
//!   [`QuantizedCone`]) whose instructions *are* the rounding rule — there
//!   is no per-op `Option<Quantizer>` hook, so running a program with a
//!   mismatched quantiser is unrepresentable, and the inner loops carry no
//!   rounding branches.
//! * **Lane kernels are shared with the hardware model.** The span-wise
//!   saturating kernels (`FixedFormat::unary_span` / `binary_span` in
//!   `isl-fpga`) are the *single* bit-true definition of the datapath:
//!   this crate's three quantised engines (whole-frame rect evaluator,
//!   tiled halo-buffer path, cone SoA lanes — mirroring the `f64` planes
//!   above) and the `isl-cosim` integer VM all execute them, so a property
//!   test of any engine against the tree-walking raw-word references
//!   transitively pins the others.
//! * **Cone outputs retire as they stream.** Slot allocation lets an
//!   output's register die at its defining instruction; evaluators scatter
//!   each output to its destination frame the moment it is produced, so the
//!   live set of a wide cone stays below its output count and SoA lane
//!   scratch shrinks accordingly.
//!
//! The tree-walking interpreters survive as [`Simulator::step_reference`] /
//! [`Simulator::run_reference`] / [`Simulator::run_quantized_reference`] /
//! [`Simulator::run_tiled_reference`] /
//! [`Simulator::run_cone_dag_reference`] (and the quantised
//! `*_quantized_reference` pair): the golden semantics the engine is
//! property-tested against — results are **bit-identical** for every
//! pattern, border mode, window shape, depth, fixed-point format and
//! thread count (see `tests/tests/compiled_engine_props.rs`,
//! `tests/tests/tiled_engine_props.rs` and `tests/tests/cosim_props.rs`).
//!
//! Measure the difference with `cargo bench -p isl-bench --bench sim_engine`,
//! which compares interpreted vs compiled runs of all three semantics
//! (gaussian IGF and Chambolle at 256×256) and writes `BENCH_sim.json`; on
//! one core the compiled engine is ~13×/~29× (whole-frame), ~10×/~26×
//! (tiled) and ~6×/~7× (cone-DAG) faster for IGF/Chambolle respectively
//! (run to run the exact ratios wander with machine load; the committed
//! `BENCH_sim.json` holds the last measured trajectory point).
//!
//! ```
//! use isl_sim::{Frame, FrameSet, Simulator, BorderMode};
//! use isl_ir::{StencilPattern, FieldKind, Expr, BinaryOp, Offset};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = StencilPattern::new(2);
//! let f = p.add_field("f", FieldKind::Dynamic);
//! let avg = Expr::binary(
//!     BinaryOp::Mul,
//!     Expr::sum([
//!         Expr::input(f, Offset::d2(0, -1)),
//!         Expr::input(f, Offset::d2(-1, 0)),
//!         Expr::input(f, Offset::d2(1, 0)),
//!         Expr::input(f, Offset::d2(0, 1)),
//!     ]),
//!     Expr::constant(0.25),
//! );
//! p.set_update(f, avg)?;
//!
//! let sim = Simulator::new(&p)?.with_border(BorderMode::Clamp);
//! let init = FrameSet::from_frames(vec![Frame::from_fn(16, 16, |x, y| (x + y) as f64)])?;
//! let golden = sim.run(&init, 4)?;
//! let tiled = sim.run_tiled(&init, 4, isl_ir::Window::square(4), 2)?;
//! assert!(golden.max_abs_diff(&tiled) < 1e-12);
//! # Ok(())
//! # }
//! ```

// Unsafe is denied crate-wide; the single audited exception is the
// lifetime-erasure choke point of the persistent worker pool in `parallel`
// (see `parallel::erase` for the safety argument).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod border;
pub mod compile;
mod error;
mod fixed;
mod frame;
pub mod harness;
mod metrics;
pub mod parallel;
mod qvm;
mod sim;
pub mod synthetic;
mod vm;

pub use border::BorderMode;
pub use compile::{
    set_compile_verifier, CompileVerifier, CompiledCone, CompiledKernel, CompiledPattern,
    ConeSlot, Halo, Instr, ProgramCache, ProgramView, QInstr, QuantizedCone, QuantizedKernel,
    QuantizedPattern, QuantizedStep, Reach, Reg,
};
pub use error::SimError;
pub use fixed::Quantizer;
pub use frame::{Frame, FrameSet};
pub use sim::{level_depths, ConvergenceReport, Simulator};
