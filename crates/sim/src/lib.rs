//! # isl-sim — functional simulation of iterative stencil loops
//!
//! The architecture template of the DAC 2013 paper rests on a claim
//! (Section 3.1): *the desired processing can be performed by repeatedly
//! applying a cone to portions of the input matrix*. This crate provides the
//! machinery to state and check that claim executably:
//!
//! * [`Frame`] / [`FrameSet`] — 1D and 2D grids of `f64` samples with
//!   explicit [`BorderMode`] resolution;
//! * [`Simulator::run`] — the *golden* semantics: one whole frame per
//!   iteration, exactly Algorithm 1 of the paper;
//! * [`Simulator::run_tiled`] — the *cone architecture* semantics: the frame
//!   is processed window by window through levels of depth-`d` cones, with
//!   border handling applied at every level at absolute frame coordinates.
//!   For clamp/mirror/constant borders this is **bit-identical** to the
//!   golden run (tests enforce it);
//! * [`Simulator::run_cone_dag`] — evaluates the actual hash-consed cone
//!   DAGs (the thing the VHDL implements) per window; identical to golden on
//!   the frame interior, and the hardware-faithful data path;
//! * [`Simulator::run_until_converged`] — fixed-point iteration for the
//!   "potentially unbounded" ISL variant mentioned in Section 2;
//! * [`synthetic`] — deterministic frame generators standing in for the
//!   paper's camera images.
//!
//! ```
//! use isl_sim::{Frame, FrameSet, Simulator, BorderMode};
//! use isl_ir::{StencilPattern, FieldKind, Expr, BinaryOp, Offset};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = StencilPattern::new(2);
//! let f = p.add_field("f", FieldKind::Dynamic);
//! let avg = Expr::binary(
//!     BinaryOp::Mul,
//!     Expr::sum([
//!         Expr::input(f, Offset::d2(0, -1)),
//!         Expr::input(f, Offset::d2(-1, 0)),
//!         Expr::input(f, Offset::d2(1, 0)),
//!         Expr::input(f, Offset::d2(0, 1)),
//!     ]),
//!     Expr::constant(0.25),
//! );
//! p.set_update(f, avg)?;
//!
//! let sim = Simulator::new(&p)?.with_border(BorderMode::Clamp);
//! let init = FrameSet::from_frames(vec![Frame::from_fn(16, 16, |x, y| (x + y) as f64)])?;
//! let golden = sim.run(&init, 4)?;
//! let tiled = sim.run_tiled(&init, 4, isl_ir::Window::square(4), 2)?;
//! assert!(golden.max_abs_diff(&tiled) < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod border;
mod error;
mod fixed;
mod frame;
mod sim;
pub mod synthetic;

pub use border::BorderMode;
pub use error::SimError;
pub use fixed::Quantizer;
pub use frame::{Frame, FrameSet};
pub use sim::{ConvergenceReport, Simulator};
