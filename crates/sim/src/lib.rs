//! # isl-sim — functional simulation of iterative stencil loops
//!
//! The architecture template of the DAC 2013 paper rests on a claim
//! (Section 3.1): *the desired processing can be performed by repeatedly
//! applying a cone to portions of the input matrix*. This crate provides the
//! machinery to state and check that claim executably:
//!
//! * [`Frame`] / [`FrameSet`] — 1D and 2D grids of `f64` samples with
//!   explicit [`BorderMode`] resolution;
//! * [`Simulator::run`] — the *golden* semantics: one whole frame per
//!   iteration, exactly Algorithm 1 of the paper;
//! * [`Simulator::run_tiled`] — the *cone architecture* semantics: the frame
//!   is processed window by window through levels of depth-`d` cones, with
//!   border handling applied at every level at absolute frame coordinates.
//!   For clamp/mirror/constant borders this is **bit-identical** to the
//!   golden run (tests enforce it);
//! * [`Simulator::run_cone_dag`] — evaluates the actual hash-consed cone
//!   DAGs (the thing the VHDL implements) per window; identical to golden on
//!   the frame interior, and the hardware-faithful data path;
//! * [`Simulator::run_until_converged`] — fixed-point iteration for the
//!   "potentially unbounded" ISL variant mentioned in Section 2;
//! * [`synthetic`] — deterministic frame generators standing in for the
//!   paper's camera images.
//!
//! ## The compiled execution engine
//!
//! [`Simulator::step`], [`Simulator::run`], [`Simulator::run_until_converged`]
//! and [`Simulator::run_quantized`] execute on a **compiled bytecode engine**
//! rather than walking the [`isl_ir::Expr`] tree per pixel:
//!
//! * [`compile`] lowers each dynamic field's update expression once into a
//!   flat, register-indexed instruction buffer ([`CompiledPattern`]) — no
//!   `Box` chasing, parameters bound up front, constants folded and common
//!   subexpressions shared. The program is built lazily on first step and
//!   cached on the simulator.
//! * The VM evaluates each frame in **three planes**: an *interior plane*
//!   where every stencil tap is statically in-bounds (reads become raw
//!   row-slice copies and the program runs instruction-at-a-time over whole
//!   row spans, which vectorises), plus *border strips* that fall back to
//!   per-pixel evaluation with full [`BorderMode`] resolution.
//! * Interior rows are distributed over threads in contiguous bands
//!   ([`parallel`]); tune with [`Simulator::with_threads`] (default: one per
//!   core, automatically serial for tiny frames).
//!
//! The tree-walking interpreter survives as [`Simulator::step_reference`] /
//! [`Simulator::run_reference`] / [`Simulator::run_quantized_reference`]:
//! the golden semantics the engine is property-tested against — results are
//! **bit-identical** for every pattern, border mode and thread count (see
//! `tests/tests/compiled_engine_props.rs`).
//!
//! Measure the difference with `cargo bench -p isl-bench --bench sim_engine`,
//! which compares interpreted vs compiled whole-frame runs (gaussian IGF and
//! Chambolle at 256×256) and writes `BENCH_sim.json`; on one core the
//! compiled engine is ~15× (IGF) to ~28× (Chambolle) faster.
//!
//! ```
//! use isl_sim::{Frame, FrameSet, Simulator, BorderMode};
//! use isl_ir::{StencilPattern, FieldKind, Expr, BinaryOp, Offset};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = StencilPattern::new(2);
//! let f = p.add_field("f", FieldKind::Dynamic);
//! let avg = Expr::binary(
//!     BinaryOp::Mul,
//!     Expr::sum([
//!         Expr::input(f, Offset::d2(0, -1)),
//!         Expr::input(f, Offset::d2(-1, 0)),
//!         Expr::input(f, Offset::d2(1, 0)),
//!         Expr::input(f, Offset::d2(0, 1)),
//!     ]),
//!     Expr::constant(0.25),
//! );
//! p.set_update(f, avg)?;
//!
//! let sim = Simulator::new(&p)?.with_border(BorderMode::Clamp);
//! let init = FrameSet::from_frames(vec![Frame::from_fn(16, 16, |x, y| (x + y) as f64)])?;
//! let golden = sim.run(&init, 4)?;
//! let tiled = sim.run_tiled(&init, 4, isl_ir::Window::square(4), 2)?;
//! assert!(golden.max_abs_diff(&tiled) < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod border;
pub mod compile;
mod error;
mod fixed;
mod frame;
pub mod parallel;
mod sim;
pub mod synthetic;
mod vm;

pub use border::BorderMode;
pub use compile::{CompiledKernel, CompiledPattern, Halo};
pub use error::SimError;
pub use fixed::Quantizer;
pub use frame::{Frame, FrameSet};
pub use sim::{ConvergenceReport, Simulator};
