//! Border (boundary-condition) handling.

use std::fmt;

/// How out-of-frame reads are resolved.
///
/// The cone architecture relies on locality: a read outside the frame must
/// resolve to a coordinate *near the edge it crossed* so that tiles can be
/// processed independently. Clamp and mirror have that property; [`BorderMode::Wrap`]
/// does not (it teleports reads to the opposite edge), so the tiled executor
/// rejects it.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub enum BorderMode {
    /// Repeat the edge sample (`f(-1) = f(0)`), the common choice for image
    /// filters.
    #[default]
    Clamp,
    /// Mirror across the edge without repeating it (`f(-1) = f(1)`).
    Mirror,
    /// Periodic boundary (`f(-1) = f(n-1)`). Golden simulation only.
    Wrap,
    /// A fixed value outside the frame.
    Constant(f64),
}


impl BorderMode {
    /// Map coordinate `i` onto `0..n`, or `None` when the mode substitutes a
    /// constant. `n` must be positive.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn resolve(&self, i: i64, n: i64) -> Option<i64> {
        assert!(n > 0, "cannot resolve a border on an empty axis");
        if (0..n).contains(&i) {
            return Some(i);
        }
        match self {
            BorderMode::Clamp => Some(i.clamp(0, n - 1)),
            BorderMode::Mirror => {
                // Reflect without repeating the edge sample; period 2(n-1).
                if n == 1 {
                    return Some(0);
                }
                let period = 2 * (n - 1);
                let mut m = i.rem_euclid(period);
                if m >= n {
                    m = period - m;
                }
                Some(m)
            }
            BorderMode::Wrap => Some(i.rem_euclid(n)),
            BorderMode::Constant(_) => None,
        }
    }

    /// The substitute value for [`BorderMode::Constant`], else `None`.
    pub fn constant_value(&self) -> Option<f64> {
        match self {
            BorderMode::Constant(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether tiles can resolve this border locally (see type docs).
    pub fn is_local(&self) -> bool {
        !matches!(self, BorderMode::Wrap)
    }

    /// Parse the `#pragma isl border` spelling (`clamp`, `mirror`, `wrap`,
    /// `zero`).
    pub fn parse(s: &str) -> Option<BorderMode> {
        match s {
            "clamp" => Some(BorderMode::Clamp),
            "mirror" => Some(BorderMode::Mirror),
            "wrap" => Some(BorderMode::Wrap),
            "zero" => Some(BorderMode::Constant(0.0)),
            _ => None,
        }
    }
}

impl fmt::Display for BorderMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BorderMode::Clamp => write!(f, "clamp"),
            BorderMode::Mirror => write!(f, "mirror"),
            BorderMode::Wrap => write!(f, "wrap"),
            BorderMode::Constant(v) => write!(f, "constant({v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_resolution() {
        let b = BorderMode::Clamp;
        assert_eq!(b.resolve(-3, 10), Some(0));
        assert_eq!(b.resolve(12, 10), Some(9));
        assert_eq!(b.resolve(5, 10), Some(5));
    }

    #[test]
    fn mirror_resolution() {
        let b = BorderMode::Mirror;
        assert_eq!(b.resolve(-1, 10), Some(1));
        assert_eq!(b.resolve(-2, 10), Some(2));
        assert_eq!(b.resolve(10, 10), Some(8));
        assert_eq!(b.resolve(11, 10), Some(7));
        assert_eq!(b.resolve(0, 1), Some(0));
        assert_eq!(b.resolve(-5, 1), Some(0));
    }

    #[test]
    fn wrap_resolution() {
        let b = BorderMode::Wrap;
        assert_eq!(b.resolve(-1, 10), Some(9));
        assert_eq!(b.resolve(10, 10), Some(0));
        assert!(!b.is_local());
    }

    #[test]
    fn constant_resolution() {
        let b = BorderMode::Constant(7.0);
        assert_eq!(b.resolve(-1, 10), None);
        assert_eq!(b.resolve(3, 10), Some(3));
        assert_eq!(b.constant_value(), Some(7.0));
    }

    #[test]
    fn mirror_stays_near_edge() {
        // The locality property the tiled executor depends on: for an
        // excursion of e beyond the edge, the resolved point is within e of
        // the edge.
        let b = BorderMode::Mirror;
        for n in [4i64, 9, 16] {
            for e in 1..=3i64 {
                let lo = b.resolve(-e, n).expect("mirror always resolves");
                assert!(lo <= e);
                let hi = b.resolve(n - 1 + e, n).expect("mirror always resolves");
                assert!(hi >= n - 1 - e);
            }
        }
    }

    #[test]
    fn parse_spellings() {
        assert_eq!(BorderMode::parse("clamp"), Some(BorderMode::Clamp));
        assert_eq!(BorderMode::parse("zero"), Some(BorderMode::Constant(0.0)));
        assert_eq!(BorderMode::parse("nope"), None);
    }
}
