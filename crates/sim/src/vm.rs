//! The compiled stencil execution engine.
//!
//! Executes [`CompiledPattern`] programs (see [`crate::compile`]) over whole
//! frames in **three planes** per dynamic field:
//!
//! * an **interior plane** — the sub-rectangle where every read of the
//!   kernel's halo stays in-bounds. Reads become raw row-slice copies and the
//!   program is evaluated *instruction-at-a-time over whole row spans*
//!   (structure-of-arrays), so dispatch cost is paid once per instruction per
//!   span instead of once per pixel, and the arithmetic loops vectorise;
//! * two **border strips** (left/right columns of interior rows) and the
//!   **border rows** (top/bottom), which fall back to per-pixel evaluation
//!   with full [`BorderMode`] resolution — identical semantics to
//!   [`isl_ir::Expr::eval`], paid only on the frame perimeter.
//!
//! Interior rows are distributed over threads in contiguous bands
//! ([`crate::parallel`]); every band writes a disjoint region, so results are
//! bit-identical for any thread count.

use std::sync::Arc;

use isl_ir::BinaryOp;

use crate::border::BorderMode;
use crate::compile::{CompiledKernel, CompiledPattern, Instr};
use crate::fixed::Quantizer;
use crate::frame::{Frame, FrameSet};
use crate::parallel::for_each_row_band;

/// Row-span width of the structure-of-arrays scratch (bounds scratch memory
/// at `instructions × SPAN × 8` bytes per worker).
const SPAN: usize = 512;

/// Below this many pixel-instructions a step runs serially even in auto
/// thread mode — spawn cost would dominate.
const PARALLEL_WORK_THRESHOLD: usize = 100_000;

/// One compiled whole-frame step (`post == None`) — the engine behind
/// [`crate::Simulator::step`].
pub(crate) fn step_compiled(
    cp: &CompiledPattern,
    state: &FrameSet,
    border: BorderMode,
    threads: usize,
) -> FrameSet {
    step_impl(cp, state, border, threads, None)
}

/// One compiled whole-frame step with fixed-point rounding after every
/// non-select instruction — the engine behind
/// [`crate::Simulator::run_quantized`]. Compile the pattern with
/// `fold == false` so every intermediate of the reference tree still exists.
pub(crate) fn step_quantized(
    cp: &CompiledPattern,
    state: &FrameSet,
    border: BorderMode,
    q: Quantizer,
    threads: usize,
) -> FrameSet {
    step_impl(cp, state, border, threads, Some(q))
}

fn step_impl(
    cp: &CompiledPattern,
    state: &FrameSet,
    border: BorderMode,
    threads: usize,
    post: Option<Quantizer>,
) -> FrameSet {
    let (w, h) = (state.width(), state.height());
    let frames: Vec<&Frame> = state.frames().iter().map(Arc::as_ref).collect();
    let mut next = Vec::with_capacity(cp.field_count());
    for i in 0..cp.field_count() {
        match cp.kernel(i) {
            None => next.push(state.frame_arc(i)),
            Some(k) => {
                let data = eval_field(k, &frames, w, h, border, threads, post);
                next.push(Arc::new(Frame::from_vec(w, h, data)));
            }
        }
    }
    FrameSet::from_shared(next).expect("shapes preserved")
}

/// Evaluate one kernel over the full frame, returning the output samples.
fn eval_field(
    kernel: &CompiledKernel,
    frames: &[&Frame],
    w: usize,
    h: usize,
    border: BorderMode,
    threads: usize,
    post: Option<Quantizer>,
) -> Vec<f64> {
    let halo = kernel.halo();
    // Interior rectangle: every tap in-bounds.
    let xlo = (halo.left as usize).min(w);
    let xhi = w.saturating_sub(halo.right as usize);
    let ylo = (halo.up as usize).min(h);
    let yhi = h.saturating_sub(halo.down as usize);
    let has_interior = xlo < xhi && ylo < yhi;

    let threads = if threads == 0 && w * h * kernel.len() < PARALLEL_WORK_THRESHOLD {
        1
    } else {
        threads
    };

    let mut out = vec![0.0; w * h];
    for_each_row_band(&mut out, w, threads, |y0, band| {
        let span = if has_interior { (xhi - xlo).min(SPAN) } else { 0 };
        let mut scratch = vec![0.0; kernel.len() * span];
        let mut regs = vec![0.0; kernel.len()];
        for (local, row) in band.chunks_mut(w).enumerate() {
            let y = y0 + local;
            if has_interior && (ylo..yhi).contains(&y) {
                for (x, slot) in row.iter_mut().enumerate().take(xlo) {
                    *slot = eval_pixel(kernel, frames, border, x, y, &mut regs, post);
                }
                let mut x0 = xlo;
                while x0 < xhi {
                    let len = span.min(xhi - x0);
                    eval_span(kernel, frames, w, y, x0, len, &mut scratch, post);
                    let res = kernel.result as usize;
                    row[x0..x0 + len].copy_from_slice(&scratch[res * len..(res + 1) * len]);
                    x0 += len;
                }
                for (x, slot) in row.iter_mut().enumerate().skip(xhi) {
                    *slot = eval_pixel(kernel, frames, border, x, y, &mut regs, post);
                }
            } else {
                for (x, slot) in row.iter_mut().enumerate() {
                    *slot = eval_pixel(kernel, frames, border, x, y, &mut regs, post);
                }
            }
        }
    });
    out
}

/// Evaluate the program over the in-bounds span `[x0, x0 + len)` of row `y`.
/// `scratch` holds one `len`-wide lane per instruction.
#[allow(clippy::too_many_arguments)]
fn eval_span(
    kernel: &CompiledKernel,
    frames: &[&Frame],
    w: usize,
    y: usize,
    x0: usize,
    len: usize,
    scratch: &mut [f64],
    post: Option<Quantizer>,
) {
    for (i, instr) in kernel.code.iter().enumerate() {
        let (prev, cur) = scratch.split_at_mut(i * len);
        let dst = &mut cur[..len];
        let lane = |r: u32| &prev[r as usize * len..(r as usize + 1) * len];
        let mut rounded = true;
        match *instr {
            Instr::Const(v) => dst.fill(v),
            Instr::Input { field, dx, dy } => {
                let src = frames[field as usize].as_slice();
                let base = (y as i64 + i64::from(dy)) * w as i64 + x0 as i64 + i64::from(dx);
                let base = usize::try_from(base).expect("interior read in bounds");
                dst.copy_from_slice(&src[base..base + len]);
            }
            Instr::Unary { op, a } => unary_span(op, lane(a), dst),
            Instr::Binary { op, a, b } => binary_span(op, lane(a), lane(b), dst),
            Instr::Select { c, t, e } => {
                // The interpreter applies no rounding hook to a select — it
                // forwards one already-rounded branch value unchanged.
                rounded = false;
                let (c, t, e) = (lane(c), lane(t), lane(e));
                for k in 0..len {
                    dst[k] = if c[k] != 0.0 { t[k] } else { e[k] };
                }
            }
        }
        if rounded {
            if let Some(q) = post {
                for v in dst.iter_mut() {
                    *v = q.apply(*v);
                }
            }
        }
    }
}

fn unary_span(op: isl_ir::UnaryOp, a: &[f64], dst: &mut [f64]) {
    use isl_ir::UnaryOp::*;
    fn zip1(a: &[f64], dst: &mut [f64], f: impl Fn(f64) -> f64) {
        for (d, &x) in dst.iter_mut().zip(a) {
            *d = f(x);
        }
    }
    match op {
        Neg => zip1(a, dst, |x| -x),
        Abs => zip1(a, dst, f64::abs),
        Sqrt => zip1(a, dst, f64::sqrt),
    }
}

fn binary_span(op: BinaryOp, a: &[f64], b: &[f64], dst: &mut [f64]) {
    use BinaryOp::*;
    fn zip2(a: &[f64], b: &[f64], dst: &mut [f64], f: impl Fn(f64, f64) -> f64) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d = f(x, y);
        }
    }
    match op {
        Add => zip2(a, b, dst, |x, y| x + y),
        Sub => zip2(a, b, dst, |x, y| x - y),
        Mul => zip2(a, b, dst, |x, y| x * y),
        Div => zip2(a, b, dst, |x, y| x / y),
        Min => zip2(a, b, dst, f64::min),
        Max => zip2(a, b, dst, f64::max),
        Lt => zip2(a, b, dst, |x, y| f64::from(x < y)),
        Le => zip2(a, b, dst, |x, y| f64::from(x <= y)),
        Gt => zip2(a, b, dst, |x, y| f64::from(x > y)),
        Ge => zip2(a, b, dst, |x, y| f64::from(x >= y)),
    }
}

/// Per-pixel program evaluation with full border resolution — used for the
/// border strips and for frames with no interior at all.
fn eval_pixel(
    kernel: &CompiledKernel,
    frames: &[&Frame],
    border: BorderMode,
    x: usize,
    y: usize,
    regs: &mut [f64],
    post: Option<Quantizer>,
) -> f64 {
    for (i, instr) in kernel.code.iter().enumerate() {
        let (v, rounded) = match *instr {
            Instr::Const(c) => (c, true),
            Instr::Input { field, dx, dy } => (
                frames[field as usize].sample(
                    x as i64 + i64::from(dx),
                    y as i64 + i64::from(dy),
                    border,
                ),
                true,
            ),
            Instr::Unary { op, a } => (op.apply(regs[a as usize]), true),
            Instr::Binary { op, a, b } => (op.apply(regs[a as usize], regs[b as usize]), true),
            Instr::Select { c, t, e } => (
                if regs[c as usize] != 0.0 {
                    regs[t as usize]
                } else {
                    regs[e as usize]
                },
                false,
            ),
        };
        regs[i] = match (post, rounded) {
            (Some(q), true) => q.apply(v),
            _ => v,
        };
    }
    regs[kernel.result as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::synthetic;
    use isl_ir::{Expr, FieldKind, Offset, StencilPattern, UnaryOp};

    fn spiky() -> StencilPattern {
        // Exercises every plane: radius-2 taps, select, sqrt, min/max.
        let mut p = StencilPattern::new(2).with_name("spiky");
        let f = p.add_field("f", FieldKind::Dynamic);
        let g = p.add_field("g", FieldKind::Static);
        let t = p.add_param("t", 0.35);
        let grad = Expr::binary(
            BinaryOp::Sub,
            Expr::input(f, Offset::d2(2, 0)),
            Expr::input(f, Offset::d2(0, -2)),
        );
        let norm = Expr::unary(
            UnaryOp::Sqrt,
            Expr::binary(
                BinaryOp::Add,
                Expr::binary(BinaryOp::Mul, grad.clone(), grad),
                Expr::constant(1e-6),
            ),
        );
        let blend = Expr::select(
            Expr::binary(
                BinaryOp::Lt,
                Expr::input(f, Offset::ZERO),
                Expr::param(t),
            ),
            Expr::binary(
                BinaryOp::Max,
                Expr::input(g, Offset::d2(-1, 1)),
                Expr::input(f, Offset::d2(1, 1)),
            ),
            norm,
        );
        let update = Expr::binary(
            BinaryOp::Min,
            Expr::binary(BinaryOp::Mul, blend, Expr::constant(0.5)),
            Expr::constant(4.0),
        );
        p.set_update(f, update).unwrap();
        p
    }

    fn states(w: usize, h: usize) -> FrameSet {
        FrameSet::from_frames(vec![
            synthetic::noise(w, h, 11),
            synthetic::gaussian_spots(w, h, 5, 3),
        ])
        .unwrap()
    }

    #[test]
    fn compiled_step_matches_reference_bitwise() {
        let p = spiky();
        for border in [
            BorderMode::Clamp,
            BorderMode::Mirror,
            BorderMode::Wrap,
            BorderMode::Constant(0.25),
        ] {
            for (w, h) in [(17, 13), (3, 3), (1, 9), (9, 1), (40, 7)] {
                let sim = Simulator::new(&p).unwrap().with_border(border);
                let init = states(w, h);
                let a = sim.step(&init).unwrap();
                let b = sim.step_reference(&init).unwrap();
                for fi in 0..init.len() {
                    let (fa, fb) = (a.frame(fi).as_slice(), b.frame(fi).as_slice());
                    for (i, (x, y)) in fa.iter().zip(fb).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "border {border}, {w}x{h}, field {fi}, slot {i}: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let p = spiky();
        let init = states(33, 29);
        let serial = Simulator::new(&p).unwrap().with_threads(1).run(&init, 3).unwrap();
        for t in [2, 4, 7, 0] {
            let par = Simulator::new(&p).unwrap().with_threads(t).run(&init, 3).unwrap();
            assert_eq!(serial, par, "{t} threads");
        }
    }

    #[test]
    fn static_frames_are_shared_not_copied() {
        let p = spiky();
        let sim = Simulator::new(&p).unwrap();
        let init = states(12, 12);
        let out = sim.step(&init).unwrap();
        assert!(Arc::ptr_eq(&init.frames()[1], &out.frames()[1]));
    }
}
