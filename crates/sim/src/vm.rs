//! The compiled stencil execution engine.
//!
//! Executes [`CompiledPattern`] programs (see [`crate::compile`]) over whole
//! frames in **three planes** per dynamic field:
//!
//! * an **interior plane** — the sub-rectangle where every read of the
//!   kernel's halo stays in-bounds. Reads become raw row-slice copies and the
//!   program is evaluated *instruction-at-a-time over whole row spans*
//!   (structure-of-arrays), so dispatch cost is paid once per instruction per
//!   span instead of once per pixel, and the arithmetic loops vectorise;
//! * two **border strips** (left/right columns of interior rows) and the
//!   **border rows** (top/bottom), which fall back to per-pixel evaluation
//!   with full [`BorderMode`] resolution — identical semantics to
//!   [`isl_ir::Expr::eval`], paid only on the frame perimeter.
//!
//! The same three-plane machinery is reused for the cone-architecture paths:
//! reads go through [`SrcView`]s, which present whole frames *and* tile halo
//! buffers uniformly (a frame is just a buffer anchored at the origin), so
//! [`eval_rect`] can run a kernel over any rectangle of any level of a tiled
//! cone — that is the engine behind [`crate::Simulator::run_tiled`]. Cone
//! DAGs lowered by [`crate::compile::CompiledCone`] execute per window tile,
//! with interior tiles batched into structure-of-arrays *lanes* (one lane
//! per tile, gathers strided by the window width) and edge tiles evaluated
//! scalar with border resolution — the engine behind
//! [`crate::Simulator::run_cone_dag`].
//!
//! Output allocations are **recycled**: steps accept the retiring frame set
//! of two iterations ago and reuse any uniquely-owned dynamic frame as the
//! next output buffer (ping-pong double buffering), so long runs stop paying
//! the allocator per step.
//!
//! Interior rows are distributed over persistent pool workers in contiguous
//! bands, and the tiled/cone paths over contiguous bands of whole *tile*
//! rows ([`crate::parallel`]); every band writes a disjoint region, so
//! results are bit-identical for any thread count.

use std::sync::Arc;

use isl_ir::BinaryOp;

use crate::border::BorderMode;
use crate::compile::{CompiledCone, CompiledKernel, CompiledPattern, Instr};
use crate::frame::{Frame, FrameSet};
use crate::parallel::{effective_threads, for_each_row_band, for_each_task};

/// Row-span width of the structure-of-arrays scratch (bounds scratch memory
/// at `instructions × SPAN × 8` bytes per worker).
pub(crate) const SPAN: usize = 512;

/// Cap on the structure-of-arrays scratch of the cone-lane evaluator, in
/// scratch values (`live slots × lanes` must fit; at most 512 KiB per
/// worker, sized to stay L2-resident).
pub(crate) const LANE_SCRATCH: usize = 1 << 16;

/// Below this many pixel-instructions a step runs serially even in auto
/// thread mode — even pool dispatch cost would dominate.
pub(crate) const PARALLEL_WORK_THRESHOLD: usize = 100_000;

// -- source views -----------------------------------------------------------

/// A read-only view of one field's samples: a row-major buffer whose first
/// sample sits at frame coordinate `(ox, oy)`. Whole frames and tile halo
/// buffers are the same thing under this view, which is what lets one
/// evaluator serve the whole-frame and the cone-architecture paths.
#[derive(Clone, Copy)]
pub(crate) struct SrcView<'a> {
    data: &'a [f64],
    ox: i64,
    oy: i64,
    stride: usize,
}

impl<'a> SrcView<'a> {
    /// View a whole frame (anchored at the origin).
    pub(crate) fn frame(f: &'a Frame) -> Self {
        SrcView {
            data: f.as_slice(),
            ox: 0,
            oy: 0,
            stride: f.width(),
        }
    }

    /// View a halo buffer anchored at `(ox, oy)` with row length `stride`.
    pub(crate) fn buffer(data: &'a [f64], ox: i64, oy: i64, stride: usize) -> Self {
        SrcView { data, ox, oy, stride }
    }

    /// Read at frame coordinates known to lie inside the view.
    #[inline]
    fn get(&self, x: i64, y: i64) -> f64 {
        let idx = (y - self.oy) as usize * self.stride + (x - self.ox) as usize;
        self.data[idx]
    }

    /// Border-resolved read at frame coordinates `(x, y)` of a `w × h`
    /// frame. The resolved coordinate must lie inside the view — guaranteed
    /// for whole-frame views, and for halo buffers by border locality (the
    /// tiled executor rejects wrap borders).
    fn sample(&self, x: i64, y: i64, w: i64, h: i64, border: BorderMode) -> f64 {
        match (border.resolve(x, w), border.resolve(y, h)) {
            (Some(rx), Some(ry)) => self.get(rx, ry),
            _ => border
                .constant_value()
                .expect("resolve returns None only for Constant"),
        }
    }
}

/// Reusable per-worker scratch of the rect evaluator.
#[derive(Default)]
pub(crate) struct Scratch {
    lanes: Vec<f64>,
    regs: Vec<f64>,
}

impl Scratch {
    fn ensure(&mut self, instrs: usize) {
        self.lanes.resize(instrs.max(1) * SPAN, 0.0);
        self.regs.resize(instrs.max(1), 0.0);
    }
}

/// The destination of a rect evaluation: a row-major buffer whose first
/// sample sits at frame coordinate `(ox, oy)`.
pub(crate) struct RectOut<'a> {
    pub(crate) data: &'a mut [f64],
    pub(crate) ox: i64,
    pub(crate) oy: i64,
    pub(crate) stride: usize,
}

// -- whole-frame stepping ---------------------------------------------------

/// One compiled whole-frame step — the engine behind
/// [`crate::Simulator::step`].
pub(crate) fn step_compiled(
    cp: &CompiledPattern,
    state: &FrameSet,
    border: BorderMode,
    threads: usize,
) -> FrameSet {
    step_impl(cp, state, border, threads, None)
}

/// [`step_compiled`] with a retiring frame set whose uniquely-owned dynamic
/// frames are recycled as output buffers (double buffering) — the engine
/// behind [`crate::Simulator::run`].
pub(crate) fn step_compiled_into(
    cp: &CompiledPattern,
    state: &FrameSet,
    border: BorderMode,
    threads: usize,
    recycle: Option<FrameSet>,
) -> FrameSet {
    step_impl(cp, state, border, threads, recycle)
}

/// Reclaim the sample storage of every frame of `recycle` that is not shared
/// with anyone else (index-aligned; `None` where the frame is still shared).
fn reclaim(recycle: Option<FrameSet>, w: usize, h: usize) -> Vec<Option<Vec<f64>>> {
    match recycle {
        None => Vec::new(),
        Some(fs) => fs
            .into_frames()
            .into_iter()
            .map(|arc| {
                Arc::try_unwrap(arc)
                    .ok()
                    .map(Frame::into_vec)
                    .filter(|v| v.len() == w * h)
            })
            .collect(),
    }
}

fn step_impl(
    cp: &CompiledPattern,
    state: &FrameSet,
    border: BorderMode,
    threads: usize,
    recycle: Option<FrameSet>,
) -> FrameSet {
    let _span = isl_telemetry::span("engine", "frame step f64");
    let (w, h) = (state.width(), state.height());
    let frames: Vec<&Frame> = state.frames().iter().map(Arc::as_ref).collect();
    let mut recycled = reclaim(recycle, w, h);
    let mut next = Vec::with_capacity(cp.field_count());
    for i in 0..cp.field_count() {
        match cp.kernel(i) {
            None => next.push(state.frame_arc(i)),
            Some(k) => {
                let reuse = recycled.get_mut(i).and_then(Option::take);
                let data = eval_field(k, &frames, w, h, border, threads, reuse);
                next.push(Arc::new(Frame::from_vec(w, h, data)));
            }
        }
    }
    FrameSet::from_shared(next).expect("shapes preserved")
}

/// Evaluate one kernel over the full frame, returning the output samples
/// (into `reuse`'s storage when provided).
fn eval_field(
    kernel: &CompiledKernel,
    frames: &[&Frame],
    w: usize,
    h: usize,
    border: BorderMode,
    threads: usize,
    reuse: Option<Vec<f64>>,
) -> Vec<f64> {
    let threads = if threads == 0 && w * h * kernel.len() < PARALLEL_WORK_THRESHOLD {
        1
    } else {
        threads
    };
    let mut out = reuse.unwrap_or_else(|| vec![0.0; w * h]);
    debug_assert_eq!(out.len(), w * h);
    let srcs: Vec<SrcView<'_>> = frames.iter().map(|f| SrcView::frame(f)).collect();
    for_each_row_band(&mut out, w, threads, |y0, band| {
        let rows = band.len() / w;
        let mut scratch = Scratch::default();
        let mut dst = RectOut {
            data: band,
            ox: 0,
            oy: y0 as i64,
            stride: w,
        };
        eval_rect(
            kernel,
            &srcs,
            (w, h),
            border,
            (0, y0 as i64, w as i64 - 1, (y0 + rows) as i64 - 1),
            &mut dst,
            &mut scratch,
        );
    });
    out
}

// -- rect evaluation --------------------------------------------------------

/// Evaluate `kernel` at every element of `rect` (frame coordinates,
/// inclusive), reading fields through `srcs` with `border` resolved at
/// absolute frame coordinates, writing into `dst`. The interior portion of
/// the rect (where every tap is statically in-frame) runs as vectorised
/// row spans; the rest falls back to per-pixel evaluation.
pub(crate) fn eval_rect(
    kernel: &CompiledKernel,
    srcs: &[SrcView<'_>],
    (w, h): (usize, usize),
    border: BorderMode,
    (rx0, ry0, rx1, ry1): (i64, i64, i64, i64),
    dst: &mut RectOut<'_>,
    scratch: &mut Scratch,
) {
    if isl_telemetry::enabled() {
        crate::metrics::tally_instrs(&kernel.code, ((rx1 - rx0 + 1) * (ry1 - ry0 + 1)) as u64);
    }
    let halo = kernel.halo();
    // Frame-interior coordinate range clipped to the rect (inclusive).
    let xlo = rx0.max(i64::from(halo.left));
    let xhi = rx1.min(w as i64 - 1 - i64::from(halo.right));
    let ylo = ry0.max(i64::from(halo.up));
    let yhi = ry1.min(h as i64 - 1 - i64::from(halo.down));
    scratch.ensure(kernel.len());
    for y in ry0..=ry1 {
        let row = ((y - dst.oy) as usize) * dst.stride;
        let at = |x: i64| row + (x - dst.ox) as usize;
        if (ylo..=yhi).contains(&y) && xlo <= xhi {
            for x in rx0..xlo {
                dst.data[at(x)] =
                    eval_pixel(kernel, srcs, border, (w, h), x, y, &mut scratch.regs);
            }
            let mut x0 = xlo;
            while x0 <= xhi {
                let len = (xhi - x0 + 1).min(SPAN as i64) as usize;
                eval_span(kernel, srcs, y, x0, len, &mut scratch.lanes);
                let res = kernel.result as usize;
                dst.data[at(x0)..at(x0) + len]
                    .copy_from_slice(&scratch.lanes[res * len..(res + 1) * len]);
                x0 += len as i64;
            }
            for x in (xhi + 1)..=rx1 {
                dst.data[at(x)] =
                    eval_pixel(kernel, srcs, border, (w, h), x, y, &mut scratch.regs);
            }
        } else {
            for x in rx0..=rx1 {
                dst.data[at(x)] =
                    eval_pixel(kernel, srcs, border, (w, h), x, y, &mut scratch.regs);
            }
        }
    }
}

/// Evaluate the program over the statically in-bounds span `[x0, x0 + len)`
/// of row `y`. `scratch` holds one `len`-wide lane per instruction.
fn eval_span(
    kernel: &CompiledKernel,
    srcs: &[SrcView<'_>],
    y: i64,
    x0: i64,
    len: usize,
    scratch: &mut [f64],
) {
    for (i, instr) in kernel.code.iter().enumerate() {
        let (prev, cur) = scratch.split_at_mut(i * len);
        let dst = &mut cur[..len];
        let lane = |r: u32| &prev[r as usize * len..(r as usize + 1) * len];
        match *instr {
            Instr::Const(v) => dst.fill(v),
            Instr::Input { field, dx, dy } => {
                let s = &srcs[field as usize];
                let base = (y + i64::from(dy) - s.oy) * s.stride as i64
                    + (x0 + i64::from(dx) - s.ox);
                let base = usize::try_from(base).expect("interior read in bounds");
                dst.copy_from_slice(&s.data[base..base + len]);
            }
            Instr::Unary { op, a } => unary_span(op, lane(a), dst),
            Instr::Binary { op, a, b } => binary_span(op, lane(a), lane(b), dst),
            Instr::Select { c, t, e } => {
                let (c, t, e) = (lane(c), lane(t), lane(e));
                for k in 0..len {
                    dst[k] = if c[k] != 0.0 { t[k] } else { e[k] };
                }
            }
        }
    }
}

fn unary_span(op: isl_ir::UnaryOp, a: &[f64], dst: &mut [f64]) {
    use isl_ir::UnaryOp::*;
    fn zip1(a: &[f64], dst: &mut [f64], f: impl Fn(f64) -> f64) {
        for (d, &x) in dst.iter_mut().zip(a) {
            *d = f(x);
        }
    }
    match op {
        Neg => zip1(a, dst, |x| -x),
        Abs => zip1(a, dst, f64::abs),
        Sqrt => zip1(a, dst, f64::sqrt),
    }
}

fn binary_span(op: BinaryOp, a: &[f64], b: &[f64], dst: &mut [f64]) {
    use BinaryOp::*;
    fn zip2(a: &[f64], b: &[f64], dst: &mut [f64], f: impl Fn(f64, f64) -> f64) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d = f(x, y);
        }
    }
    match op {
        Add => zip2(a, b, dst, |x, y| x + y),
        Sub => zip2(a, b, dst, |x, y| x - y),
        Mul => zip2(a, b, dst, |x, y| x * y),
        Div => zip2(a, b, dst, |x, y| x / y),
        Min => zip2(a, b, dst, f64::min),
        Max => zip2(a, b, dst, f64::max),
        Lt => zip2(a, b, dst, |x, y| f64::from(x < y)),
        Le => zip2(a, b, dst, |x, y| f64::from(x <= y)),
        Gt => zip2(a, b, dst, |x, y| f64::from(x > y)),
        Ge => zip2(a, b, dst, |x, y| f64::from(x >= y)),
    }
}

/// Per-pixel program evaluation with full border resolution — used for the
/// border strips and for rects with no interior at all.
fn eval_pixel(
    kernel: &CompiledKernel,
    srcs: &[SrcView<'_>],
    border: BorderMode,
    (w, h): (usize, usize),
    x: i64,
    y: i64,
    regs: &mut [f64],
) -> f64 {
    for (i, instr) in kernel.code.iter().enumerate() {
        regs[i] = match *instr {
            Instr::Const(c) => c,
            Instr::Input { field, dx, dy } => srcs[field as usize].sample(
                x + i64::from(dx),
                y + i64::from(dy),
                w as i64,
                h as i64,
                border,
            ),
            Instr::Unary { op, a } => op.apply(regs[a as usize]),
            Instr::Binary { op, a, b } => op.apply(regs[a as usize], regs[b as usize]),
            Instr::Select { c, t, e } => {
                if regs[c as usize] != 0.0 {
                    regs[t as usize]
                } else {
                    regs[e as usize]
                }
            }
        };
    }
    regs[kernel.result as usize]
}

// -- tiled (cone-architecture) level execution ------------------------------

/// Dense dynamic-slot mapping: the dynamic field ids in first-appearance
/// order, plus the inverse `field id → slot` table — so per-read lookups
/// in the tile hot loops are one index, not a scan.
pub(crate) fn dyn_slot_map(
    field_count: usize,
    fields: impl Iterator<Item = usize>,
) -> (Vec<usize>, Vec<Option<usize>>) {
    let mut slot: Vec<Option<usize>> = vec![None; field_count];
    let mut dyn_fields = Vec::new();
    for f in fields {
        if slot[f].is_none() {
            slot[f] = Some(dyn_fields.len());
            dyn_fields.push(f);
        }
    }
    (dyn_fields, slot)
}

/// Split each buffer of `bufs` (all the same length, `width`-sample rows)
/// into aligned bands of at most `rows_per_band` rows. Returns
/// `(first_row, per-buffer band slices)` per band.
pub(crate) fn split_bands<T>(
    mut bufs: Vec<&mut [T]>,
    width: usize,
    rows_per_band: usize,
) -> Vec<(usize, Vec<&mut [T]>)> {
    let mut out = Vec::new();
    let mut row0 = 0;
    while bufs.first().is_some_and(|b| !b.is_empty()) {
        let take_rows = rows_per_band.min(bufs[0].len() / width);
        let mut band = Vec::with_capacity(bufs.len());
        let mut rest = Vec::with_capacity(bufs.len());
        for b in bufs {
            let (head, tail) = b.split_at_mut(take_rows * width);
            band.push(head);
            rest.push(tail);
        }
        out.push((row0, band));
        bufs = rest;
        row0 += take_rows;
    }
    out
}

/// Concurrency for a tile-banded pass: contiguous bands of whole tile rows.
pub(crate) fn tile_banding(h: usize, th: usize, threads: usize, work: usize) -> usize {
    let threads = if threads == 0 && work < PARALLEL_WORK_THRESHOLD {
        1
    } else {
        threads
    };
    let tile_rows = h.div_ceil(th);
    effective_threads(threads).min(tile_rows).max(1)
}

/// Shared frame of every tile-banded level executor: take (or recycle) one
/// output buffer per dynamic field, split all of them into aligned bands of
/// whole tile rows, run `band_fn(first_row, band_slices)` per band on up to
/// `t` workers, and reassemble the next frame set (static fields shared).
fn banded_level<F>(
    state: &FrameSet,
    dyn_fields: &[usize],
    th: usize,
    t: usize,
    recycle: Option<FrameSet>,
    band_fn: F,
) -> FrameSet
where
    F: Fn(usize, &mut [&mut [f64]]) + Sync,
{
    let (w, h) = (state.width(), state.height());
    let mut recycled = reclaim(recycle, w, h);
    let mut outs: Vec<Vec<f64>> = dyn_fields
        .iter()
        .map(|&i| {
            recycled
                .get_mut(i)
                .and_then(Option::take)
                .unwrap_or_else(|| vec![0.0; w * h])
        })
        .collect();
    let rows_per_band = h.div_ceil(th).div_ceil(t) * th;
    let bands = split_bands(outs.iter_mut().map(Vec::as_mut_slice).collect(), w, rows_per_band);
    for_each_task(bands, t, |(row0, mut slices)| band_fn(row0, &mut slices));
    let mut next: Vec<Arc<Frame>> = state.frames().to_vec();
    for (&fi, data) in dyn_fields.iter().zip(outs) {
        next[fi] = Arc::new(Frame::from_vec(w, h, data));
    }
    FrameSet::from_shared(next).expect("shapes preserved")
}

/// One compiled tiled level: apply depth-`d` cones of the pattern's kernels
/// over every `window` tile of the frame — the engine behind
/// [`crate::Simulator::run_tiled`]. Bit-identical to the tree-walking
/// reference level for every local border mode and thread count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn tiled_level_compiled(
    cp: &CompiledPattern,
    state: &FrameSet,
    border: BorderMode,
    threads: usize,
    (tw, th): (i64, i64),
    d: u32,
    r: i64,
    recycle: Option<FrameSet>,
) -> FrameSet {
    let _span = isl_telemetry::span("engine", "tiled level f64");
    let (w, h) = (state.width(), state.height());
    let (dyn_fields, dyn_slot) = dyn_slot_map(
        cp.field_count(),
        (0..cp.field_count()).filter(|&i| cp.kernel(i).is_some()),
    );
    let frames: Vec<&Frame> = state.frames().iter().map(Arc::as_ref).collect();
    let work = w * h * cp.total_instructions() * d as usize;
    let t = tile_banding(h, th as usize, threads, work);
    banded_level(state, &dyn_fields, th as usize, t, recycle, |row0, slices| {
        // Per-worker halo buffers (ping/pong) sized for the largest
        // intermediate level, plus span scratch — reused across tiles.
        let max_halo = r * i64::from(d.saturating_sub(1));
        let cap = ((tw + 2 * max_halo) * (th + 2 * max_halo)) as usize;
        let mut ping: Vec<Vec<f64>> = dyn_fields.iter().map(|_| vec![0.0; cap]).collect();
        let mut pong = ping.clone();
        let mut scratch = Scratch::default();
        let rows = slices[0].len() / w;
        let mut ty = row0 as i64;
        while ty < (row0 + rows) as i64 {
            let mut tx = 0;
            while tx < w as i64 {
                tile_compiled(
                    cp,
                    &dyn_fields,
                    &dyn_slot,
                    &frames,
                    (w, h),
                    border,
                    (tx, ty),
                    (tw, th),
                    (d, r),
                    (&mut ping, &mut pong),
                    &mut scratch,
                    (slices, row0),
                );
                tx += tw;
            }
            ty += th;
        }
    })
}

/// Compute one tile through `d` compiled levels. Levels `1..d` evaluate into
/// ping/pong halo buffers; the top level writes straight into the caller's
/// output band.
#[allow(clippy::too_many_arguments)]
fn tile_compiled(
    cp: &CompiledPattern,
    dyn_fields: &[usize],
    dyn_slot: &[Option<usize>],
    frames: &[&Frame],
    (w, h): (usize, usize),
    border: BorderMode,
    (tx, ty): (i64, i64),
    (tw, th): (i64, i64),
    (d, r): (u32, i64),
    (ping, pong): (&mut [Vec<f64>], &mut [Vec<f64>]),
    scratch: &mut Scratch,
    (slices, row0): (&mut [&mut [f64]], usize),
) {
    let (wi, hi) = (w as i64, h as i64);
    // Level extents, clipped to the frame: level `l` needs the tile grown
    // by radius × (d − l).
    let rect = |l: u32| -> (i64, i64, i64, i64) {
        let halo = r * i64::from(d - l);
        (
            (tx - halo).max(0),
            (ty - halo).max(0),
            (tx + tw - 1 + halo).min(wi - 1),
            (ty + th - 1 + halo).min(hi - 1),
        )
    };
    let mut prev_rect = rect(0);
    for l in 1..=d {
        let (nx0, ny0, nx1, ny1) = rect(l);
        let nbw = (nx1 - nx0 + 1) as usize;
        let (px0, py0, px1, _py1) = prev_rect;
        let pbw = (px1 - px0 + 1) as usize;
        for (di, &fi) in dyn_fields.iter().enumerate() {
            let kernel = cp.kernel(fi).expect("dynamic field has a kernel");
            // Level 1 reads iteration-`i` data straight from the frames
            // (the reference's level-0 buffers are verbatim copies of it);
            // deeper levels read the previous level's halo buffers.
            let srcs: Vec<SrcView<'_>> = frames
                .iter()
                .enumerate()
                .map(|(f, frame)| match dyn_slot[f] {
                    Some(ds) if l > 1 => SrcView::buffer(&ping[ds], px0, py0, pbw),
                    _ => SrcView::frame(frame),
                })
                .collect();
            if l == d {
                let mut dst = RectOut {
                    data: &mut *slices[di],
                    ox: 0,
                    oy: row0 as i64,
                    stride: w,
                };
                eval_rect(kernel, &srcs, (w, h), border, (nx0, ny0, nx1, ny1), &mut dst, scratch);
            } else {
                let mut dst = RectOut {
                    data: &mut pong[di],
                    ox: nx0,
                    oy: ny0,
                    stride: nbw,
                };
                eval_rect(kernel, &srcs, (w, h), border, (nx0, ny0, nx1, ny1), &mut dst, scratch);
            }
        }
        if l < d {
            for (a, b) in ping.iter_mut().zip(pong.iter_mut()) {
                std::mem::swap(a, b);
            }
            prev_rect = (nx0, ny0, nx1, ny1);
        }
    }
}

// -- cone-DAG level execution -----------------------------------------------

/// One compiled cone-DAG level: evaluate the lowered cone program window by
/// window — the engine behind [`crate::Simulator::run_cone_dag`]. Interior
/// tiles run as structure-of-arrays lanes (one lane per tile); tiles whose
/// reach crosses the frame edge run scalar with base-input border
/// resolution, exactly like [`isl_ir::Cone::eval`].
pub(crate) fn cone_level_compiled(
    cc: &CompiledCone,
    state: &FrameSet,
    border: BorderMode,
    threads: usize,
    (tw, th): (i64, i64),
    recycle: Option<FrameSet>,
) -> FrameSet {
    let _span = isl_telemetry::span("engine", "cone level f64");
    let (w, h) = (state.width(), state.height());
    let (dyn_fields, dyn_slot) =
        dyn_slot_map(state.len(), cc.outputs.iter().map(|s| s.field as usize));
    let frames: Vec<&Frame> = state.frames().iter().map(Arc::as_ref).collect();
    let tiles_x = w.div_ceil(tw as usize);
    let work = tiles_x * h.div_ceil(th as usize) * cc.len();
    let t = tile_banding(h, th as usize, threads, work);
    let reach = cc.reach();
    let lanes_cap = (LANE_SCRATCH / cc.slots().max(1)).clamp(1, 512);
    banded_level(state, &dyn_fields, th as usize, t, recycle, |row0, slices| {
        // Every tile of the band becomes one lane. Interior tiles (whole
        // reach in-frame) batch into chunks with direct strided gathers;
        // edge tiles batch into chunks whose gathers border-resolve — the
        // arithmetic instructions are amortised across the lanes of a chunk
        // either way.
        let rows = slices[0].len() / w;
        let mut interior: Vec<(i64, i64)> = Vec::new();
        let mut edge: Vec<(i64, i64)> = Vec::new();
        let mut ty = row0 as i64;
        while ty < (row0 + rows) as i64 {
            let y_in =
                ty + i64::from(reach.min_dy) >= 0 && ty + i64::from(reach.max_dy) < h as i64;
            for k in 0..tiles_x as i64 {
                let tx = k * tw;
                if y_in
                    && tx + i64::from(reach.min_dx) >= 0
                    && tx + i64::from(reach.max_dx) < w as i64
                {
                    interior.push((tx, ty));
                } else {
                    edge.push((tx, ty));
                }
            }
            ty += th;
        }
        let mut scratch = vec![0.0; cc.slots() * lanes_cap];
        for chunk in interior.chunks(lanes_cap) {
            eval_cone_lanes(
                cc,
                &frames,
                (w, h),
                border,
                chunk,
                true,
                &dyn_slot,
                &mut scratch,
                (slices, row0),
            );
        }
        for chunk in edge.chunks(lanes_cap) {
            eval_cone_lanes(
                cc,
                &frames,
                (w, h),
                border,
                chunk,
                false,
                &dyn_slot,
                &mut scratch,
                (slices, row0),
            );
        }
    })
}

/// Evaluate the cone program for every tile of `chunk` at once: one
/// structure-of-arrays lane per tile. `interior == true` promises that
/// every tap and every output of every tile is statically in-frame, so
/// gathers index directly and scatters skip bounds checks; otherwise
/// gathers border-resolve at the cone base (exactly like
/// [`isl_ir::Cone::eval`]) and scatters clip to the frame. The arithmetic
/// instructions are identical — and amortised across the chunk — either
/// way.
///
/// Outputs **stream to their destinations as they retire**: slot allocation
/// frees an output's slot right after its defining instruction (see
/// [`CompiledCone::retire`]), so each output lane is scattered the moment it
/// is produced, walking the capture-sorted retire list alongside the
/// instruction loop. That is what shrinks the live set — and the scratch —
/// below the output count, letting far more lanes fit in the L2-sized
/// scratch budget.
#[allow(clippy::too_many_arguments)]
fn eval_cone_lanes(
    cc: &CompiledCone,
    frames: &[&Frame],
    (w, h): (usize, usize),
    border: BorderMode,
    chunk: &[(i64, i64)],
    interior: bool,
    dyn_slot: &[Option<usize>],
    scratch: &mut [f64],
    (slices, row0): (&mut [&mut [f64]], usize),
) {
    let n = chunk.len();
    if isl_telemetry::enabled() {
        crate::metrics::tally_instrs(&cc.code, n as u64);
    }
    // Per-lane linear origins: read side in frame space, write side in
    // band space. One add per lane per gather/scatter afterwards.
    let read_origin: Vec<i64> = chunk.iter().map(|&(tx, ty)| ty * w as i64 + tx).collect();
    let write_origin: Vec<i64> = chunk
        .iter()
        .map(|&(tx, ty)| (ty - row0 as i64) * w as i64 + tx)
        .collect();
    // Values live in allocated slots (`cc.dst`); an instruction's
    // destination slot is never one of its operand slots, so the disjoint
    // borrows below cannot fail.
    let range = |s: u32| s as usize * n..s as usize * n + n;
    let mut next_retire = 0usize;
    for (i, instr) in cc.code.iter().enumerate() {
        let d = cc.dst[i];
        match *instr {
            Instr::Const(v) => scratch[range(d)].fill(v),
            Instr::Input { field, dx, dy } => {
                let dst = &mut scratch[range(d)];
                if interior {
                    let src = frames[field as usize].as_slice();
                    let off = i64::from(dy) * w as i64 + i64::from(dx);
                    for (d, &o) in dst.iter_mut().zip(&read_origin) {
                        *d = src[(o + off) as usize];
                    }
                } else {
                    let f = frames[field as usize];
                    for (d, &(tx, ty)) in dst.iter_mut().zip(chunk) {
                        *d = f.sample(tx + i64::from(dx), ty + i64::from(dy), border);
                    }
                }
            }
            Instr::Unary { op, a } => {
                let [dst, a] = scratch
                    .get_disjoint_mut([range(d), range(a)])
                    .expect("dst slot distinct from operands");
                unary_span(op, a, dst);
            }
            Instr::Binary { op, a, b } => {
                if a == b {
                    let [dst, a] = scratch
                        .get_disjoint_mut([range(d), range(a)])
                        .expect("dst slot distinct from operands");
                    let a = &*a;
                    binary_span(op, a, a, dst);
                } else {
                    let [dst, a, b] = scratch
                        .get_disjoint_mut([range(d), range(a), range(b)])
                        .expect("dst slot distinct from operands");
                    binary_span(op, a, b, dst);
                }
            }
            Instr::Select { c, t, e } => {
                // Rare op: plain indexed loop sidesteps operand aliasing.
                let (c0, t0, e0, d0) =
                    (c as usize * n, t as usize * n, e as usize * n, d as usize * n);
                for k in 0..n {
                    scratch[d0 + k] = if scratch[c0 + k] != 0.0 {
                        scratch[t0 + k]
                    } else {
                        scratch[e0 + k]
                    };
                }
            }
        }
        // Stream every output defined by this instruction to its destination
        // before its slot can be reused.
        while next_retire < cc.retire.len() && cc.capture[cc.retire[next_retire] as usize] as usize == i
        {
            let slot = &cc.outputs[cc.retire[next_retire] as usize];
            next_retire += 1;
            let di = dyn_slot[slot.field as usize].expect("output field is dynamic");
            let src = &scratch[range(slot.reg)];
            let off = i64::from(slot.py) * w as i64 + i64::from(slot.px);
            if interior {
                for (&v, &o) in src.iter().zip(&write_origin) {
                    slices[di][(o + off) as usize] = v;
                }
            } else {
                for (k, &(tx, ty)) in chunk.iter().enumerate() {
                    let (ax, ay) = (tx + i64::from(slot.px), ty + i64::from(slot.py));
                    if ax < w as i64 && ay < h as i64 {
                        slices[di][(ay as usize - row0) * w + ax as usize] = src[k];
                    }
                }
            }
        }
    }
    debug_assert_eq!(next_retire, cc.outputs.len(), "every output must retire");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::synthetic;
    use isl_ir::{Expr, FieldKind, Offset, StencilPattern, UnaryOp};

    fn spiky() -> StencilPattern {
        // Exercises every plane: radius-2 taps, select, sqrt, min/max.
        let mut p = StencilPattern::new(2).with_name("spiky");
        let f = p.add_field("f", FieldKind::Dynamic);
        let g = p.add_field("g", FieldKind::Static);
        let t = p.add_param("t", 0.35);
        let grad = Expr::binary(
            BinaryOp::Sub,
            Expr::input(f, Offset::d2(2, 0)),
            Expr::input(f, Offset::d2(0, -2)),
        );
        let norm = Expr::unary(
            UnaryOp::Sqrt,
            Expr::binary(
                BinaryOp::Add,
                Expr::binary(BinaryOp::Mul, grad.clone(), grad),
                Expr::constant(1e-6),
            ),
        );
        let blend = Expr::select(
            Expr::binary(
                BinaryOp::Lt,
                Expr::input(f, Offset::ZERO),
                Expr::param(t),
            ),
            Expr::binary(
                BinaryOp::Max,
                Expr::input(g, Offset::d2(-1, 1)),
                Expr::input(f, Offset::d2(1, 1)),
            ),
            norm,
        );
        let update = Expr::binary(
            BinaryOp::Min,
            Expr::binary(BinaryOp::Mul, blend, Expr::constant(0.5)),
            Expr::constant(4.0),
        );
        p.set_update(f, update).unwrap();
        p
    }

    fn states(w: usize, h: usize) -> FrameSet {
        FrameSet::from_frames(vec![
            synthetic::noise(w, h, 11),
            synthetic::gaussian_spots(w, h, 5, 3),
        ])
        .unwrap()
    }

    #[test]
    fn compiled_step_matches_reference_bitwise() {
        let p = spiky();
        for border in [
            BorderMode::Clamp,
            BorderMode::Mirror,
            BorderMode::Wrap,
            BorderMode::Constant(0.25),
        ] {
            for (w, h) in [(17, 13), (3, 3), (1, 9), (9, 1), (40, 7)] {
                let sim = Simulator::new(&p).unwrap().with_border(border);
                let init = states(w, h);
                let a = sim.step(&init).unwrap();
                let b = sim.step_reference(&init).unwrap();
                for fi in 0..init.len() {
                    let (fa, fb) = (a.frame(fi).as_slice(), b.frame(fi).as_slice());
                    for (i, (x, y)) in fa.iter().zip(fb).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "border {border}, {w}x{h}, field {fi}, slot {i}: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let p = spiky();
        let init = states(33, 29);
        let serial = Simulator::new(&p).unwrap().with_threads(1).run(&init, 3).unwrap();
        for t in [2, 4, 7, 0] {
            let par = Simulator::new(&p).unwrap().with_threads(t).run(&init, 3).unwrap();
            assert_eq!(serial, par, "{t} threads");
        }
    }

    #[test]
    fn static_frames_are_shared_not_copied() {
        let p = spiky();
        let sim = Simulator::new(&p).unwrap();
        let init = states(12, 12);
        let out = sim.step(&init).unwrap();
        assert!(Arc::ptr_eq(&init.frames()[1], &out.frames()[1]));
    }

    #[test]
    fn recycled_buffers_change_nothing() {
        // step-by-step vs double-buffered run: identical results.
        let p = spiky();
        let sim = Simulator::new(&p).unwrap();
        let init = states(21, 17);
        let mut by_step = init.clone();
        for _ in 0..6 {
            by_step = sim.step(&by_step).unwrap();
        }
        let run = sim.run(&init, 6).unwrap();
        assert_eq!(by_step, run);
    }
}
