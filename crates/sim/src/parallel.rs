//! Deterministic data parallelism over a persistent worker pool.
//!
//! The build must work fully offline, so instead of `rayon` this module
//! provides the primitives the flow needs: row-band parallelism for the
//! compiled frame engine, tile-band parallelism for the cone-architecture
//! paths ([`for_each_task`]) and order-preserving [`par_map`] for the
//! design-space sweep. All of them produce results that are **bit-identical
//! for every thread count** — work is partitioned statically into contiguous
//! chunks and reassembled in order, so parallelism only changes wall-clock
//! time.
//!
//! ## The worker pool
//!
//! Earlier revisions spawned fresh OS threads through `std::thread::scope`
//! on every call, which cost ~50–100 µs per thread per step — enough to eat
//! the compiled engine's gains on small frames. All helpers now dispatch to
//! one process-wide [`WorkerPool`]: `available_parallelism() - 1` workers
//! are spawned lazily on first use and then *kept*, parked on a condition
//! variable between calls. A call enqueues its tasks, the caller itself
//! drains the queue alongside the workers, and a completion latch guarantees
//! every task has finished before the call returns — which is what makes it
//! sound to hand the workers closures that borrow stack data.
//!
//! Worker panics are caught, forwarded, and re-raised on the calling thread
//! once the batch has fully drained.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Worker threads implied by `requested`: `0` means one per available core,
/// anything else is taken literally.
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// A batch task: an index into the caller's task list plus the (lifetime-
/// erased) closure that executes it, and the latch that signals completion.
struct Job {
    run: &'static (dyn Fn(usize) + Sync),
    index: usize,
    latch: Arc<Latch>,
}

/// Completion latch of one [`WorkerPool::execute`] batch.
struct Latch {
    state: Mutex<LatchState>,
    all_done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(tasks: usize) -> Arc<Self> {
        Arc::new(Latch {
            state: Mutex::new(LatchState {
                remaining: tasks,
                panic: None,
            }),
            all_done: Condvar::new(),
        })
    }

    /// Record one completed task (with its panic payload, if any) and wake
    /// the waiting caller once the batch has drained. The caller may return
    /// — and deallocate the batch closure — the moment this signals, so
    /// callers of `complete` must not hold the erased closure reference in
    /// any live function argument (see [`run_job`]).
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("latch lock");
        if let Some(payload) = panic {
            state.panic.get_or_insert(payload);
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            self.all_done.notify_all();
        }
    }

    /// Block until every task of the batch has completed; re-raise the first
    /// recorded panic on the waiting (calling) thread.
    fn wait(&self) {
        let mut state = self.state.lock().expect("latch lock");
        while state.remaining > 0 {
            state = self.all_done.wait(state).expect("latch wait");
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            std::panic::resume_unwind(payload);
        }
    }
}

/// Execute one job and count it on its latch, catching panics so they
/// re-raise on the submitting thread instead of unwinding through the pool.
///
/// The erased closure reference is deliberately held only in a plain local
/// (moved out of `job`), never as an argument of the frame that signals the
/// latch: the submitting `execute` can return — freeing the closure — the
/// instant the final `complete` runs, and a reference held in a live
/// *argument* at that point would be a protected dangling borrow.
fn run_job(job: Job) {
    let Job { run, index, latch } = job;
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| run(index)));
    latch.complete(result.err());
}

/// Shared state between the pool handle and its workers.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
}

impl PoolShared {
    /// Pop-and-run loop body for batch submitters: take only jobs of the
    /// given batch, so a long-running job of a *concurrent* batch cannot
    /// couple into this caller's latency. Returns `false` when none of the
    /// batch's jobs are queued (they are running or done).
    fn run_one_of(&self, latch: &Arc<Latch>) -> bool {
        let job = {
            let mut queue = self.queue.lock().expect("pool queue");
            queue
                .iter()
                .position(|j| Arc::ptr_eq(&j.latch, latch))
                .and_then(|i| queue.remove(i))
        };
        match job {
            Some(job) => {
                run_job(job);
                true
            }
            None => false,
        }
    }
}

/// A persistent pool of worker threads (see the [module docs](self)).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

/// Erase the lifetime of a batch closure so it can sit in the pool's queue.
///
/// SAFETY: every [`Job`] holding the erased reference is consumed by exactly
/// one [`run_job`] call, which finishes calling the closure *before* it
/// counts the job on the latch, and [`WorkerPool::execute`] does not return
/// (or unwind) before [`Latch::wait`] has observed all of its jobs complete
/// — so the reference is never dereferenced, nor held in any live function
/// argument, after the borrow it was created from ends (see [`run_job`]).
#[allow(unsafe_code)]
fn erase(f: &(dyn Fn(usize) + Sync)) -> &'static (dyn Fn(usize) + Sync) {
    unsafe { std::mem::transmute(f) }
}

impl WorkerPool {
    /// Pool with `workers` background threads (0 is legal: every batch then
    /// runs entirely on the calling thread).
    fn with_workers(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("isl-sim-worker-{i}"))
                .spawn(move || {
                    let tasks_key = format!("pool.worker.{i}.tasks");
                    loop {
                        let park_us;
                        let job = {
                            let mut queue = shared.queue.lock().expect("pool queue");
                            let mut parked_at = None;
                            loop {
                                if let Some(job) = queue.pop_front() {
                                    park_us = parked_at
                                        .map(|t: std::time::Instant| t.elapsed().as_micros() as u64);
                                    break job;
                                }
                                if parked_at.is_none() && isl_telemetry::enabled() {
                                    parked_at = Some(std::time::Instant::now());
                                }
                                queue = shared.work_ready.wait(queue).expect("pool wait");
                            }
                        };
                        if let Some(us) = park_us {
                            isl_telemetry::sample("pool.park_us", us);
                        }
                        isl_telemetry::add(&tasks_key, 1);
                        run_job(job);
                    }
                })
                .expect("spawn pool worker");
        }
        WorkerPool { shared, workers }
    }

    /// The process-wide pool, spawned on first use with one worker per
    /// available core minus the caller.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool::with_workers(effective_threads(0).saturating_sub(1)))
    }

    /// Number of background workers (the caller is an extra executor).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(0), f(1), …, f(tasks - 1)`, distributed over the pool workers
    /// and the calling thread, returning once **all** tasks have completed.
    /// Tasks may borrow from the caller's stack. Panics inside tasks are
    /// re-raised here after the batch has drained.
    ///
    /// Nested `execute` calls are legal and cannot deadlock: the enqueueing
    /// thread always drains the shared queue itself while it waits.
    pub fn execute(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.workers == 0 || tasks == 1 {
            // Serial fast path on the caller's own thread: the closure
            // cannot outlive this frame, so no latch (and no catch) needed.
            if isl_telemetry::enabled() {
                isl_telemetry::add("pool.batches", 1);
                isl_telemetry::add("pool.tasks", tasks as u64);
                isl_telemetry::add("pool.caller.tasks", tasks as u64);
            }
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        let batch_start = isl_telemetry::enabled().then(std::time::Instant::now);
        let latch = Latch::new(tasks);
        let queue_depth = {
            let mut queue = self.shared.queue.lock().expect("pool queue");
            for index in 0..tasks {
                queue.push_back(Job {
                    run: erase(f),
                    index,
                    latch: Arc::clone(&latch),
                });
            }
            batch_start.map(|_| queue.len() as u64)
        };
        if let Some(depth) = queue_depth {
            isl_telemetry::sample("pool.queue_depth", depth);
        }
        // Wake only as many workers as there are jobs for — a full
        // notify_all would stampede every parked worker through the queue
        // mutex on each small step. A wakeup consumed by an already-busy
        // worker is not lost work: the caller's drain loop below completes
        // the batch regardless.
        for _ in 0..tasks.min(self.workers) {
            self.shared.work_ready.notify_one();
        }
        // Help out: the caller drains its *own* batch's jobs alongside the
        // workers (never foreign ones — adopting a long job of a concurrent
        // batch would couple its runtime into this caller's latency). This
        // also guarantees progress regardless of what the workers are busy
        // with, so nested `execute` calls cannot deadlock.
        let mut caller_tasks = 0u64;
        while self.shared.run_one_of(&latch) {
            caller_tasks += 1;
        }
        latch.wait();
        if let Some(t0) = batch_start {
            isl_telemetry::add("pool.batches", 1);
            isl_telemetry::add("pool.tasks", tasks as u64);
            isl_telemetry::add("pool.caller.tasks", caller_tasks);
            isl_telemetry::sample("pool.batch_us", t0.elapsed().as_micros() as u64);
        }
    }
}

/// Run `f` over `items` with up to `threads` concurrent workers. Items are
/// grouped into at most `threads` contiguous chunks; each chunk runs in
/// submission order on one executor, so with disjoint per-item effects the
/// outcome is schedule-independent.
pub fn for_each_task<T, F>(items: Vec<T>, threads: usize, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let n = items.len();
    let t = effective_threads(threads).min(n).max(1);
    if t <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = n.div_ceil(t);
    let chunks: Vec<Mutex<Vec<T>>> = {
        let mut chunks = Vec::with_capacity(t);
        let mut it = items.into_iter();
        loop {
            let c: Vec<T> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(Mutex::new(c));
        }
        chunks
    };
    let task = |i: usize| {
        let chunk = std::mem::take(&mut *chunks[i].lock().expect("chunk taken once"));
        for item in chunk {
            f(item);
        }
    };
    WorkerPool::global().execute(chunks.len(), &task);
}

/// Split `out` (a row-major buffer of `width`-sample rows) into contiguous
/// whole-row bands and run `f(first_row, band)` on each, in parallel when
/// `threads != 1`. Bands are disjoint, so any schedule writes the same bytes.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `width`.
pub fn for_each_row_band<T, F>(out: &mut [T], width: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(
        width > 0 && out.len().is_multiple_of(width),
        "buffer must be whole rows"
    );
    let rows = out.len() / width;
    let t = effective_threads(threads).min(rows).max(1);
    if t <= 1 {
        f(0, out);
        return;
    }
    let rows_per_band = rows.div_ceil(t);
    let mut bands = Vec::with_capacity(t);
    let mut rest = out;
    let mut first_row = 0;
    while !rest.is_empty() {
        let take = (rows_per_band * width).min(rest.len());
        let (band, tail) = rest.split_at_mut(take);
        rest = tail;
        bands.push((first_row, band));
        first_row += take / width;
    }
    for_each_task(bands, threads, |(y0, band)| f(y0, band));
}

/// Map `f` over `items` on up to `threads` workers, preserving input order
/// exactly (contiguous chunks, reassembled in sequence).
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn par_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let t = effective_threads(threads).min(n).max(1);
    if t <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(t);
    let mut slots: Vec<Mutex<(Vec<T>, Vec<U>)>> = Vec::with_capacity(t);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        slots.push(Mutex::new((c, Vec::new())));
    }
    let task = |i: usize| {
        let mut slot = slots[i].lock().expect("slot taken once");
        let inputs = std::mem::take(&mut slot.0);
        slot.1 = inputs.into_iter().map(&f).collect();
    };
    WorkerPool::global().execute(slots.len(), &task);
    slots
        .into_iter()
        .flat_map(|s| s.into_inner().expect("slot poisoned").1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = par_map(items.clone(), 1, |x| x * x);
        for t in [2, 3, 8, 64] {
            assert_eq!(par_map(items.clone(), t, |x| x * x), serial);
        }
    }

    #[test]
    fn row_bands_cover_everything_once() {
        let width = 7;
        for threads in [1, 2, 3, 5, 16] {
            let mut buf = vec![0.0; width * 23];
            for_each_row_band(&mut buf, width, threads, |y0, band| {
                for (i, v) in band.iter_mut().enumerate() {
                    *v += (y0 * width + i) as f64 + 1.0;
                }
            });
            for (i, v) in buf.iter().enumerate() {
                assert_eq!(*v, (i + 1) as f64, "slot {i} with {threads} threads");
            }
        }
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let pool = WorkerPool::global();
        let before = pool.workers();
        for _ in 0..50 {
            let counter = std::sync::atomic::AtomicUsize::new(0);
            pool.execute(8, &|_| {
                counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
            assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 8);
        }
        assert_eq!(pool.workers(), before);
    }

    #[test]
    fn for_each_task_runs_every_item() {
        for threads in [1, 2, 5, 0] {
            let done: Vec<Mutex<bool>> = (0..17).map(|_| Mutex::new(false)).collect();
            let items: Vec<usize> = (0..17).collect();
            for_each_task(items, threads, |i| {
                *done[i].lock().expect("flag") = true;
            });
            assert!(done.iter().all(|d| *d.lock().expect("flag")));
        }
    }

    #[test]
    fn nested_execute_does_not_deadlock() {
        let pool = WorkerPool::global();
        let total = std::sync::atomic::AtomicUsize::new(0);
        pool.execute(4, &|_| {
            pool.execute(4, &|_| {
                total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 16);
    }

    #[test]
    fn worker_panics_propagate_after_drain() {
        let result = std::panic::catch_unwind(|| {
            par_map((0..64).collect::<Vec<u32>>(), 4, |x| {
                assert!(x != 13, "boom");
                x
            })
        });
        assert!(result.is_err());
        // The pool must stay usable afterwards.
        let ok = par_map(vec![1u32, 2, 3], 2, |x| x + 1);
        assert_eq!(ok, vec![2, 3, 4]);
    }
}
