//! Minimal deterministic fork-join helpers over `std::thread::scope`.
//!
//! The build must work fully offline, so instead of `rayon` this module
//! provides the two primitives the flow needs: row-band parallelism for the
//! compiled frame engine and order-preserving `par_map` for the design-space
//! sweep. Both produce results that are **bit-identical for every thread
//! count** — work is partitioned statically into contiguous chunks and
//! reassembled in order, so parallelism only changes wall-clock time.

use std::num::NonZeroUsize;

/// Worker threads implied by `requested`: `0` means one per available core,
/// anything else is taken literally.
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Split `out` (a row-major buffer of `width`-sample rows) into contiguous
/// whole-row bands and run `f(first_row, band)` on each, in parallel when
/// `threads != 1`. Bands are disjoint, so any schedule writes the same bytes.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `width`.
pub fn for_each_row_band<F>(out: &mut [f64], width: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert!(
        width > 0 && out.len().is_multiple_of(width),
        "buffer must be whole rows"
    );
    let rows = out.len() / width;
    let t = effective_threads(threads).min(rows).max(1);
    if t <= 1 {
        f(0, out);
        return;
    }
    let rows_per_band = rows.div_ceil(t);
    let f = &f;
    std::thread::scope(|s| {
        let mut rest = out;
        let mut first_row = 0;
        while !rest.is_empty() {
            let take = (rows_per_band * width).min(rest.len());
            let (band, tail) = rest.split_at_mut(take);
            rest = tail;
            let y0 = first_row;
            first_row += take / width;
            s.spawn(move || f(y0, band));
        }
    });
}

/// Map `f` over `items` on up to `threads` workers, preserving input order
/// exactly (contiguous chunks, reassembled in sequence).
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn par_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let t = effective_threads(threads).min(n).max(1);
    if t <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(t);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(t);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = par_map(items.clone(), 1, |x| x * x);
        for t in [2, 3, 8, 64] {
            assert_eq!(par_map(items.clone(), t, |x| x * x), serial);
        }
    }

    #[test]
    fn row_bands_cover_everything_once() {
        let width = 7;
        for threads in [1, 2, 3, 5, 16] {
            let mut buf = vec![0.0; width * 23];
            for_each_row_band(&mut buf, width, threads, |y0, band| {
                for (i, v) in band.iter_mut().enumerate() {
                    *v += (y0 * width + i) as f64 + 1.0;
                }
            });
            for (i, v) in buf.iter().enumerate() {
                assert_eq!(*v, (i + 1) as f64, "slot {i} with {threads} threads");
            }
        }
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }
}
