//! Lowering of [`Expr`] trees into flat bytecode.
//!
//! The tree-walking interpreter in `isl-ir` chases a `Box` per node, re-reads
//! duplicated subtrees and resolves borders on every sample — fine as a
//! golden reference, far too slow for whole-frame iteration at production
//! sizes. This module lowers each dynamic field's update expression **once**
//! into a [`CompiledKernel`]: a register-indexed instruction buffer in
//! dependency (postfix) order, with
//!
//! * **parameters bound up front** — every [`Expr::Param`] leaf becomes a
//!   literal constant of the simulator's current parameter binding;
//! * **constant folding** — operations whose operands are all constants are
//!   evaluated at compile time (with the exact same `f64` operation the
//!   runtime would use, so results stay bit-identical);
//! * **common-subexpression elimination** — structurally identical
//!   subexpressions share one register, mirroring the paper's register-reuse
//!   rule at software level;
//! * **dead-code elimination** — registers orphaned by folding are dropped.
//!
//! Execution lives in [`crate::vm`]; the [`crate::Simulator`] compiles lazily
//! and caches the program.

use std::collections::HashMap;

use isl_ir::{BinaryOp, Expr, FieldKind, StencilPattern, UnaryOp};

/// Index of an instruction; instruction `i` writes virtual register `i`.
pub(crate) type Reg = u32;

/// One bytecode instruction. Operands always reference earlier instructions,
/// so a single forward pass evaluates the whole program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Instr {
    /// A literal (folded constants and bound parameters included).
    Const(f64),
    /// Read field `field` at relative offset `(dx, dy)`.
    Input { field: u16, dx: i32, dy: i32 },
    /// Unary operation on register `a`.
    Unary { op: UnaryOp, a: Reg },
    /// Binary operation on registers `a`, `b`.
    Binary { op: BinaryOp, a: Reg, b: Reg },
    /// `regs[c] != 0 ? regs[t] : regs[e]`.
    Select { c: Reg, t: Reg, e: Reg },
}

/// Structural key used for common-subexpression elimination (constants are
/// keyed by bit pattern so `-0.0`/`0.0` and NaNs are kept distinct).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Const(u64),
    Input(u16, i32, i32),
    Unary(UnaryOp, Reg),
    Binary(BinaryOp, Reg, Reg),
    Select(Reg, Reg, Reg),
}

/// Per-side halo of a kernel: how far reads reach beyond the centre element.
/// The interior plane of a frame is the region where every read stays
/// in-bounds, i.e. at least `left`/`right`/`up`/`down` samples away from the
/// respective frame edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Halo {
    /// Reach in `-x`.
    pub left: u32,
    /// Reach in `+x`.
    pub right: u32,
    /// Reach in `-y`.
    pub up: u32,
    /// Reach in `+y`.
    pub down: u32,
}

/// The compiled update program of one dynamic field.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    pub(crate) code: Vec<Instr>,
    pub(crate) result: Reg,
    halo: Halo,
}

impl CompiledKernel {
    /// Lower `expr` with `params` bound as constants. With `fold == true`
    /// constant subexpressions are evaluated at compile time; the quantised
    /// engine compiles with `fold == false` so that every intermediate value
    /// still exists for per-operation rounding.
    ///
    /// # Panics
    ///
    /// Panics on offsets with a `dz` component (the frame engine is 1D/2D;
    /// [`crate::Simulator::new`] rejects rank-3 patterns before this runs).
    pub fn compile(expr: &Expr, params: &[f64], fold: bool) -> Self {
        let mut b = Builder {
            params,
            fold,
            code: Vec::new(),
            cse: HashMap::new(),
        };
        let result = b.lower(expr);
        let (code, result) = eliminate_dead_code(b.code, result);
        let mut halo = Halo::default();
        for instr in &code {
            if let Instr::Input { dx, dy, .. } = *instr {
                halo.left = halo.left.max(dx.unsigned_abs() * u32::from(dx < 0));
                halo.right = halo.right.max(dx.unsigned_abs() * u32::from(dx > 0));
                halo.up = halo.up.max(dy.unsigned_abs() * u32::from(dy < 0));
                halo.down = halo.down.max(dy.unsigned_abs() * u32::from(dy > 0));
            }
        }
        CompiledKernel { code, result, halo }
    }

    /// Number of instructions in the flattened program.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program is empty (never: even a constant emits one
    /// instruction).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The per-side read reach of this kernel.
    pub fn halo(&self) -> Halo {
        self.halo
    }

    /// Number of field-read instructions after CSE (deduplicated taps).
    pub fn input_count(&self) -> usize {
        self.code
            .iter()
            .filter(|i| matches!(i, Instr::Input { .. }))
            .count()
    }
}

struct Builder<'a> {
    params: &'a [f64],
    fold: bool,
    code: Vec<Instr>,
    cse: HashMap<Key, Reg>,
}

impl Builder<'_> {
    fn push(&mut self, key: Key, instr: Instr) -> Reg {
        if let Some(&r) = self.cse.get(&key) {
            return r;
        }
        let r = Reg::try_from(self.code.len()).expect("program exceeds u32 registers");
        self.code.push(instr);
        self.cse.insert(key, r);
        r
    }

    fn constant(&mut self, v: f64) -> Reg {
        self.push(Key::Const(v.to_bits()), Instr::Const(v))
    }

    fn const_of(&self, r: Reg) -> Option<f64> {
        match self.code[r as usize] {
            Instr::Const(v) => Some(v),
            _ => None,
        }
    }

    fn lower(&mut self, expr: &Expr) -> Reg {
        match expr {
            Expr::Input { field, offset } => {
                assert!(
                    offset.dz == 0,
                    "the compiled frame engine supports rank 1 and 2 only"
                );
                let f = u16::try_from(field.index()).expect("field id fits u16");
                self.push(
                    Key::Input(f, offset.dx, offset.dy),
                    Instr::Input {
                        field: f,
                        dx: offset.dx,
                        dy: offset.dy,
                    },
                )
            }
            Expr::Const(v) => self.constant(*v),
            Expr::Param(p) => self.constant(self.params[p.index()]),
            Expr::Unary { op, arg } => {
                let a = self.lower(arg);
                if self.fold {
                    if let Some(ca) = self.const_of(a) {
                        return self.constant(op.apply(ca));
                    }
                }
                self.push(Key::Unary(*op, a), Instr::Unary { op: *op, a })
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.lower(lhs);
                let b = self.lower(rhs);
                if self.fold {
                    if let (Some(ca), Some(cb)) = (self.const_of(a), self.const_of(b)) {
                        return self.constant(op.apply(ca, cb));
                    }
                }
                self.push(Key::Binary(*op, a, b), Instr::Binary { op: *op, a, b })
            }
            Expr::Select { cond, then_, else_ } => {
                let c = self.lower(cond);
                if self.fold {
                    if let Some(cc) = self.const_of(c) {
                        // Mirror the interpreter's lazy branch choice; the
                        // untaken branch is never emitted.
                        return if cc != 0.0 {
                            self.lower(then_)
                        } else {
                            self.lower(else_)
                        };
                    }
                }
                let t = self.lower(then_);
                let e = self.lower(else_);
                self.push(Key::Select(c, t, e), Instr::Select { c, t, e })
            }
        }
    }
}

/// Drop instructions unreachable from `result` (constants orphaned by
/// folding), remapping operand registers.
fn eliminate_dead_code(code: Vec<Instr>, result: Reg) -> (Vec<Instr>, Reg) {
    let mut live = vec![false; code.len()];
    live[result as usize] = true;
    for (i, instr) in code.iter().enumerate().rev() {
        if !live[i] {
            continue;
        }
        match *instr {
            Instr::Const(_) | Instr::Input { .. } => {}
            Instr::Unary { a, .. } => live[a as usize] = true,
            Instr::Binary { a, b, .. } => {
                live[a as usize] = true;
                live[b as usize] = true;
            }
            Instr::Select { c, t, e } => {
                live[c as usize] = true;
                live[t as usize] = true;
                live[e as usize] = true;
            }
        }
    }
    let mut remap = vec![0 as Reg; code.len()];
    let mut out = Vec::with_capacity(code.len());
    for (i, instr) in code.into_iter().enumerate() {
        if !live[i] {
            continue;
        }
        let fix = |r: Reg| remap[r as usize];
        let mapped = match instr {
            Instr::Const(_) | Instr::Input { .. } => instr,
            Instr::Unary { op, a } => Instr::Unary { op, a: fix(a) },
            Instr::Binary { op, a, b } => Instr::Binary {
                op,
                a: fix(a),
                b: fix(b),
            },
            Instr::Select { c, t, e } => Instr::Select {
                c: fix(c),
                t: fix(t),
                e: fix(e),
            },
        };
        remap[i] = out.len() as Reg;
        out.push(mapped);
    }
    let result = remap[result as usize];
    (out, result)
}

/// The compiled programs of every dynamic field of one pattern, with one
/// fixed parameter binding.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPattern {
    kernels: Vec<Option<CompiledKernel>>,
}

impl CompiledPattern {
    /// Compile every dynamic field's update of `pattern` with `params` bound.
    /// `fold` selects constant folding (see [`CompiledKernel::compile`]).
    ///
    /// # Panics
    ///
    /// Panics if a dynamic field lacks an update expression (callers validate
    /// the pattern first) or on rank-3 offsets.
    pub fn compile(pattern: &StencilPattern, params: &[f64], fold: bool) -> Self {
        let kernels = pattern
            .fields()
            .iter()
            .enumerate()
            .map(|(i, decl)| match decl.kind {
                FieldKind::Static => None,
                FieldKind::Dynamic => {
                    let update = pattern
                        .update(isl_ir::FieldId::new(i as u16))
                        .expect("validated pattern has updates for dynamic fields");
                    Some(CompiledKernel::compile(update, params, fold))
                }
            })
            .collect();
        CompiledPattern { kernels }
    }

    /// The kernel of field `i`, or `None` for static fields.
    pub fn kernel(&self, i: usize) -> Option<&CompiledKernel> {
        self.kernels.get(i).and_then(|k| k.as_ref())
    }

    /// Number of fields (dynamic and static) the program covers.
    pub fn field_count(&self) -> usize {
        self.kernels.len()
    }

    /// Total instructions across all dynamic fields.
    pub fn total_instructions(&self) -> usize {
        self.kernels
            .iter()
            .flatten()
            .map(CompiledKernel::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_ir::{FieldId, Offset};

    fn fid(i: u16) -> FieldId {
        FieldId::new(i)
    }

    #[test]
    fn constants_fold_to_single_instruction() {
        // (2 + 3) * 4 -> Const(20)
        let e = Expr::binary(
            BinaryOp::Mul,
            Expr::binary(BinaryOp::Add, Expr::constant(2.0), Expr::constant(3.0)),
            Expr::constant(4.0),
        );
        let k = CompiledKernel::compile(&e, &[], true);
        assert_eq!(k.len(), 1);
        assert_eq!(k.code[0], Instr::Const(20.0));
    }

    #[test]
    fn params_are_bound_and_folded() {
        use isl_ir::ParamId;
        // tau * 2 with tau = 0.25 -> Const(0.5)
        let e = Expr::binary(
            BinaryOp::Mul,
            Expr::param(ParamId::new(0)),
            Expr::constant(2.0),
        );
        let k = CompiledKernel::compile(&e, &[0.25], true);
        assert_eq!(k.len(), 1);
        assert_eq!(k.code[0], Instr::Const(0.5));
    }

    #[test]
    fn cse_dedupes_repeated_reads() {
        // f(1) + (f(1) + f(-1)): the tree reads f(1) twice, the program once.
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::input(fid(0), Offset::d1(1)),
            Expr::binary(
                BinaryOp::Add,
                Expr::input(fid(0), Offset::d1(1)),
                Expr::input(fid(0), Offset::d1(-1)),
            ),
        );
        let k = CompiledKernel::compile(&e, &[], true);
        assert_eq!(k.input_count(), 2);
        assert_eq!(k.halo(), Halo { left: 1, right: 1, up: 0, down: 0 });
    }

    #[test]
    fn no_fold_keeps_leaves() {
        let e = Expr::binary(BinaryOp::Add, Expr::constant(2.0), Expr::constant(3.0));
        let k = CompiledKernel::compile(&e, &[], false);
        assert_eq!(k.len(), 3); // two consts + one add
    }

    #[test]
    fn constant_select_takes_lazy_branch() {
        // sel(1, f(0), f(7)) folds to the `then` read only: halo stays 0.
        let e = Expr::select(
            Expr::constant(1.0),
            Expr::input(fid(0), Offset::d1(0)),
            Expr::input(fid(0), Offset::d1(7)),
        );
        let k = CompiledKernel::compile(&e, &[], true);
        assert_eq!(k.len(), 1);
        assert_eq!(k.halo(), Halo::default());
    }

    #[test]
    fn dead_constants_are_eliminated() {
        // abs(-3) + f(0): the folded `-3` operand register must not linger.
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::unary(UnaryOp::Abs, Expr::constant(-3.0)),
            Expr::input(fid(0), Offset::d1(0)),
        );
        let k = CompiledKernel::compile(&e, &[], true);
        assert_eq!(k.len(), 3); // Const(3), Input, Add
        assert!(k.code.iter().all(|i| *i != Instr::Const(-3.0)));
    }
}
