//! Lowering of [`Expr`] trees into flat bytecode.
//!
//! The tree-walking interpreter in `isl-ir` chases a `Box` per node, re-reads
//! duplicated subtrees and resolves borders on every sample — fine as a
//! golden reference, far too slow for whole-frame iteration at production
//! sizes. This module lowers each dynamic field's update expression **once**
//! into a [`CompiledKernel`]: a register-indexed instruction buffer in
//! dependency (postfix) order, with
//!
//! * **parameters bound up front** — every [`Expr::Param`] leaf becomes a
//!   literal constant of the simulator's current parameter binding;
//! * **constant folding** — operations whose operands are all constants are
//!   evaluated at compile time (with the exact same `f64` operation the
//!   runtime would use, so results stay bit-identical);
//! * **common-subexpression elimination** — structurally identical
//!   subexpressions share one register, mirroring the paper's register-reuse
//!   rule at software level;
//! * **dead-code elimination** — registers orphaned by folding are dropped.
//!
//! Execution lives in the crate's VM module; the [`crate::Simulator`]
//! compiles lazily and serves programs from a [`ProgramCache`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use isl_fpga::FixedFormat;
use isl_ir::{BinaryOp, Cone, Expr, FieldKind, Leaf, Node, NodeId, StencilPattern, UnaryOp};

/// A borrowed view of one freshly compiled program, in whichever of the
/// five forms the compiler emits — what the [compile verifier
/// hook](set_compile_verifier) receives.
#[derive(Clone, Copy)]
pub enum ProgramView<'a> {
    /// An SSA `f64` kernel ([`CompiledKernel`]).
    Kernel(&'a CompiledKernel),
    /// An SSA quantised kernel ([`QuantizedKernel`]).
    QuantizedKernel(&'a QuantizedKernel),
    /// A multi-field quantised step program ([`QuantizedStep`]).
    Step(&'a QuantizedStep),
    /// A slot-allocated `f64` cone program ([`CompiledCone`]).
    Cone(&'a CompiledCone),
    /// A slot-allocated quantised cone program ([`QuantizedCone`]).
    QuantizedCone(&'a QuantizedCone),
}

impl ProgramView<'_> {
    /// Short human name of the program form (for diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            ProgramView::Kernel(_) => "kernel",
            ProgramView::QuantizedKernel(_) => "quantized kernel",
            ProgramView::Step(_) => "quantized step",
            ProgramView::Cone(_) => "cone",
            ProgramView::QuantizedCone(_) => "quantized cone",
        }
    }
}

/// A bytecode verifier installed with [`set_compile_verifier`]: receives
/// every freshly compiled program and returns a description of the first
/// violated contract, if any.
pub type CompileVerifier = fn(ProgramView<'_>) -> Result<(), String>;

static COMPILE_VERIFIER: OnceLock<CompileVerifier> = OnceLock::new();

/// Install a process-wide bytecode verifier, called after **every**
/// compile in debug builds (release builds skip the call entirely); a
/// verifier finding is a compiler bug and panics. First installation
/// wins and later calls are no-ops (returning `false`), so every entry
/// point can install unconditionally. The canonical verifier lives in
/// `isl-analyze` (`install_debug_verifier`) — this crate only provides
/// the hook, keeping the dependency arrow pointing analyzer → compiler.
pub fn set_compile_verifier(hook: CompileVerifier) -> bool {
    COMPILE_VERIFIER.set(hook).is_ok()
}

/// Debug-assert the installed verifier on a freshly compiled program.
#[inline]
fn notify_compiled(view: ProgramView<'_>) {
    if cfg!(debug_assertions) {
        if let Some(hook) = COMPILE_VERIFIER.get() {
            if let Err(e) = hook(view) {
                panic!("compiled {} failed bytecode verification: {e}", view.kind());
            }
        }
    }
}

/// Index of an instruction (or, after slot allocation, of a value slot).
/// In a [`CompiledKernel`] instruction `i` writes virtual register `i`.
pub type Reg = u32;

/// One bytecode instruction. Operands always reference earlier instructions
/// (slots, for slot-allocated cone programs), so a single forward pass
/// evaluates the whole program. Public so out-of-crate evaluators — the
/// bit-true integer VM of `isl-cosim` — can execute the same programs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // variant fields are documented on the variants
pub enum Instr {
    /// A literal (folded constants and bound parameters included).
    Const(f64),
    /// Read field `field` at relative offset `(dx, dy)`.
    Input { field: u16, dx: i32, dy: i32 },
    /// Unary operation on register `a`.
    Unary { op: UnaryOp, a: Reg },
    /// Binary operation on registers `a`, `b`.
    Binary { op: BinaryOp, a: Reg, b: Reg },
    /// `regs[c] != 0 ? regs[t] : regs[e]`.
    Select { c: Reg, t: Reg, e: Reg },
}

/// One instruction of a **quantised** program: the same shape as [`Instr`],
/// but every value is a raw fixed-point word (`i64`) of one
/// [`FixedFormat`], and every operation carries the hardware's
/// rounding/saturation semantics
/// ([`FixedFormat::apply_unary`]/[`FixedFormat::apply_binary`]) — resolved
/// at **compile time** into the program variant, so the evaluators run
/// branch-free saturating lane kernels with no per-op rounding dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are documented on the variants
pub enum QInstr {
    /// A literal raw word (constants and bound parameters, pre-quantised).
    Const(i64),
    /// Read field `field` at relative offset `(dx, dy)` (words are
    /// quantised at frame load, so a read needs no conversion).
    Input { field: u16, dx: i32, dy: i32 },
    /// Fixed-point unary operation on register `a`.
    Unary { op: UnaryOp, a: Reg },
    /// Fixed-point binary operation on registers `a`, `b` (saturating
    /// add/sub, truncating widened mul/div — the `isl_fpga` datapath).
    Binary { op: BinaryOp, a: Reg, b: Reg },
    /// `regs[c] != 0 ? regs[t] : regs[e]` on raw words.
    Select { c: Reg, t: Reg, e: Reg },
}

/// Structural key used for common-subexpression elimination (constants are
/// keyed by bit pattern so `-0.0`/`0.0` and NaNs are kept distinct).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Const(u64),
    Input(u16, i32, i32),
    Unary(UnaryOp, Reg),
    Binary(BinaryOp, Reg, Reg),
    Select(Reg, Reg, Reg),
}

/// Operand access and operand rewriting, shared by the `f64` and quantised
/// instruction sets so the compiler passes (dead-code elimination, kill-first
/// scheduling, linear-scan slot allocation) are written once.
trait Bytecode: Copy {
    /// Write the operand registers (≤ 3, with multiplicity) into `out`,
    /// returning how many there are.
    fn operands(&self, out: &mut [Reg; 3]) -> usize;
    /// The same instruction with every operand register rewritten.
    fn remap(self, fix: impl Fn(Reg) -> Reg) -> Self;
    /// The `(field, dx, dy)` of an input tap, if this is one (drives halo
    /// and reach computation generically).
    fn tap(&self) -> Option<(u16, i32, i32)>;
}

impl Bytecode for Instr {
    fn operands(&self, out: &mut [Reg; 3]) -> usize {
        match *self {
            Instr::Const(_) | Instr::Input { .. } => 0,
            Instr::Unary { a, .. } => {
                out[0] = a;
                1
            }
            Instr::Binary { a, b, .. } => {
                out[0] = a;
                out[1] = b;
                2
            }
            Instr::Select { c, t, e } => {
                out[0] = c;
                out[1] = t;
                out[2] = e;
                3
            }
        }
    }

    fn remap(self, fix: impl Fn(Reg) -> Reg) -> Self {
        match self {
            Instr::Const(_) | Instr::Input { .. } => self,
            Instr::Unary { op, a } => Instr::Unary { op, a: fix(a) },
            Instr::Binary { op, a, b } => Instr::Binary {
                op,
                a: fix(a),
                b: fix(b),
            },
            Instr::Select { c, t, e } => Instr::Select {
                c: fix(c),
                t: fix(t),
                e: fix(e),
            },
        }
    }

    fn tap(&self) -> Option<(u16, i32, i32)> {
        match *self {
            Instr::Input { field, dx, dy } => Some((field, dx, dy)),
            _ => None,
        }
    }
}

impl Bytecode for QInstr {
    fn operands(&self, out: &mut [Reg; 3]) -> usize {
        match *self {
            QInstr::Const(_) | QInstr::Input { .. } => 0,
            QInstr::Unary { a, .. } => {
                out[0] = a;
                1
            }
            QInstr::Binary { a, b, .. } => {
                out[0] = a;
                out[1] = b;
                2
            }
            QInstr::Select { c, t, e } => {
                out[0] = c;
                out[1] = t;
                out[2] = e;
                3
            }
        }
    }

    fn remap(self, fix: impl Fn(Reg) -> Reg) -> Self {
        match self {
            QInstr::Const(_) | QInstr::Input { .. } => self,
            QInstr::Unary { op, a } => QInstr::Unary { op, a: fix(a) },
            QInstr::Binary { op, a, b } => QInstr::Binary {
                op,
                a: fix(a),
                b: fix(b),
            },
            QInstr::Select { c, t, e } => QInstr::Select {
                c: fix(c),
                t: fix(t),
                e: fix(e),
            },
        }
    }

    fn tap(&self) -> Option<(u16, i32, i32)> {
        match *self {
            QInstr::Input { field, dx, dy } => Some((field, dx, dy)),
            _ => None,
        }
    }
}

/// Per-side halo of a kernel: how far reads reach beyond the centre element.
/// The interior plane of a frame is the region where every read stays
/// in-bounds, i.e. at least `left`/`right`/`up`/`down` samples away from the
/// respective frame edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Halo {
    /// Reach in `-x`.
    pub left: u32,
    /// Reach in `+x`.
    pub right: u32,
    /// Reach in `-y`.
    pub up: u32,
    /// Reach in `+y`.
    pub down: u32,
}

/// The compiled update program of one dynamic field.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    pub(crate) code: Vec<Instr>,
    pub(crate) result: Reg,
    halo: Halo,
}

impl CompiledKernel {
    /// Lower `expr` with `params` bound as constants. With `fold == true`
    /// constant subexpressions are evaluated at compile time; the quantised
    /// engine compiles with `fold == false` so that every intermediate value
    /// still exists for per-operation rounding.
    ///
    /// # Panics
    ///
    /// Panics on offsets with a `dz` component (the frame engine is 1D/2D;
    /// [`crate::Simulator::new`] rejects rank-3 patterns before this runs).
    pub fn compile(expr: &Expr, params: &[f64], fold: bool) -> Self {
        let mut b = Builder {
            params,
            fold,
            code: Vec::new(),
            cse: HashMap::new(),
        };
        let result = b.lower(expr);
        let (code, result) = eliminate_dead_code(b.code, result);
        let mut halo = Halo::default();
        for instr in &code {
            if let Instr::Input { dx, dy, .. } = *instr {
                halo.left = halo.left.max(dx.unsigned_abs() * u32::from(dx < 0));
                halo.right = halo.right.max(dx.unsigned_abs() * u32::from(dx > 0));
                halo.up = halo.up.max(dy.unsigned_abs() * u32::from(dy < 0));
                halo.down = halo.down.max(dy.unsigned_abs() * u32::from(dy > 0));
            }
        }
        let k = CompiledKernel { code, result, halo };
        notify_compiled(ProgramView::Kernel(&k));
        k
    }

    /// Number of instructions in the flattened program.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program is empty (never: even a constant emits one
    /// instruction).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The per-side read reach of this kernel.
    pub fn halo(&self) -> Halo {
        self.halo
    }

    /// Number of field-read instructions after CSE (deduplicated taps).
    pub fn input_count(&self) -> usize {
        self.code
            .iter()
            .filter(|i| matches!(i, Instr::Input { .. }))
            .count()
    }

    /// The instruction buffer; instruction `i` writes register `i`.
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// Register holding the kernel's result.
    pub fn result(&self) -> Reg {
        self.result
    }
}

struct Builder<'a> {
    params: &'a [f64],
    fold: bool,
    code: Vec<Instr>,
    cse: HashMap<Key, Reg>,
}

impl Builder<'_> {
    fn push(&mut self, key: Key, instr: Instr) -> Reg {
        if let Some(&r) = self.cse.get(&key) {
            return r;
        }
        let r = Reg::try_from(self.code.len()).expect("program exceeds u32 registers");
        self.code.push(instr);
        self.cse.insert(key, r);
        r
    }

    fn constant(&mut self, v: f64) -> Reg {
        self.push(Key::Const(v.to_bits()), Instr::Const(v))
    }

    fn const_of(&self, r: Reg) -> Option<f64> {
        match self.code[r as usize] {
            Instr::Const(v) => Some(v),
            _ => None,
        }
    }

    fn input(&mut self, field: u16, dx: i32, dy: i32) -> Reg {
        self.push(
            Key::Input(field, dx, dy),
            Instr::Input { field, dx, dy },
        )
    }

    fn unary(&mut self, op: UnaryOp, a: Reg) -> Reg {
        if self.fold {
            if let Some(ca) = self.const_of(a) {
                return self.constant(op.apply(ca));
            }
        }
        self.push(Key::Unary(op, a), Instr::Unary { op, a })
    }

    fn binary(&mut self, op: BinaryOp, a: Reg, b: Reg) -> Reg {
        if self.fold {
            if let (Some(ca), Some(cb)) = (self.const_of(a), self.const_of(b)) {
                return self.constant(op.apply(ca, cb));
            }
        }
        self.push(Key::Binary(op, a, b), Instr::Binary { op, a, b })
    }

    fn select(&mut self, c: Reg, t: Reg, e: Reg) -> Reg {
        if self.fold {
            if let Some(cc) = self.const_of(c) {
                // Mirror the interpreter's lazy branch choice.
                return if cc != 0.0 { t } else { e };
            }
        }
        self.push(Key::Select(c, t, e), Instr::Select { c, t, e })
    }

    fn lower(&mut self, expr: &Expr) -> Reg {
        match expr {
            Expr::Input { field, offset } => {
                assert!(
                    offset.dz == 0,
                    "the compiled frame engine supports rank 1 and 2 only"
                );
                let f = u16::try_from(field.index()).expect("field id fits u16");
                self.input(f, offset.dx, offset.dy)
            }
            Expr::Const(v) => self.constant(*v),
            Expr::Param(p) => self.constant(self.params[p.index()]),
            Expr::Unary { op, arg } => {
                let a = self.lower(arg);
                self.unary(*op, a)
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.lower(lhs);
                let b = self.lower(rhs);
                self.binary(*op, a, b)
            }
            Expr::Select { cond, then_, else_ } => {
                let c = self.lower(cond);
                if self.fold {
                    if let Some(cc) = self.const_of(c) {
                        // Only the taken branch is ever emitted.
                        return if cc != 0.0 {
                            self.lower(then_)
                        } else {
                            self.lower(else_)
                        };
                    }
                }
                let t = self.lower(then_);
                let e = self.lower(else_);
                self.select(c, t, e)
            }
        }
    }
}

/// Drop instructions unreachable from `result` (constants orphaned by
/// folding), remapping operand registers.
fn eliminate_dead_code(code: Vec<Instr>, result: Reg) -> (Vec<Instr>, Reg) {
    let (code, mut results) = eliminate_dead_code_multi(code, vec![result]);
    (code, results.pop().expect("one result in, one result out"))
}

/// Linear-scan slot allocation over a dead-code-free program: a slot is
/// freed the moment its value's last consumer has executed, and reused by
/// later instructions. Returns the program with operands rewritten to slot
/// indices, the destination slot of each instruction, the result slots, and
/// the total slot count (peak liveness).
///
/// Allocation is **retiring**: a result does *not* pin its slot to the end
/// of the program — its value is captured (streamed to its destination) the
/// instant its defining instruction executes, so its slot frees at its last
/// *consumer* like any other value. `results` therefore come back as `(slot,
/// capture)` pairs, where `capture` is the index of the defining
/// instruction: evaluators must read `slot` immediately after executing
/// instruction `capture`, before any later instruction can reuse it. This
/// is what lets wide cones (hundreds of outputs) run in a live set far
/// below their output count.
///
/// An instruction's destination slot is always distinct from its operand
/// slots (operands are live *at* the instruction, so their slots cannot be
/// on the free list when the destination is assigned) — evaluators may rely
/// on this for aliasing-free in-place execution.
type SlotAllocation<I> = (Vec<I>, Vec<Reg>, Vec<(Reg, Reg)>, usize);

fn allocate_slots<I: Bytecode>(code: Vec<I>, results: Vec<Reg>) -> SlotAllocation<I> {
    let n = code.len();
    // Last consumer of each instruction's value (itself if never consumed).
    let mut last_use: Vec<usize> = (0..n).collect();
    let mut ops = [0 as Reg; 3];
    for (i, instr) in code.iter().enumerate() {
        let k = instr.operands(&mut ops);
        for &r in &ops[..k] {
            last_use[r as usize] = i;
        }
    }
    let mut frees: Vec<Vec<Reg>> = vec![Vec::new(); n];
    for (r, &lu) in last_use.iter().enumerate() {
        if lu < n {
            frees[lu].push(r as Reg);
        }
    }
    let mut slot_of: Vec<Reg> = vec![0; n];
    let mut free: Vec<Reg> = Vec::new();
    let mut total: Reg = 0;
    for i in 0..n {
        slot_of[i] = free.pop().unwrap_or_else(|| {
            total += 1;
            total - 1
        });
        for &r in &frees[i] {
            free.push(slot_of[r as usize]);
        }
    }
    let code = code
        .into_iter()
        .map(|instr| instr.remap(|r| slot_of[r as usize]))
        .collect();
    let dst = slot_of.clone();
    let results = results
        .into_iter()
        .map(|r| (slot_of[r as usize], r))
        .collect();
    (code, dst, results, total as usize)
}

/// Greedy consumer-clustering schedule: a list scheduler that, among the
/// ready instructions, always emits the one that *kills* the most operand
/// values (retires their slots), breaking ties towards the earliest
/// original index — consumers are pulled right next to the producers whose
/// values they free. The lowering order (memoised DFS from the first
/// output) keeps shared subexpressions live from their first consumer to
/// their last; kill-first scheduling retires them as early as the dataflow
/// allows, which is what shrinks the linear-scan allocator's peak live
/// set. Dataflow is untouched — only the order changes — so results stay
/// bit-identical.
///
/// Expects dead-code-free input (every instruction reachable from a result).
///
/// Results get no extra liveness credit here: under retiring allocation
/// ([`allocate_slots`]) an output is captured at its defining instruction,
/// so for scheduling purposes it dies at its last consumer like any other
/// value.
fn schedule_for_locality<I: Bytecode>(code: &[I], results: &[Reg]) -> (Vec<I>, Vec<Reg>) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = code.len();
    // remaining[v]: unscheduled consumer slots of value v.
    let mut remaining: Vec<u32> = vec![0; n];
    let mut pending: Vec<u8> = vec![0; n]; // unscheduled operand slots of i
    let mut users: Vec<Vec<Reg>> = vec![Vec::new(); n];
    let mut ops = [0 as Reg; 3];
    for (i, instr) in code.iter().enumerate() {
        let k = instr.operands(&mut ops);
        pending[i] = k as u8;
        for &op in &ops[..k] {
            remaining[op as usize] += 1;
            users[op as usize].push(i as Reg);
        }
    }
    // kills(i): distinct operands whose remaining count equals their
    // multiplicity in i — scheduling i is their last use. Monotone
    // non-decreasing as other consumers schedule, so stale (lower-scored)
    // heap entries are safely superseded by re-pushes.
    let kills = |i: usize, remaining: &[u32]| -> u8 {
        let mut ops = [0 as Reg; 3];
        let k = code[i].operands(&mut ops);
        let mut score = 0u8;
        for j in 0..k {
            if ops[..j].contains(&ops[j]) {
                continue; // count each distinct operand once
            }
            let mult = ops[..k].iter().filter(|&&o| o == ops[j]).count() as u32;
            if remaining[ops[j] as usize] == mult {
                score += 1;
            }
        }
        score
    };
    let mut heap: BinaryHeap<(u8, Reverse<Reg>)> = BinaryHeap::new();
    for (i, &p) in pending.iter().enumerate() {
        if p == 0 {
            heap.push((kills(i, &remaining), Reverse(i as Reg)));
        }
    }
    let mut order: Vec<Reg> = Vec::with_capacity(n);
    let mut scheduled = vec![false; n];
    while let Some((score, Reverse(i))) = heap.pop() {
        let i = i as usize;
        if scheduled[i] {
            continue;
        }
        let now = kills(i, &remaining);
        if now != score {
            heap.push((now, Reverse(i as Reg)));
            continue;
        }
        scheduled[i] = true;
        order.push(i as Reg);
        let k = code[i].operands(&mut ops);
        for &op in &ops[..k] {
            remaining[op as usize] -= 1;
            // A consumer's kill score can only flip once its operand is
            // down to its last few uses (multiplicity ≤ 3); re-rank those
            // consumers — at most a handful remain by then.
            if remaining[op as usize] <= 3 {
                for &u in &users[op as usize] {
                    if !scheduled[u as usize] && pending[u as usize] == 0 {
                        heap.push((kills(u as usize, &remaining), Reverse(u)));
                    }
                }
            }
        }
        for &u in &users[i] {
            let u = u as usize;
            pending[u] -= 1;
            if pending[u] == 0 {
                heap.push((kills(u, &remaining), Reverse(u as Reg)));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "input must be dead-code-free");
    let mut remap = vec![0 as Reg; n];
    for (new, &old) in order.iter().enumerate() {
        remap[old as usize] = new as Reg;
    }
    let out = order
        .iter()
        .map(|&old| code[old as usize].remap(|r| remap[r as usize]))
        .collect();
    let results = results.iter().map(|&r| remap[r as usize]).collect();
    (out, results)
}

/// Multi-root dead-code elimination: drop instructions unreachable from any
/// of `results`, remapping operand registers and the results themselves.
fn eliminate_dead_code_multi<I: Bytecode>(code: Vec<I>, results: Vec<Reg>) -> (Vec<I>, Vec<Reg>) {
    let mut live = vec![false; code.len()];
    for &r in &results {
        live[r as usize] = true;
    }
    let mut ops = [0 as Reg; 3];
    for (i, instr) in code.iter().enumerate().rev() {
        if !live[i] {
            continue;
        }
        let k = instr.operands(&mut ops);
        for &r in &ops[..k] {
            live[r as usize] = true;
        }
    }
    let mut remap = vec![0 as Reg; code.len()];
    let mut out = Vec::with_capacity(code.len());
    for (i, instr) in code.into_iter().enumerate() {
        if !live[i] {
            continue;
        }
        let mapped = instr.remap(|r| remap[r as usize]);
        remap[i] = out.len() as Reg;
        out.push(mapped);
    }
    let results = results.into_iter().map(|r| remap[r as usize]).collect();
    (out, results)
}

/// Quantise a fold-free `f64` program into a [`QInstr`] program of one
/// [`FixedFormat`]: constants and bound parameters become raw words
/// ([`FixedFormat::quantize`]), operations become their fixed-point
/// counterparts, constant subexpressions are folded **with the fixed-point
/// operations themselves** (compile-time evaluation is bit-identical to
/// runtime evaluation — both are `FixedFormat::apply_*`), selects on
/// constant conditions take the lazy branch like the interpreter, and
/// common subexpressions are re-interned on raw words (distinct `f64`
/// constants can collapse onto one word). Finishes with multi-root
/// dead-code elimination.
fn quantize_code(
    code: &[Instr],
    results: &[Reg],
    fmt: FixedFormat,
) -> (Vec<QInstr>, Vec<Reg>) {
    #[derive(PartialEq, Eq, Hash)]
    enum QKey {
        Const(i64),
        Input(u16, i32, i32),
        Unary(UnaryOp, Reg),
        Binary(BinaryOp, Reg, Reg),
        Select(Reg, Reg, Reg),
    }
    let mut out: Vec<QInstr> = Vec::with_capacity(code.len());
    let mut cse: HashMap<QKey, Reg> = HashMap::new();
    // map[i]: the quantised register holding f64 instruction i's value.
    let mut map: Vec<Reg> = vec![0; code.len()];
    for (i, instr) in code.iter().enumerate() {
        let const_of = |r: Reg, out: &[QInstr]| match out[r as usize] {
            QInstr::Const(v) => Some(v),
            _ => None,
        };
        let (key, qi) = match *instr {
            Instr::Const(v) => {
                let w = fmt.quantize(v);
                (QKey::Const(w), QInstr::Const(w))
            }
            Instr::Input { field, dx, dy } => (
                QKey::Input(field, dx, dy),
                QInstr::Input { field, dx, dy },
            ),
            Instr::Unary { op, a } => {
                let a = map[a as usize];
                match const_of(a, &out) {
                    Some(ca) => {
                        let w = fmt.apply_unary(op, ca);
                        (QKey::Const(w), QInstr::Const(w))
                    }
                    None => (QKey::Unary(op, a), QInstr::Unary { op, a }),
                }
            }
            Instr::Binary { op, a, b } => {
                let (a, b) = (map[a as usize], map[b as usize]);
                match (const_of(a, &out), const_of(b, &out)) {
                    (Some(ca), Some(cb)) => {
                        let w = fmt.apply_binary(op, ca, cb);
                        (QKey::Const(w), QInstr::Const(w))
                    }
                    _ => (QKey::Binary(op, a, b), QInstr::Binary { op, a, b }),
                }
            }
            Instr::Select { c, t, e } => {
                let (c, t, e) = (map[c as usize], map[t as usize], map[e as usize]);
                match const_of(c, &out) {
                    // Mirror the interpreter's lazy branch choice.
                    Some(cc) => {
                        map[i] = if cc != 0 { t } else { e };
                        continue;
                    }
                    None => (QKey::Select(c, t, e), QInstr::Select { c, t, e }),
                }
            }
        };
        map[i] = *cse.entry(key).or_insert_with(|| {
            let r = Reg::try_from(out.len()).expect("program exceeds u32 registers");
            out.push(qi);
            r
        });
    }
    let results = results.iter().map(|&r| map[r as usize]).collect();
    eliminate_dead_code_multi(out, results)
}

/// The compiled programs of every dynamic field of one pattern, with one
/// fixed parameter binding.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPattern {
    kernels: Vec<Option<CompiledKernel>>,
}

impl CompiledPattern {
    /// Compile every dynamic field's update of `pattern` with `params` bound.
    /// `fold` selects constant folding (see [`CompiledKernel::compile`]).
    ///
    /// # Panics
    ///
    /// Panics if a dynamic field lacks an update expression (callers validate
    /// the pattern first) or on rank-3 offsets.
    pub fn compile(pattern: &StencilPattern, params: &[f64], fold: bool) -> Self {
        let kernels = pattern
            .fields()
            .iter()
            .enumerate()
            .map(|(i, decl)| match decl.kind {
                FieldKind::Static => None,
                FieldKind::Dynamic => {
                    let update = pattern
                        .update(isl_ir::FieldId::new(i as u16))
                        .expect("validated pattern has updates for dynamic fields");
                    Some(CompiledKernel::compile(update, params, fold))
                }
            })
            .collect();
        CompiledPattern { kernels }
    }

    /// The kernel of field `i`, or `None` for static fields.
    pub fn kernel(&self, i: usize) -> Option<&CompiledKernel> {
        self.kernels.get(i).and_then(|k| k.as_ref())
    }

    /// Number of fields (dynamic and static) the program covers.
    pub fn field_count(&self) -> usize {
        self.kernels.len()
    }

    /// Total instructions across all dynamic fields.
    pub fn total_instructions(&self) -> usize {
        self.kernels
            .iter()
            .flatten()
            .map(CompiledKernel::len)
            .sum()
    }
}

/// One output element of a [`CompiledCone`] program: `field` at window-local
/// `(px, py)`, produced in slot `reg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConeSlot {
    /// Dynamic field produced.
    pub field: u16,
    /// Window-local x of the output element.
    pub px: i32,
    /// Window-local y of the output element.
    pub py: i32,
    /// Value slot holding the result after the forward pass.
    pub reg: Reg,
}

/// Signed bounding box of everything a cone program touches relative to its
/// tile origin — all [`Instr::Input`] taps *and* all output points, so a
/// tile whose reach is in-frame can both gather and scatter unchecked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reach {
    /// Smallest x touched (≤ 0 for any non-degenerate cone).
    pub min_dx: i32,
    /// Largest x touched.
    pub max_dx: i32,
    /// Smallest y touched.
    pub min_dy: i32,
    /// Largest y touched.
    pub max_dy: i32,
}

/// A whole cone level lowered to one flat bytecode program.
///
/// Where a [`CompiledKernel`] computes a single field at a single element,
/// a `CompiledCone` computes **every output element of one depth-`d` cone**
/// — the multi-iteration module the VHDL backend emits — in one forward
/// pass: the hash-consed cone [`Graph`](isl_ir::Graph) is walked in
/// topological order and every reachable node becomes one instruction, with
/// parameters bound as constants, constant subexpressions folded (with the
/// exact runtime `f64` operations, so results stay bit-identical) and
/// common subexpressions shared **across the whole cone** — the software
/// mirror of the paper's register-reuse rule.
///
/// Inputs are [`Instr::Input`] taps at cone-local coordinates relative to
/// the tile origin; static and dynamic base reads are unified (both read
/// iteration-0 data under cone semantics).
///
/// After lowering, virtual registers are **slot-allocated** (linear scan,
/// slots freed after their last use): instruction `i` writes `dst[i]` and
/// operands name slots, not instruction indices. Cone programs run to
/// thousands of instructions, but only a few hundred values are live at
/// once, so the evaluator's structure-of-arrays scratch shrinks by an order
/// of magnitude and stays cache-resident — the software analogue of the
/// paper's bounded register file.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCone {
    pub(crate) code: Vec<Instr>,
    /// Destination slot of each instruction (parallel to `code`).
    pub(crate) dst: Vec<Reg>,
    pub(crate) outputs: Vec<ConeSlot>,
    pub(crate) capture: Vec<Reg>,
    pub(crate) retire: Vec<u32>,
    slots: usize,
    slots_unscheduled: usize,
    reach: Reach,
}

/// Everything [`finish_cone`] produces for one lowered cone program —
/// shared between the `f64` and quantised cone compilers.
struct ConeParts<I> {
    code: Vec<I>,
    dst: Vec<Reg>,
    outputs: Vec<ConeSlot>,
    capture: Vec<Reg>,
    retire: Vec<u32>,
    slots: usize,
    slots_unscheduled: usize,
    reach: Reach,
}

/// Walk `cone`'s hash-consed graph and lower every node reachable from an
/// output into SSA bytecode (instruction `i` writes register `i`), with
/// parameters bound, CSE across the whole cone and — when `fold` is set —
/// constant subexpressions evaluated at compile time. Returns the dead-code-
/// free program and one result register per cone output.
fn lower_cone(cone: &Cone, params: &[f64], fold: bool) -> (Vec<Instr>, Vec<Reg>) {
    let graph = cone.graph();
    let roots: Vec<NodeId> = cone.outputs().iter().map(|o| o.node).collect();
    let mask = graph.reachable(&roots);
    let mut b = Builder {
        params,
        fold,
        code: Vec::new(),
        cse: HashMap::new(),
    };
    // NodeIds are dense and topologically ordered, so one forward pass
    // sees every operand before its users.
    let mut regs: Vec<Option<Reg>> = vec![None; graph.len()];
    let reg_of = |regs: &[Option<Reg>], id: NodeId| -> Reg {
        regs[id.index()].expect("graph ids are topologically ordered")
    };
    for (id, node) in graph.nodes() {
        if !mask[id.index()] {
            continue;
        }
        let r = match node {
            Node::Leaf(Leaf::Input { field, point })
            | Node::Leaf(Leaf::Static { field, point }) => {
                assert!(point.z == 0, "the compiled cone engine supports rank 1 and 2 only");
                let f = u16::try_from(field.index()).expect("field id fits u16");
                b.input(f, point.x, point.y)
            }
            Node::Leaf(Leaf::Const(c)) => b.constant(c.value()),
            Node::Leaf(Leaf::Param(p)) => b.constant(params[p.index()]),
            Node::Unary { op, arg } => {
                let a = reg_of(&regs, *arg);
                b.unary(*op, a)
            }
            Node::Binary { op, lhs, rhs } => {
                let (a, bb) = (reg_of(&regs, *lhs), reg_of(&regs, *rhs));
                b.binary(*op, a, bb)
            }
            Node::Select { cond, then_, else_ } => {
                let (c, t, e) = (
                    reg_of(&regs, *cond),
                    reg_of(&regs, *then_),
                    reg_of(&regs, *else_),
                );
                b.select(c, t, e)
            }
        };
        regs[id.index()] = Some(r);
    }
    let result_regs: Vec<Reg> = cone
        .outputs()
        .iter()
        .map(|o| reg_of(&regs, o.node))
        .collect();
    eliminate_dead_code_multi(b.code, result_regs)
}

/// Schedule, slot-allocate and package one lowered cone program. Runs the
/// kill-first scheduling pre-pass, keeps whichever order allocates fewer
/// slots, and derives the capture points and retirement order of the
/// outputs plus the program's coordinate reach.
fn finish_cone<I: Bytecode>(code: Vec<I>, result_regs: Vec<Reg>, cone: &Cone) -> ConeParts<I> {
    // Scheduling pre-pass: greedy consumer clustering (depth-first from
    // the outputs) shortens live ranges before linear-scan allocation.
    // Keep whichever order needs fewer slots — clustering wins on wide
    // cones whose level-interleaved order keeps whole levels live.
    let (sched_code, sched_results) = schedule_for_locality(&code, &result_regs);
    let (lin_code, lin_dst, lin_results, lin_slots) = allocate_slots(code, result_regs);
    let (s_code, s_dst, s_results, s_slots) = allocate_slots(sched_code, sched_results);
    let slots_unscheduled = lin_slots;
    let (code, dst, result_regs, slots) = if s_slots < lin_slots {
        (s_code, s_dst, s_results, s_slots)
    } else {
        (lin_code, lin_dst, lin_results, lin_slots)
    };
    let outputs: Vec<ConeSlot> = cone
        .outputs()
        .iter()
        .zip(&result_regs)
        .map(|(o, &(reg, _))| ConeSlot {
            field: u16::try_from(o.field.index()).expect("field id fits u16"),
            px: o.point.x,
            py: o.point.y,
            reg,
        })
        .collect();
    let capture: Vec<Reg> = result_regs.iter().map(|&(_, c)| c).collect();
    let mut retire: Vec<u32> = (0..outputs.len() as u32).collect();
    retire.sort_by_key(|&k| capture[k as usize]);
    // Reach: every tap plus every output point, so interior tiles can
    // skip both read and write bounds handling.
    let mut reach = Reach {
        min_dx: 0,
        max_dx: 0,
        min_dy: 0,
        max_dy: 0,
    };
    let mut touch = |x: i32, y: i32| {
        reach.min_dx = reach.min_dx.min(x);
        reach.max_dx = reach.max_dx.max(x);
        reach.min_dy = reach.min_dy.min(y);
        reach.max_dy = reach.max_dy.max(y);
    };
    for instr in &code {
        if let Some((_, dx, dy)) = instr.tap() {
            touch(dx, dy);
        }
    }
    for o in &outputs {
        touch(o.px, o.py);
    }
    ConeParts {
        code,
        dst,
        outputs,
        capture,
        retire,
        slots,
        slots_unscheduled,
        reach,
    }
}

impl CompiledCone {
    /// Lower `cone` with `params` bound as constants and constant folding
    /// enabled (the fast-path default).
    ///
    /// # Panics
    ///
    /// Panics on rank-3 cones (the frame engine is 1D/2D; the simulator
    /// rejects rank-3 patterns before this runs) or an unbound parameter.
    pub fn compile(cone: &Cone, params: &[f64]) -> Self {
        Self::compile_with(cone, params, true)
    }

    /// [`CompiledCone::compile`] with explicit control over constant
    /// folding. The quantised / bit-true engines compile with
    /// `fold == false` so that **every** operation node of the cone graph —
    /// the exact set the VHDL backend registers — survives as one
    /// instruction and receives its own per-operation rounding.
    ///
    /// # Panics
    ///
    /// Same as [`CompiledCone::compile`].
    pub fn compile_with(cone: &Cone, params: &[f64], fold: bool) -> Self {
        let (code, result_regs) = lower_cone(cone, params, fold);
        let p = finish_cone(code, result_regs, cone);
        let c = CompiledCone {
            code: p.code,
            dst: p.dst,
            outputs: p.outputs,
            capture: p.capture,
            retire: p.retire,
            slots: p.slots,
            slots_unscheduled: p.slots_unscheduled,
            reach: p.reach,
        };
        notify_compiled(ProgramView::Cone(&c));
        c
    }

    /// Number of value slots the evaluator needs (peak live registers).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Slots the program would need under the plain lowering order, without
    /// the consumer-clustering scheduling pre-pass — `slots() /
    /// slots_unscheduled()` measures what scheduling saved.
    pub fn slots_unscheduled(&self) -> usize {
        self.slots_unscheduled
    }

    /// The instruction buffer; instruction `i` writes slot `dst()[i]`.
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// Destination slot of each instruction (parallel to [`CompiledCone::code`]).
    pub fn dst(&self) -> &[Reg] {
        &self.dst
    }

    /// The output elements and the slots holding them **at their capture
    /// points** (see [`CompiledCone::capture`]).
    pub fn outputs(&self) -> &[ConeSlot] {
        &self.outputs
    }

    /// Capture point of each output (parallel to
    /// [`CompiledCone::outputs`]): the index of the instruction that
    /// defines output `k`'s value. Slot allocation is **retiring** —
    /// outputs do not pin their slots to the end of the pass — so an
    /// evaluator must read `outputs()[k].reg` immediately after executing
    /// instruction `capture()[k]`, before a later instruction reuses the
    /// slot. Walking [`CompiledCone::retire`] alongside the instruction
    /// stream does this with one comparison per instruction.
    pub fn capture(&self) -> &[Reg] {
        &self.capture
    }

    /// Output indices sorted by capture point: as the evaluator executes
    /// instruction `i`, every output `k` at the front of this list with
    /// `capture()[k] == i` retires (is streamed to its destination) before
    /// the next instruction runs.
    pub fn retire(&self) -> &[u32] {
        &self.retire
    }

    /// Number of instructions in the flattened program.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program is empty (never: every output emits at least one
    /// instruction).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Number of output elements (`dynamic fields × window area`).
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of field-read instructions after CSE (deduplicated taps).
    pub fn input_count(&self) -> usize {
        self.code
            .iter()
            .filter(|i| matches!(i, Instr::Input { .. }))
            .count()
    }

    /// The signed coordinate reach of the program around its tile origin.
    pub fn reach(&self) -> Reach {
        self.reach
    }
}

/// The compiled **quantised** update program of one dynamic field: a
/// [`QInstr`] buffer over raw `i64` words of one [`FixedFormat`], with the
/// rounding/saturation rule fused into the instructions at compile time.
///
/// Built from the fold-free `f64` lowering of the update expression (every
/// intermediate of the reference tree exists and receives the hardware's
/// per-operation rounding), then constant-folded **in the fixed-point
/// domain** — safe precisely because compile-time evaluation uses the same
/// `FixedFormat::apply_*` functions the evaluator would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedKernel {
    pub(crate) code: Vec<QInstr>,
    pub(crate) result: Reg,
    halo: Halo,
    fmt: FixedFormat,
}

impl QuantizedKernel {
    /// Quantise `expr`'s fold-free lowering into a `fmt` program.
    ///
    /// # Panics
    ///
    /// Same as [`CompiledKernel::compile`].
    pub fn compile(expr: &Expr, params: &[f64], fmt: FixedFormat) -> Self {
        let k = CompiledKernel::compile(expr, params, false);
        let (code, results) = quantize_code(&k.code, &[k.result], fmt);
        let result = results[0];
        let halo = quantized_halo(&code);
        let k = QuantizedKernel {
            code,
            result,
            halo,
            fmt,
        };
        notify_compiled(ProgramView::QuantizedKernel(&k));
        k
    }

    /// Number of instructions in the flattened program.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program is empty (never: even a constant emits one
    /// instruction).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The per-side read reach of this kernel.
    pub fn halo(&self) -> Halo {
        self.halo
    }

    /// The fixed-point format fused into the program.
    pub fn format(&self) -> FixedFormat {
        self.fmt
    }

    /// The instruction buffer; instruction `i` writes register `i`.
    pub fn code(&self) -> &[QInstr] {
        &self.code
    }

    /// Register holding the kernel's result.
    pub fn result(&self) -> Reg {
        self.result
    }
}

/// The per-side read reach of a quantised program.
fn quantized_halo(code: &[QInstr]) -> Halo {
    let mut halo = Halo::default();
    for instr in code {
        if let Some((_, dx, dy)) = instr.tap() {
            halo.left = halo.left.max(dx.unsigned_abs() * u32::from(dx < 0));
            halo.right = halo.right.max(dx.unsigned_abs() * u32::from(dx > 0));
            halo.up = halo.up.max(dy.unsigned_abs() * u32::from(dy < 0));
            halo.down = halo.down.max(dy.unsigned_abs() * u32::from(dy > 0));
        }
    }
    halo
}

/// **All** dynamic-field updates of one pattern lowered into a single
/// fold-free quantised program with cross-field common-subexpression
/// elimination — the multi-output counterpart of [`QuantizedKernel`].
///
/// Field updates of one stencil routinely share work: gradients, norms and
/// parameter quotients appear in every component's update (Chambolle's `px`
/// and `py` kernels share the divergence, both gradient taps, the norm's
/// `sqrt` and all three `÷λ` divides). Lowering every update through one
/// hash-consing builder dedupes those subexpressions, so the whole-frame
/// engine evaluates them once per pixel instead of once per field.
///
/// Bit-identical to evaluating each field's [`QuantizedKernel`] separately:
/// CSE only merges *exactly equal* operations on *exactly equal* operands,
/// and every instruction applies the same `FixedFormat` rounding either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedStep {
    pub(crate) code: Vec<QInstr>,
    /// `(field index, result register)` of every dynamic field, in field
    /// order.
    pub(crate) outputs: Vec<(u16, Reg)>,
    halo: Halo,
    fmt: FixedFormat,
}

impl QuantizedStep {
    /// Lower every dynamic update of `pattern` fold-free into one program,
    /// quantise into `fmt` with all result registers as roots.
    ///
    /// # Panics
    ///
    /// Same as [`CompiledPattern::compile`].
    pub fn compile(pattern: &StencilPattern, params: &[f64], fmt: FixedFormat) -> Self {
        let mut b = Builder {
            params,
            fold: false,
            code: Vec::new(),
            cse: HashMap::new(),
        };
        let mut fields = Vec::new();
        let mut roots = Vec::new();
        for (i, decl) in pattern.fields().iter().enumerate() {
            if matches!(decl.kind, FieldKind::Dynamic) {
                let update = pattern
                    .update(isl_ir::FieldId::new(i as u16))
                    .expect("validated pattern has updates for dynamic fields");
                fields.push(i as u16);
                roots.push(b.lower(update));
            }
        }
        let (code, results) = quantize_code(&b.code, &roots, fmt);
        let halo = quantized_halo(&code);
        let s = QuantizedStep {
            code,
            outputs: fields.into_iter().zip(results).collect(),
            halo,
            fmt,
        };
        notify_compiled(ProgramView::Step(&s));
        s
    }

    /// Number of instructions in the fused program.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program is empty (only for patterns with no dynamic
    /// fields, which validation rejects).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The per-side read reach across all fused updates.
    pub fn halo(&self) -> Halo {
        self.halo
    }

    /// The fixed-point format fused into the program.
    pub fn format(&self) -> FixedFormat {
        self.fmt
    }

    /// The instruction buffer; instruction `i` writes register `i`.
    pub fn code(&self) -> &[QInstr] {
        &self.code
    }

    /// `(field index, result register)` per dynamic field, in field order.
    pub fn outputs(&self) -> &[(u16, Reg)] {
        &self.outputs
    }
}

/// The compiled quantised programs of every dynamic field of one pattern —
/// the fixed-point counterpart of [`CompiledPattern`], with the
/// [`FixedFormat`] carried by the program itself so a mismatched quantiser
/// between compile time and run time is unrepresentable.
///
/// Carries both views of the same step: per-field [`QuantizedKernel`]s
/// (what the tiled engine evaluates level by level) and the fused
/// cross-field [`QuantizedStep`] (what the whole-frame engine evaluates
/// once per pixel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedPattern {
    kernels: Vec<Option<QuantizedKernel>>,
    fused: QuantizedStep,
    fmt: FixedFormat,
}

impl QuantizedPattern {
    /// Compile every dynamic field's update of `pattern` into `fmt`
    /// programs with `params` bound.
    ///
    /// # Panics
    ///
    /// Same as [`CompiledPattern::compile`].
    pub fn compile(pattern: &StencilPattern, params: &[f64], fmt: FixedFormat) -> Self {
        let kernels = pattern
            .fields()
            .iter()
            .enumerate()
            .map(|(i, decl)| match decl.kind {
                FieldKind::Static => None,
                FieldKind::Dynamic => {
                    let update = pattern
                        .update(isl_ir::FieldId::new(i as u16))
                        .expect("validated pattern has updates for dynamic fields");
                    Some(QuantizedKernel::compile(update, params, fmt))
                }
            })
            .collect();
        let fused = QuantizedStep::compile(pattern, params, fmt);
        QuantizedPattern { kernels, fused, fmt }
    }

    /// The kernel of field `i`, or `None` for static fields.
    pub fn kernel(&self, i: usize) -> Option<&QuantizedKernel> {
        self.kernels.get(i).and_then(|k| k.as_ref())
    }

    /// The fused multi-output program over all dynamic fields.
    pub fn fused(&self) -> &QuantizedStep {
        &self.fused
    }

    /// Number of fields (dynamic and static) the program covers.
    pub fn field_count(&self) -> usize {
        self.kernels.len()
    }

    /// The fixed-point format fused into the programs.
    pub fn format(&self) -> FixedFormat {
        self.fmt
    }

    /// Total instructions across all dynamic fields.
    pub fn total_instructions(&self) -> usize {
        self.kernels
            .iter()
            .flatten()
            .map(QuantizedKernel::len)
            .sum()
    }
}

/// A whole cone level lowered to one flat **quantised** bytecode program —
/// the fixed-point counterpart of [`CompiledCone`], over raw `i64` words of
/// one [`FixedFormat`] with rounding fused at compile time, slot-allocated
/// with the same retiring discipline (outputs captured at their defining
/// instructions, see [`CompiledCone::capture`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedCone {
    pub(crate) code: Vec<QInstr>,
    /// Destination slot of each instruction (parallel to `code`).
    pub(crate) dst: Vec<Reg>,
    pub(crate) outputs: Vec<ConeSlot>,
    pub(crate) capture: Vec<Reg>,
    pub(crate) retire: Vec<u32>,
    slots: usize,
    fmt: FixedFormat,
    reach: Reach,
}

impl QuantizedCone {
    /// Lower `cone` fold-free (every graph operation node — the exact set
    /// the VHDL backend registers — survives as one instruction), quantise
    /// into `fmt`, schedule and slot-allocate.
    ///
    /// # Panics
    ///
    /// Same as [`CompiledCone::compile`].
    pub fn compile(cone: &Cone, params: &[f64], fmt: FixedFormat) -> Self {
        let (code, result_regs) = lower_cone(cone, params, false);
        let (qcode, qresults) = quantize_code(&code, &result_regs, fmt);
        let p = finish_cone(qcode, qresults, cone);
        let c = QuantizedCone {
            code: p.code,
            dst: p.dst,
            outputs: p.outputs,
            capture: p.capture,
            retire: p.retire,
            slots: p.slots,
            fmt,
            reach: p.reach,
        };
        notify_compiled(ProgramView::QuantizedCone(&c));
        c
    }

    /// Number of value slots the evaluator needs (peak live registers).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The instruction buffer; instruction `i` writes slot `dst()[i]`.
    pub fn code(&self) -> &[QInstr] {
        &self.code
    }

    /// Destination slot of each instruction (parallel to
    /// [`QuantizedCone::code`]).
    pub fn dst(&self) -> &[Reg] {
        &self.dst
    }

    /// The output elements and the slots holding them at their capture
    /// points.
    pub fn outputs(&self) -> &[ConeSlot] {
        &self.outputs
    }

    /// Capture point of each output — see [`CompiledCone::capture`].
    pub fn capture(&self) -> &[Reg] {
        &self.capture
    }

    /// Output indices sorted by capture point — see
    /// [`CompiledCone::retire`].
    pub fn retire(&self) -> &[u32] {
        &self.retire
    }

    /// The fixed-point format fused into the program.
    pub fn format(&self) -> FixedFormat {
        self.fmt
    }

    /// Number of instructions in the flattened program.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program is empty (never: every output emits at least
    /// one instruction).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Number of output elements (`dynamic fields × window area`).
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The signed coordinate reach of the program around its tile origin.
    pub fn reach(&self) -> Reach {
        self.reach
    }
}

/// Identity of one compiled program: which pattern (structural fingerprint),
/// which parameter binding (bit patterns — NaN payloads and signed zeros
/// distinguish), whether constants were folded, and — for cone programs —
/// which cone shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProgramKey {
    pattern: u64,
    params: Vec<u64>,
    fold: bool,
    /// `None` for whole-pattern kernels; `Some((w, h, d, depth,
    /// simplified))` for cones — the simplification flag is part of the
    /// identity because it changes the built graph.
    shape: Option<(u32, u32, u32, u32, bool)>,
}

impl ProgramKey {
    fn of(pattern: &StencilPattern, params: &[f64], fold: bool, cone: Option<&Cone>) -> Self {
        ProgramKey {
            pattern: pattern.fingerprint(),
            params: params.iter().map(|p| p.to_bits()).collect(),
            fold,
            shape: cone.map(|c| {
                let w = c.window();
                (w.w, w.h, w.d, c.depth(), c.simplified())
            }),
        }
    }
}

#[derive(Debug, Default)]
struct ProgramCacheInner {
    patterns: Mutex<HashMap<ProgramKey, Arc<CompiledPattern>>>,
    cones: Mutex<HashMap<ProgramKey, Arc<CompiledCone>>>,
    qpatterns: Mutex<HashMap<(ProgramKey, FixedFormat), Arc<QuantizedPattern>>>,
    qcones: Mutex<HashMap<(ProgramKey, FixedFormat), Arc<QuantizedCone>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// A concurrency-safe, content-keyed store of compiled bytecode programs —
/// the simulator's compile-cache hook.
///
/// Every [`crate::Simulator`] owns one (so repeated runs on one simulator
/// never recompile, exactly as before); sharing a cache across simulators
/// with [`crate::Simulator::with_program_cache`] extends that guarantee to
/// a whole session: one `(pattern, params, fold, shape)` identity is
/// lowered at most once no matter how many simulators, engines or threads
/// request it. Compilation is deterministic, so a cached program is
/// bit-for-bit the program a cold compile would produce (property-tested in
/// `tests/tests/session_props.rs`).
#[derive(Debug, Clone, Default)]
pub struct ProgramCache {
    inner: Arc<ProgramCacheInner>,
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The compiled whole-pattern program of `(pattern, params, fold)` —
    /// served from the cache or compiled (outside the lock) and stored.
    pub fn pattern_program(
        &self,
        pattern: &StencilPattern,
        params: &[f64],
        fold: bool,
    ) -> Arc<CompiledPattern> {
        let key = ProgramKey::of(pattern, params, fold, None);
        if let Some(hit) = self.inner.patterns.lock().expect("program cache").get(&key) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        let _span = isl_telemetry::span("compile", "pattern f64");
        let built = Arc::new(CompiledPattern::compile(pattern, params, fold));
        let mut map = self.inner.patterns.lock().expect("program cache");
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// The compiled cone program of `(pattern, cone shape, params, fold)` —
    /// served from the cache or lowered (outside the lock) and stored.
    /// `cone` must be the cone of `pattern` at its own window/depth; the
    /// key derives from the pattern fingerprint plus the cone's shape and
    /// simplification flag, which together determine the cone
    /// (construction is deterministic).
    pub fn cone_program(
        &self,
        pattern: &StencilPattern,
        cone: &Cone,
        params: &[f64],
        fold: bool,
    ) -> Arc<CompiledCone> {
        let key = ProgramKey::of(pattern, params, fold, Some(cone));
        if let Some(hit) = self.inner.cones.lock().expect("program cache").get(&key) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        let _span = isl_telemetry::span("compile", "cone f64");
        let built = Arc::new(CompiledCone::compile_with(cone, params, fold));
        let mut map = self.inner.cones.lock().expect("program cache");
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// The quantised whole-pattern program of `(pattern, params, fmt)` —
    /// served from the cache or compiled (outside the lock) and stored.
    /// Quantised programs always lower fold-free, so `fold` is not part of
    /// the identity; the fixed-point format is.
    pub fn quantized_pattern_program(
        &self,
        pattern: &StencilPattern,
        params: &[f64],
        fmt: FixedFormat,
    ) -> Arc<QuantizedPattern> {
        let key = (ProgramKey::of(pattern, params, false, None), fmt);
        if let Some(hit) = self.inner.qpatterns.lock().expect("program cache").get(&key) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        let _span = isl_telemetry::span("compile", "pattern q");
        let built = Arc::new(QuantizedPattern::compile(pattern, params, fmt));
        let mut map = self.inner.qpatterns.lock().expect("program cache");
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// The quantised cone program of `(pattern, cone shape, params, fmt)` —
    /// served from the cache or lowered (outside the lock) and stored.
    /// Same contract as [`ProgramCache::cone_program`].
    pub fn quantized_cone_program(
        &self,
        pattern: &StencilPattern,
        cone: &Cone,
        params: &[f64],
        fmt: FixedFormat,
    ) -> Arc<QuantizedCone> {
        let key = (ProgramKey::of(pattern, params, false, Some(cone)), fmt);
        if let Some(hit) = self.inner.qcones.lock().expect("program cache").get(&key) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        let _span = isl_telemetry::span("compile", "cone q");
        let built = Arc::new(QuantizedCone::compile(cone, params, fmt));
        let mut map = self.inner.qcones.lock().expect("program cache");
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// Snapshot the hit/miss counters (pattern and cone programs combined).
    pub fn stats(&self) -> isl_ir::CacheStats {
        isl_ir::CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct programs currently stored.
    pub fn len(&self) -> usize {
        self.inner.patterns.lock().expect("program cache").len()
            + self.inner.cones.lock().expect("program cache").len()
            + self.inner.qpatterns.lock().expect("program cache").len()
            + self.inner.qcones.lock().expect("program cache").len()
    }

    /// Whether no program has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_ir::{FieldId, Offset};

    fn fid(i: u16) -> FieldId {
        FieldId::new(i)
    }

    #[test]
    fn constants_fold_to_single_instruction() {
        // (2 + 3) * 4 -> Const(20)
        let e = Expr::binary(
            BinaryOp::Mul,
            Expr::binary(BinaryOp::Add, Expr::constant(2.0), Expr::constant(3.0)),
            Expr::constant(4.0),
        );
        let k = CompiledKernel::compile(&e, &[], true);
        assert_eq!(k.len(), 1);
        assert_eq!(k.code[0], Instr::Const(20.0));
    }

    #[test]
    fn params_are_bound_and_folded() {
        use isl_ir::ParamId;
        // tau * 2 with tau = 0.25 -> Const(0.5)
        let e = Expr::binary(
            BinaryOp::Mul,
            Expr::param(ParamId::new(0)),
            Expr::constant(2.0),
        );
        let k = CompiledKernel::compile(&e, &[0.25], true);
        assert_eq!(k.len(), 1);
        assert_eq!(k.code[0], Instr::Const(0.5));
    }

    #[test]
    fn cse_dedupes_repeated_reads() {
        // f(1) + (f(1) + f(-1)): the tree reads f(1) twice, the program once.
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::input(fid(0), Offset::d1(1)),
            Expr::binary(
                BinaryOp::Add,
                Expr::input(fid(0), Offset::d1(1)),
                Expr::input(fid(0), Offset::d1(-1)),
            ),
        );
        let k = CompiledKernel::compile(&e, &[], true);
        assert_eq!(k.input_count(), 2);
        assert_eq!(k.halo(), Halo { left: 1, right: 1, up: 0, down: 0 });
    }

    #[test]
    fn no_fold_keeps_leaves() {
        let e = Expr::binary(BinaryOp::Add, Expr::constant(2.0), Expr::constant(3.0));
        let k = CompiledKernel::compile(&e, &[], false);
        assert_eq!(k.len(), 3); // two consts + one add
    }

    #[test]
    fn constant_select_takes_lazy_branch() {
        // sel(1, f(0), f(7)) folds to the `then` read only: halo stays 0.
        let e = Expr::select(
            Expr::constant(1.0),
            Expr::input(fid(0), Offset::d1(0)),
            Expr::input(fid(0), Offset::d1(7)),
        );
        let k = CompiledKernel::compile(&e, &[], true);
        assert_eq!(k.len(), 1);
        assert_eq!(k.halo(), Halo::default());
    }

    #[test]
    fn cone_lowering_shares_and_binds() {
        use isl_ir::{FieldKind, StencilPattern, Window};
        // f'(x) = (f(x-1) + f(x) + f(x+1)) * tau, window 4, depth 2: the
        // compiled cone must share interior adds between adjacent outputs
        // (input taps deduplicated) and fold tau into constants.
        let mut p = StencilPattern::new(1).with_name("avg");
        let f = p.add_field("f", FieldKind::Dynamic);
        let tau = p.add_param("tau", 1.0 / 3.0);
        let sum = Expr::sum([
            Expr::input(f, Offset::d1(-1)),
            Expr::input(f, Offset::d1(0)),
            Expr::input(f, Offset::d1(1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Mul, sum, Expr::param(tau)))
            .unwrap();
        let cone = Cone::build(&p, Window::line(4), 2).unwrap();
        let cc = CompiledCone::compile(&cone, &[1.0 / 3.0]);
        assert_eq!(cc.output_count(), 4);
        // 4 + 2 * radius * depth unique base taps.
        assert_eq!(cc.input_count(), 8);
        let reach = cc.reach();
        assert_eq!((reach.min_dx, reach.max_dx), (-2, 5));
        assert_eq!((reach.min_dy, reach.max_dy), (0, 0));
        // One Const(tau) register, interned.
        let taus = cc
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Const(v) if (*v - 1.0 / 3.0).abs() < 1e-15))
            .count();
        assert_eq!(taus, 1);
    }

    #[test]
    fn cone_lowering_matches_graph_eval() {
        use isl_ir::{FieldId, FieldKind, Point, StencilPattern, Window};
        let mut p = StencilPattern::new(2).with_name("mix");
        let f = p.add_field("f", FieldKind::Dynamic);
        let g = p.add_field("g", FieldKind::Static);
        let e = Expr::binary(
            BinaryOp::Max,
            Expr::unary(UnaryOp::Abs, Expr::input(f, isl_ir::Offset::d2(1, -1))),
            Expr::binary(
                BinaryOp::Mul,
                Expr::input(g, isl_ir::Offset::d2(0, 1)),
                Expr::input(f, isl_ir::Offset::d2(-1, 0)),
            ),
        );
        p.set_update(f, e).unwrap();
        let cone = Cone::build(&p, Window::square(2), 2).unwrap();
        let cc = CompiledCone::compile(&cone, &[]);
        let read = |fid: FieldId, pt: Point| {
            (pt.x * 3 + pt.y * 7) as f64 * 0.25 + fid.index() as f64
        };
        let want = cone.eval(read, &[]);
        // Evaluate the program by hand with the same read function
        // (operands and destinations name allocated slots). Allocation is
        // retiring, so each output must be captured the moment its defining
        // instruction executes — walking the capture-sorted retire list.
        let mut regs = vec![0.0; cc.slots()];
        let mut outs = vec![0.0; cc.outputs.len()];
        let mut next = 0usize;
        for (i, instr) in cc.code.iter().enumerate() {
            regs[cc.dst[i] as usize] = match *instr {
                Instr::Const(v) => v,
                Instr::Input { field, dx, dy } => {
                    read(FieldId::new(field), Point::d2(dx, dy))
                }
                Instr::Unary { op, a } => op.apply(regs[a as usize]),
                Instr::Binary { op, a, b } => op.apply(regs[a as usize], regs[b as usize]),
                Instr::Select { c, t, e } => {
                    if regs[c as usize] != 0.0 {
                        regs[t as usize]
                    } else {
                        regs[e as usize]
                    }
                }
            };
            while next < cc.retire.len() && cc.capture[cc.retire[next] as usize] as usize == i {
                let k = cc.retire[next] as usize;
                outs[k] = regs[cc.outputs[k].reg as usize];
                next += 1;
            }
        }
        assert_eq!(next, cc.outputs.len(), "every output must retire");
        assert_eq!(cc.outputs.len(), want.len());
        for ((slot, &got), (wf, wp, wv)) in cc.outputs.iter().zip(&outs).zip(&want) {
            assert_eq!(slot.field as usize, wf.index());
            assert_eq!((slot.px, slot.py), (wp.x, wp.y));
            assert_eq!(got.to_bits(), wv.to_bits(), "({},{})", wp.x, wp.y);
        }
    }

    #[test]
    fn scheduling_prepass_shrinks_cone_live_set() {
        use isl_ir::{FieldKind, StencilPattern, Window};
        // A wide 2D cone: the memoised-DFS lowering order keeps shared
        // cross-output subexpressions live far longer than the dataflow
        // requires; the kill-first schedule must do strictly better, and
        // the compiler must never pick a worse order than linear.
        let mut p = StencilPattern::new(2).with_name("jac");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Mul, sum, Expr::constant(0.25)))
            .unwrap();
        let cone = Cone::build(&p, Window::square(8), 2).unwrap();
        let cc = CompiledCone::compile(&cone, &[]);
        // The compiler must never pick a worse order than the lowering order.
        // (Retiring allocation already frees an output's slot at its capture
        // point, which removes most of the register pressure the kill-first
        // schedule used to win back, so equality is acceptable here.)
        assert!(
            cc.slots() <= cc.slots_unscheduled(),
            "kill-first schedule must not lose to the lowering order: {} !<= {}",
            cc.slots(),
            cc.slots_unscheduled()
        );
        // Retiring allocation frees an output's slot once its value has been
        // captured, so the peak live set of this 64-output cone drops below
        // the output count — the old "outputs pinned until the end" floor.
        assert!(
            cc.slots() < cc.output_count(),
            "retiring allocation should beat the output-count floor: {} !< {}",
            cc.slots(),
            cc.output_count()
        );
        // Every output must have a capture point inside the program, and the
        // retire order must be capture-sorted.
        assert_eq!(cc.capture().len(), cc.output_count());
        assert_eq!(cc.retire().len(), cc.output_count());
        for w in cc.retire().windows(2) {
            assert!(cc.capture()[w[0] as usize] <= cc.capture()[w[1] as usize]);
        }
        for &c in cc.capture() {
            assert!((c as usize) < cc.len());
        }
    }

    #[test]
    fn dead_constants_are_eliminated() {
        // abs(-3) + f(0): the folded `-3` operand register must not linger.
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::unary(UnaryOp::Abs, Expr::constant(-3.0)),
            Expr::input(fid(0), Offset::d1(0)),
        );
        let k = CompiledKernel::compile(&e, &[], true);
        assert_eq!(k.len(), 3); // Const(3), Input, Add
        assert!(k.code.iter().all(|i| *i != Instr::Const(-3.0)));
    }
}
