//! Engine op-class telemetry: per-instruction-class element tallies for the
//! compiled f64 engines ([`crate::vm`]) and the quantised engines
//! ([`crate::qvm`]).
//!
//! Call sites sit at rect/chunk granularity, where the element count is
//! known exactly (every element of a rect or lane chunk executes the whole
//! program), so the histogram is an exact dynamic operation count at
//! amortised cost: one counter add per instruction per *rect*, not per
//! element. Every counter name is a `&'static str`, so the enabled path
//! allocates nothing; the disabled path never reaches here (call sites
//! branch on [`isl_telemetry::enabled`]).

use crate::compile::{Instr, QInstr};
use isl_ir::{BinaryOp, UnaryOp};

fn unary_class_f64(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Neg => "engine.f64.neg",
        UnaryOp::Abs => "engine.f64.abs",
        UnaryOp::Sqrt => "engine.f64.sqrt",
    }
}

fn binary_class_f64(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Add => "engine.f64.add",
        BinaryOp::Sub => "engine.f64.sub",
        BinaryOp::Mul => "engine.f64.mul",
        BinaryOp::Div => "engine.f64.div",
        BinaryOp::Min => "engine.f64.min",
        BinaryOp::Max => "engine.f64.max",
        BinaryOp::Lt => "engine.f64.lt",
        BinaryOp::Le => "engine.f64.le",
        BinaryOp::Gt => "engine.f64.gt",
        BinaryOp::Ge => "engine.f64.ge",
    }
}

fn unary_class_q(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Neg => "engine.q.neg",
        UnaryOp::Abs => "engine.q.abs",
        UnaryOp::Sqrt => "engine.q.sqrt",
    }
}

fn binary_class_q(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Add => "engine.q.add",
        BinaryOp::Sub => "engine.q.sub",
        BinaryOp::Mul => "engine.q.mul",
        BinaryOp::Div => "engine.q.div",
        BinaryOp::Min => "engine.q.min",
        BinaryOp::Max => "engine.q.max",
        BinaryOp::Lt => "engine.q.lt",
        BinaryOp::Le => "engine.q.le",
        BinaryOp::Gt => "engine.q.gt",
        BinaryOp::Ge => "engine.q.ge",
    }
}

/// Tally `elems` executions of every instruction of an f64 program.
pub(crate) fn tally_instrs(code: &[Instr], elems: u64) {
    if elems == 0 {
        return;
    }
    for instr in code {
        let class = match *instr {
            Instr::Const(_) => "engine.f64.const",
            Instr::Input { .. } => "engine.f64.input",
            Instr::Unary { op, .. } => unary_class_f64(op),
            Instr::Binary { op, .. } => binary_class_f64(op),
            Instr::Select { .. } => "engine.f64.select",
        };
        isl_telemetry::add(class, elems);
    }
}

/// Tally `elems` executions of every instruction of a quantised program.
pub(crate) fn tally_qinstrs(code: &[QInstr], elems: u64) {
    if elems == 0 {
        return;
    }
    for instr in code {
        let class = match *instr {
            QInstr::Const(_) => "engine.q.const",
            QInstr::Input { .. } => "engine.q.input",
            QInstr::Unary { op, .. } => unary_class_q(op),
            QInstr::Binary { op, .. } => binary_class_q(op),
            QInstr::Select { .. } => "engine.q.select",
        };
        isl_telemetry::add(class, elems);
    }
}
