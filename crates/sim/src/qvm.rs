//! The quantised (raw fixed-point word) execution engines.
//!
//! Mirrors [`crate::vm`] in the **integer domain**: state is held as raw
//! fixed-point words (`i64`), and every arithmetic instruction is one of
//! `isl_fpga::FixedFormat`'s saturating/truncating lane kernels
//! ([`FixedFormat::unary_span`] / [`FixedFormat::binary_span`]) — the same
//! single bit-true definition the co-simulation VM executes scalar-wise.
//! There is no per-op rounding hook anywhere in this module: rounding *is*
//! the arithmetic, fused at compile time by
//! [`crate::compile::QuantizedPattern`] / [`crate::compile::QuantizedCone`],
//! so the engines are branch-free over structure-of-arrays spans exactly
//! like their `f64` counterparts.
//!
//! Three engines, mirroring the `f64` trio:
//!
//! * [`step_quantized`] — whole-frame rect evaluation (interior spans +
//!   scalar border strips) of the **fused** multi-output program
//!   ([`crate::compile::QuantizedStep`]), so subexpressions shared between
//!   field updates are computed once per pixel, not once per field;
//! * [`tiled_level_quantized`] — the tiled cone-architecture level over
//!   ping/pong halo buffers;
//! * [`cone_level_quantized`] — cone-DAG tiles as SoA lanes with streaming
//!   output retirement (outputs scatter the moment their defining
//!   instruction executes, so the scratch tracks the live set, not the
//!   output count).
//!
//! Frames enter through [`WordSet::quantize`] (one `FixedFormat::quantize`
//! per sample — including the border constant, pre-quantised once per pass)
//! and leave through [`WordSet::dequantize`]; in between, *everything* is
//! integer. `f64` cannot round-trip raw words wider than 53 bits, which is
//! exactly why the state lives in words rather than floats.

use std::sync::Arc;

use isl_fpga::FixedFormat;
use isl_ir::{Expr, FieldId, Offset, ParamId};

use crate::border::BorderMode;
use crate::compile::{QInstr, QuantizedCone, QuantizedKernel, QuantizedPattern, QuantizedStep};
use crate::frame::{Frame, FrameSet};
use crate::parallel::for_each_task;
use crate::vm::{dyn_slot_map, split_bands, tile_banding, LANE_SCRATCH, SPAN};

// -- word-domain state ------------------------------------------------------

/// A frame set in the raw fixed-point word domain: one `i64` word per
/// sample, row-major, `Arc`-shared so static fields pass through levels
/// without copies and retiring buffers recycle exactly like [`FrameSet`].
#[derive(Debug, Clone)]
pub(crate) struct WordSet {
    width: usize,
    height: usize,
    frames: Vec<Arc<Vec<i64>>>,
}

impl WordSet {
    /// Load a `f64` frame set into `fmt`'s word domain (round-to-nearest
    /// with saturation per sample — the hardware's input conversion).
    pub(crate) fn quantize(init: &FrameSet, fmt: FixedFormat) -> Self {
        let frames = init
            .frames()
            .iter()
            .map(|f| {
                let mut w = vec![0i64; f.len()];
                fmt.quantize_span(f.as_slice(), &mut w);
                Arc::new(w)
            })
            .collect();
        WordSet {
            width: init.width(),
            height: init.height(),
            frames,
        }
    }

    /// Convert back to real units. Lossy above 53 significant bits — the
    /// reason the run itself stays in words.
    pub(crate) fn dequantize(&self, fmt: FixedFormat) -> FrameSet {
        FrameSet::from_frames(
            self.frames
                .iter()
                .map(|w| {
                    let mut f = vec![0.0; w.len()];
                    fmt.dequantize_span(w, &mut f);
                    Frame::from_vec(self.width, self.height, f)
                })
                .collect(),
        )
        .expect("shapes preserved")
    }

    /// Assemble from already-shared word buffers (the tree-walking
    /// references use this to pass static fields through unchanged).
    pub(crate) fn from_shared(width: usize, height: usize, frames: Vec<Arc<Vec<i64>>>) -> Self {
        debug_assert!(frames.iter().all(|f| f.len() == width * height));
        WordSet { width, height, frames }
    }

    pub(crate) fn width(&self) -> usize {
        self.width
    }

    pub(crate) fn height(&self) -> usize {
        self.height
    }

    /// The word buffer of field `i`.
    pub(crate) fn words(&self, i: usize) -> &[i64] {
        &self.frames[i]
    }

    /// The shared word buffer of field `i`.
    pub(crate) fn words_arc(&self, i: usize) -> Arc<Vec<i64>> {
        Arc::clone(&self.frames[i])
    }

    /// Number of fields.
    pub(crate) fn len(&self) -> usize {
        self.frames.len()
    }

    /// Border-resolved read of field `i` at `(x, y)` with the pre-quantised
    /// border constant `border_raw`.
    pub(crate) fn sample(&self, i: usize, x: i64, y: i64, border: BorderMode, border_raw: i64) -> i64 {
        WordView::frame(&self.frames[i], self.width).sample(
            x,
            y,
            self.width as i64,
            self.height as i64,
            border,
            border_raw,
        )
    }
}

/// The quantised border constant of a pass: [`BorderMode::Constant`] values
/// enter the word domain once, not per read.
pub(crate) fn border_raw(border: BorderMode, fmt: FixedFormat) -> i64 {
    border.constant_value().map_or(0, |c| fmt.quantize(c))
}

// -- source views -----------------------------------------------------------

/// [`crate::vm::SrcView`]'s integer twin: a row-major word buffer whose
/// first sample sits at frame coordinate `(ox, oy)`.
#[derive(Clone, Copy)]
struct WordView<'a> {
    data: &'a [i64],
    ox: i64,
    oy: i64,
    stride: usize,
}

impl<'a> WordView<'a> {
    fn frame(data: &'a [i64], stride: usize) -> Self {
        WordView { data, ox: 0, oy: 0, stride }
    }

    fn buffer(data: &'a [i64], ox: i64, oy: i64, stride: usize) -> Self {
        WordView { data, ox, oy, stride }
    }

    #[inline]
    fn get(&self, x: i64, y: i64) -> i64 {
        let idx = (y - self.oy) as usize * self.stride + (x - self.ox) as usize;
        self.data[idx]
    }

    fn sample(&self, x: i64, y: i64, w: i64, h: i64, border: BorderMode, border_raw: i64) -> i64 {
        match (border.resolve(x, w), border.resolve(y, h)) {
            (Some(rx), Some(ry)) => self.get(rx, ry),
            _ => border_raw,
        }
    }
}

/// Reusable per-worker scratch of the quantised rect evaluator.
#[derive(Default)]
struct ScratchQ {
    lanes: Vec<i64>,
    regs: Vec<i64>,
}

impl ScratchQ {
    fn ensure(&mut self, instrs: usize) {
        self.lanes.resize(instrs.max(1) * SPAN, 0);
        self.regs.resize(instrs.max(1), 0);
    }
}

/// The destination of a quantised rect evaluation.
struct RectOutQ<'a> {
    data: &'a mut [i64],
    ox: i64,
    oy: i64,
    stride: usize,
}

// -- whole-frame stepping ---------------------------------------------------

/// One quantised whole-frame step — the engine behind
/// [`crate::Simulator::run_quantized`]. The rounding rule lives inside the
/// program (`qp`), so a mismatched quantiser between compile and run is
/// unrepresentable.
///
/// Evaluates the pattern's **fused** multi-output program
/// ([`QuantizedPattern::fused`]) rather than one kernel per field: all
/// dynamic fields of a row band are produced in a single pass over the
/// instruction stream, with cross-field common subexpressions (gradients,
/// norms, parameter quotients) computed once per pixel.
pub(crate) fn step_quantized(
    qp: &QuantizedPattern,
    state: &WordSet,
    border: BorderMode,
    threads: usize,
    recycle: Option<WordSet>,
) -> WordSet {
    let _span = isl_telemetry::span("engine", "frame step q");
    let (w, h) = (state.width(), state.height());
    let braw = border_raw(border, qp.format());
    let step = qp.fused();
    let dyn_fields: Vec<usize> = step.outputs().iter().map(|&(f, _)| f as usize).collect();
    let t = tile_banding(h, 1, threads, w * h * step.len());
    let srcs: Vec<WordView<'_>> = state.frames.iter().map(|f| WordView::frame(f, w)).collect();
    banded_level_q(state, &dyn_fields, 1, t, recycle, |row0, slices| {
        let rows = slices[0].len() / w;
        let mut scratch = ScratchQ::default();
        eval_rect_step_q(
            step,
            &srcs,
            (w, h),
            border,
            braw,
            (row0 as i64, (row0 + rows) as i64 - 1),
            slices,
            row0 as i64,
            &mut scratch,
        );
    })
}

/// Reclaim uniquely-owned word buffers of a retiring set (double buffering).
fn reclaim(recycle: Option<WordSet>, w: usize, h: usize) -> Vec<Option<Vec<i64>>> {
    match recycle {
        None => Vec::new(),
        Some(ws) => ws
            .frames
            .into_iter()
            .map(|arc| Arc::try_unwrap(arc).ok().filter(|v| v.len() == w * h))
            .collect(),
    }
}

// -- rect evaluation --------------------------------------------------------

/// Integer twin of [`crate::vm::eval_rect`]: interior spans through the
/// format's lane kernels, border pixels scalar through `apply_unary` /
/// `apply_binary` — bit-identical by construction (the lane kernels are
/// property-tested against the scalar ops element-wise).
#[allow(clippy::too_many_arguments)]
fn eval_rect_q(
    kernel: &QuantizedKernel,
    srcs: &[WordView<'_>],
    (w, h): (usize, usize),
    border: BorderMode,
    braw: i64,
    (rx0, ry0, rx1, ry1): (i64, i64, i64, i64),
    dst: &mut RectOutQ<'_>,
    scratch: &mut ScratchQ,
) {
    if isl_telemetry::enabled() {
        crate::metrics::tally_qinstrs(&kernel.code, ((rx1 - rx0 + 1) * (ry1 - ry0 + 1)) as u64);
    }
    let fmt = kernel.format();
    let halo = kernel.halo();
    let xlo = rx0.max(i64::from(halo.left));
    let xhi = rx1.min(w as i64 - 1 - i64::from(halo.right));
    let ylo = ry0.max(i64::from(halo.up));
    let yhi = ry1.min(h as i64 - 1 - i64::from(halo.down));
    scratch.ensure(kernel.len());
    let res = kernel.result as usize;
    for y in ry0..=ry1 {
        let row = ((y - dst.oy) as usize) * dst.stride;
        let at = |x: i64| row + (x - dst.ox) as usize;
        if (ylo..=yhi).contains(&y) && xlo <= xhi {
            for x in rx0..xlo {
                eval_pixel_q(&kernel.code, fmt, srcs, border, braw, (w, h), x, y, &mut scratch.regs);
                dst.data[at(x)] = scratch.regs[res];
            }
            let mut x0 = xlo;
            while x0 <= xhi {
                let len = (xhi - x0 + 1).min(SPAN as i64) as usize;
                eval_span_q(&kernel.code, fmt, srcs, y, x0, len, &mut scratch.lanes);
                dst.data[at(x0)..at(x0) + len]
                    .copy_from_slice(&scratch.lanes[res * len..(res + 1) * len]);
                x0 += len as i64;
            }
            for x in (xhi + 1)..=rx1 {
                eval_pixel_q(&kernel.code, fmt, srcs, border, braw, (w, h), x, y, &mut scratch.regs);
                dst.data[at(x)] = scratch.regs[res];
            }
        } else {
            for x in rx0..=rx1 {
                eval_pixel_q(&kernel.code, fmt, srcs, border, braw, (w, h), x, y, &mut scratch.regs);
                dst.data[at(x)] = scratch.regs[res];
            }
        }
    }
}

/// Multi-output twin of [`eval_rect_q`] for the fused whole-frame program:
/// one instruction-stream pass per span writes **every** dynamic field's
/// band. Always covers full rows (`x ∈ [0, w)`) of a band anchored at row
/// `oy`; `outs[k]` is the band of the `k`-th entry of `step.outputs()`.
#[allow(clippy::too_many_arguments)]
fn eval_rect_step_q(
    step: &QuantizedStep,
    srcs: &[WordView<'_>],
    (w, h): (usize, usize),
    border: BorderMode,
    braw: i64,
    (ry0, ry1): (i64, i64),
    outs: &mut [&mut [i64]],
    oy: i64,
    scratch: &mut ScratchQ,
) {
    if isl_telemetry::enabled() {
        crate::metrics::tally_qinstrs(step.code(), (w as i64 * (ry1 - ry0 + 1)) as u64);
    }
    let fmt = step.format();
    let halo = step.halo();
    let xlo = i64::from(halo.left);
    let xhi = w as i64 - 1 - i64::from(halo.right);
    let ylo = ry0.max(i64::from(halo.up));
    let yhi = ry1.min(h as i64 - 1 - i64::from(halo.down));
    scratch.ensure(step.len());
    for y in ry0..=ry1 {
        let row = ((y - oy) as usize) * w;
        if (ylo..=yhi).contains(&y) && xlo <= xhi {
            for x in 0..xlo {
                pixel_step_q(step, fmt, srcs, border, braw, (w, h), x, y, row, outs, scratch);
            }
            let mut x0 = xlo;
            while x0 <= xhi {
                let len = (xhi - x0 + 1).min(SPAN as i64) as usize;
                eval_span_q(step.code(), fmt, srcs, y, x0, len, &mut scratch.lanes);
                let at = row + x0 as usize;
                for (out, &(_, res)) in outs.iter_mut().zip(step.outputs()) {
                    let res = res as usize;
                    out[at..at + len].copy_from_slice(&scratch.lanes[res * len..(res + 1) * len]);
                }
                x0 += len as i64;
            }
            for x in (xhi + 1)..w as i64 {
                pixel_step_q(step, fmt, srcs, border, braw, (w, h), x, y, row, outs, scratch);
            }
        } else {
            for x in 0..w as i64 {
                pixel_step_q(step, fmt, srcs, border, braw, (w, h), x, y, row, outs, scratch);
            }
        }
    }
}

/// One border pixel of the fused program: evaluate all registers once,
/// scatter every output field's result register.
#[allow(clippy::too_many_arguments)]
fn pixel_step_q(
    step: &QuantizedStep,
    fmt: FixedFormat,
    srcs: &[WordView<'_>],
    border: BorderMode,
    braw: i64,
    (w, h): (usize, usize),
    x: i64,
    y: i64,
    row: usize,
    outs: &mut [&mut [i64]],
    scratch: &mut ScratchQ,
) {
    eval_pixel_q(step.code(), fmt, srcs, border, braw, (w, h), x, y, &mut scratch.regs);
    for (out, &(_, res)) in outs.iter_mut().zip(step.outputs()) {
        out[row + x as usize] = scratch.regs[res as usize];
    }
}

/// Evaluate a quantised program (single- or multi-output) over the
/// statically in-bounds span `[x0, x0 + len)` of row `y`, one format lane
/// kernel per instruction; callers read result registers out of `scratch`.
fn eval_span_q(
    code: &[QInstr],
    fmt: FixedFormat,
    srcs: &[WordView<'_>],
    y: i64,
    x0: i64,
    len: usize,
    scratch: &mut [i64],
) {
    for (i, instr) in code.iter().enumerate() {
        let (prev, cur) = scratch.split_at_mut(i * len);
        let dst = &mut cur[..len];
        let lane = |r: u32| &prev[r as usize * len..(r as usize + 1) * len];
        match *instr {
            QInstr::Const(v) => dst.fill(v),
            QInstr::Input { field, dx, dy } => {
                let s = &srcs[field as usize];
                let base = (y + i64::from(dy) - s.oy) * s.stride as i64
                    + (x0 + i64::from(dx) - s.ox);
                let base = usize::try_from(base).expect("interior read in bounds");
                dst.copy_from_slice(&s.data[base..base + len]);
            }
            QInstr::Unary { op, a } => fmt.unary_span(op, lane(a), dst),
            QInstr::Binary { op, a, b } => {
                // Kernel registers are instruction indices, so a constant
                // right operand is visible here — power-of-two multiplies
                // and divides drop to shift kernels, bit-identically.
                let done = matches!(code[b as usize], QInstr::Const(c)
                    if fmt.binary_span_const(op, lane(a), c, dst));
                if !done {
                    fmt.binary_span(op, lane(a), lane(b), dst);
                }
            }
            QInstr::Select { c, t, e } => {
                let (c, t, e) = (lane(c), lane(t), lane(e));
                for k in 0..len {
                    dst[k] = if c[k] != 0 { t[k] } else { e[k] };
                }
            }
        }
    }
}

/// Scalar per-pixel evaluation with full border resolution; callers read
/// result registers out of `regs`.
#[allow(clippy::too_many_arguments)]
fn eval_pixel_q(
    code: &[QInstr],
    fmt: FixedFormat,
    srcs: &[WordView<'_>],
    border: BorderMode,
    braw: i64,
    (w, h): (usize, usize),
    x: i64,
    y: i64,
    regs: &mut [i64],
) {
    for (i, instr) in code.iter().enumerate() {
        regs[i] = match *instr {
            QInstr::Const(c) => c,
            QInstr::Input { field, dx, dy } => srcs[field as usize].sample(
                x + i64::from(dx),
                y + i64::from(dy),
                w as i64,
                h as i64,
                border,
                braw,
            ),
            QInstr::Unary { op, a } => fmt.apply_unary(op, regs[a as usize]),
            QInstr::Binary { op, a, b } => {
                fmt.apply_binary(op, regs[a as usize], regs[b as usize])
            }
            QInstr::Select { c, t, e } => {
                if regs[c as usize] != 0 {
                    regs[t as usize]
                } else {
                    regs[e as usize]
                }
            }
        };
    }
}

// -- tiled (cone-architecture) level execution ------------------------------

/// Shared frame of the quantised tile-banded level executors — the integer
/// twin of `vm::banded_level`.
fn banded_level_q<F>(
    state: &WordSet,
    dyn_fields: &[usize],
    th: usize,
    t: usize,
    recycle: Option<WordSet>,
    band_fn: F,
) -> WordSet
where
    F: Fn(usize, &mut [&mut [i64]]) + Sync,
{
    let (w, h) = (state.width(), state.height());
    let mut recycled = reclaim(recycle, w, h);
    let mut outs: Vec<Vec<i64>> = dyn_fields
        .iter()
        .map(|&i| {
            recycled
                .get_mut(i)
                .and_then(Option::take)
                .unwrap_or_else(|| vec![0i64; w * h])
        })
        .collect();
    let rows_per_band = h.div_ceil(th).div_ceil(t) * th;
    let bands = split_bands(outs.iter_mut().map(Vec::as_mut_slice).collect(), w, rows_per_band);
    for_each_task(bands, t, |(row0, mut slices)| band_fn(row0, &mut slices));
    let mut next: Vec<Arc<Vec<i64>>> = state.frames.to_vec();
    for (&fi, data) in dyn_fields.iter().zip(outs) {
        next[fi] = Arc::new(data);
    }
    WordSet {
        width: w,
        height: h,
        frames: next,
    }
}

/// One quantised tiled level — the engine behind
/// [`crate::Simulator::run_tiled_quantized`]. Integer twin of
/// [`crate::vm::tiled_level_compiled`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn tiled_level_quantized(
    qp: &QuantizedPattern,
    state: &WordSet,
    border: BorderMode,
    threads: usize,
    (tw, th): (i64, i64),
    d: u32,
    r: i64,
    recycle: Option<WordSet>,
) -> WordSet {
    let _span = isl_telemetry::span("engine", "tiled level q");
    let (w, h) = (state.width(), state.height());
    let braw = border_raw(border, qp.format());
    let (dyn_fields, dyn_slot) = dyn_slot_map(
        qp.field_count(),
        (0..qp.field_count()).filter(|&i| qp.kernel(i).is_some()),
    );
    let work = w * h * qp.total_instructions() * d as usize;
    let t = tile_banding(h, th as usize, threads, work);
    banded_level_q(state, &dyn_fields, th as usize, t, recycle, |row0, slices| {
        let max_halo = r * i64::from(d.saturating_sub(1));
        let cap = ((tw + 2 * max_halo) * (th + 2 * max_halo)) as usize;
        let mut ping: Vec<Vec<i64>> = dyn_fields.iter().map(|_| vec![0i64; cap]).collect();
        let mut pong = ping.clone();
        let mut scratch = ScratchQ::default();
        let rows = slices[0].len() / w;
        let mut ty = row0 as i64;
        while ty < (row0 + rows) as i64 {
            let mut tx = 0;
            while tx < w as i64 {
                tile_quantized(
                    qp,
                    &dyn_fields,
                    &dyn_slot,
                    state,
                    border,
                    braw,
                    (tx, ty),
                    (tw, th),
                    (d, r),
                    (&mut ping, &mut pong),
                    &mut scratch,
                    (slices, row0),
                );
                tx += tw;
            }
            ty += th;
        }
    })
}

/// Compute one tile through `d` quantised levels over ping/pong word halo
/// buffers; the top level writes straight into the caller's output band.
#[allow(clippy::too_many_arguments)]
fn tile_quantized(
    qp: &QuantizedPattern,
    dyn_fields: &[usize],
    dyn_slot: &[Option<usize>],
    state: &WordSet,
    border: BorderMode,
    braw: i64,
    (tx, ty): (i64, i64),
    (tw, th): (i64, i64),
    (d, r): (u32, i64),
    (ping, pong): (&mut [Vec<i64>], &mut [Vec<i64>]),
    scratch: &mut ScratchQ,
    (slices, row0): (&mut [&mut [i64]], usize),
) {
    let (w, h) = (state.width(), state.height());
    let (wi, hi) = (w as i64, h as i64);
    let rect = |l: u32| -> (i64, i64, i64, i64) {
        let halo = r * i64::from(d - l);
        (
            (tx - halo).max(0),
            (ty - halo).max(0),
            (tx + tw - 1 + halo).min(wi - 1),
            (ty + th - 1 + halo).min(hi - 1),
        )
    };
    let mut prev_rect = rect(0);
    for l in 1..=d {
        let (nx0, ny0, nx1, ny1) = rect(l);
        let nbw = (nx1 - nx0 + 1) as usize;
        let (px0, py0, px1, _py1) = prev_rect;
        let pbw = (px1 - px0 + 1) as usize;
        for (di, &fi) in dyn_fields.iter().enumerate() {
            let kernel = qp.kernel(fi).expect("dynamic field has a kernel");
            let srcs: Vec<WordView<'_>> = state
                .frames
                .iter()
                .enumerate()
                .map(|(f, frame)| match dyn_slot[f] {
                    Some(ds) if l > 1 => WordView::buffer(&ping[ds], px0, py0, pbw),
                    _ => WordView::frame(frame, w),
                })
                .collect();
            if l == d {
                let mut dst = RectOutQ {
                    data: &mut *slices[di],
                    ox: 0,
                    oy: row0 as i64,
                    stride: w,
                };
                eval_rect_q(kernel, &srcs, (w, h), border, braw, (nx0, ny0, nx1, ny1), &mut dst, scratch);
            } else {
                let mut dst = RectOutQ {
                    data: &mut pong[di],
                    ox: nx0,
                    oy: ny0,
                    stride: nbw,
                };
                eval_rect_q(kernel, &srcs, (w, h), border, braw, (nx0, ny0, nx1, ny1), &mut dst, scratch);
            }
        }
        if l < d {
            for (a, b) in ping.iter_mut().zip(pong.iter_mut()) {
                std::mem::swap(a, b);
            }
            prev_rect = (nx0, ny0, nx1, ny1);
        }
    }
}

// -- cone-DAG level execution -----------------------------------------------

/// One quantised cone-DAG level — the engine behind
/// [`crate::Simulator::run_cone_dag_quantized`]. Integer twin of
/// [`crate::vm::cone_level_compiled`], including the streaming output
/// retirement.
pub(crate) fn cone_level_quantized(
    qc: &QuantizedCone,
    state: &WordSet,
    border: BorderMode,
    threads: usize,
    (tw, th): (i64, i64),
    recycle: Option<WordSet>,
) -> WordSet {
    let _span = isl_telemetry::span("engine", "cone level q");
    let (w, h) = (state.width(), state.height());
    let braw = border_raw(border, qc.format());
    let (dyn_fields, dyn_slot) =
        dyn_slot_map(state.frames.len(), qc.outputs.iter().map(|s| s.field as usize));
    let tiles_x = w.div_ceil(tw as usize);
    let work = tiles_x * h.div_ceil(th as usize) * qc.len();
    let t = tile_banding(h, th as usize, threads, work);
    let reach = qc.reach();
    let lanes_cap = (LANE_SCRATCH / qc.slots().max(1)).clamp(1, 512);
    banded_level_q(state, &dyn_fields, th as usize, t, recycle, |row0, slices| {
        let rows = slices[0].len() / w;
        let mut interior: Vec<(i64, i64)> = Vec::new();
        let mut edge: Vec<(i64, i64)> = Vec::new();
        let mut ty = row0 as i64;
        while ty < (row0 + rows) as i64 {
            let y_in =
                ty + i64::from(reach.min_dy) >= 0 && ty + i64::from(reach.max_dy) < h as i64;
            for k in 0..tiles_x as i64 {
                let tx = k * tw;
                if y_in
                    && tx + i64::from(reach.min_dx) >= 0
                    && tx + i64::from(reach.max_dx) < w as i64
                {
                    interior.push((tx, ty));
                } else {
                    edge.push((tx, ty));
                }
            }
            ty += th;
        }
        let mut scratch = vec![0i64; qc.slots() * lanes_cap];
        for chunk in interior.chunks(lanes_cap) {
            eval_cone_lanes_q(qc, state, border, braw, chunk, true, &dyn_slot, &mut scratch, (slices, row0));
        }
        for chunk in edge.chunks(lanes_cap) {
            eval_cone_lanes_q(qc, state, border, braw, chunk, false, &dyn_slot, &mut scratch, (slices, row0));
        }
    })
}

/// Evaluate the quantised cone program for every tile of `chunk` at once —
/// integer twin of `vm::eval_cone_lanes`, with the same streaming output
/// retirement (outputs scatter at their capture instruction, before their
/// slot can be reused).
#[allow(clippy::too_many_arguments)]
fn eval_cone_lanes_q(
    qc: &QuantizedCone,
    state: &WordSet,
    border: BorderMode,
    braw: i64,
    chunk: &[(i64, i64)],
    interior: bool,
    dyn_slot: &[Option<usize>],
    scratch: &mut [i64],
    (slices, row0): (&mut [&mut [i64]], usize),
) {
    let (w, h) = (state.width(), state.height());
    let fmt = qc.format();
    let n = chunk.len();
    if isl_telemetry::enabled() {
        crate::metrics::tally_qinstrs(&qc.code, n as u64);
    }
    let read_origin: Vec<i64> = chunk.iter().map(|&(tx, ty)| ty * w as i64 + tx).collect();
    let write_origin: Vec<i64> = chunk
        .iter()
        .map(|&(tx, ty)| (ty - row0 as i64) * w as i64 + tx)
        .collect();
    let range = |s: u32| s as usize * n..s as usize * n + n;
    let mut next_retire = 0usize;
    for (i, instr) in qc.code.iter().enumerate() {
        let d = qc.dst[i];
        match *instr {
            QInstr::Const(v) => scratch[range(d)].fill(v),
            QInstr::Input { field, dx, dy } => {
                let dst = &mut scratch[range(d)];
                if interior {
                    let src = state.words(field as usize);
                    let off = i64::from(dy) * w as i64 + i64::from(dx);
                    for (d, &o) in dst.iter_mut().zip(&read_origin) {
                        *d = src[(o + off) as usize];
                    }
                } else {
                    let f = WordView::frame(state.words(field as usize), w);
                    for (d, &(tx, ty)) in dst.iter_mut().zip(chunk) {
                        *d = f.sample(
                            tx + i64::from(dx),
                            ty + i64::from(dy),
                            w as i64,
                            h as i64,
                            border,
                            braw,
                        );
                    }
                }
            }
            QInstr::Unary { op, a } => {
                let [dst, a] = scratch
                    .get_disjoint_mut([range(d), range(a)])
                    .expect("dst slot distinct from operands");
                fmt.unary_span(op, a, dst);
            }
            QInstr::Binary { op, a, b } => {
                if a == b {
                    let [dst, a] = scratch
                        .get_disjoint_mut([range(d), range(a)])
                        .expect("dst slot distinct from operands");
                    let a = &*a;
                    fmt.binary_span(op, a, a, dst);
                } else {
                    let [dst, a, b] = scratch
                        .get_disjoint_mut([range(d), range(a), range(b)])
                        .expect("dst slot distinct from operands");
                    fmt.binary_span(op, a, b, dst);
                }
            }
            QInstr::Select { c, t, e } => {
                let (c0, t0, e0, d0) =
                    (c as usize * n, t as usize * n, e as usize * n, d as usize * n);
                for k in 0..n {
                    scratch[d0 + k] = if scratch[c0 + k] != 0 {
                        scratch[t0 + k]
                    } else {
                        scratch[e0 + k]
                    };
                }
            }
        }
        while next_retire < qc.retire.len()
            && qc.capture[qc.retire[next_retire] as usize] as usize == i
        {
            let slot = &qc.outputs[qc.retire[next_retire] as usize];
            next_retire += 1;
            let di = dyn_slot[slot.field as usize].expect("output field is dynamic");
            let src = &scratch[range(slot.reg)];
            let off = i64::from(slot.py) * w as i64 + i64::from(slot.px);
            if interior {
                for (&v, &o) in src.iter().zip(&write_origin) {
                    slices[di][(o + off) as usize] = v;
                }
            } else {
                for (k, &(tx, ty)) in chunk.iter().enumerate() {
                    let (ax, ay) = (tx + i64::from(slot.px), ty + i64::from(slot.py));
                    if ax < w as i64 && ay < h as i64 {
                        slices[di][(ay as usize - row0) * w + ax as usize] = src[k];
                    }
                }
            }
        }
    }
    debug_assert_eq!(next_retire, qc.outputs.len(), "every output must retire");
}

// -- tree-walking raw reference ---------------------------------------------

/// Evaluate an update expression in the raw word domain — the tree-walking
/// golden reference of the quantised engines. Every node is one
/// `FixedFormat` operation: leaves quantise (`Const` / `Param`) or read
/// already-quantised words (`Input`); operators are the saturating
/// fixed-point datapath; a select forwards one branch's word unchanged.
pub(crate) fn eval_expr_raw<R, P>(e: &Expr, read: &R, param: &P, fmt: FixedFormat) -> i64
where
    R: Fn(FieldId, Offset) -> i64,
    P: Fn(ParamId) -> f64,
{
    match e {
        Expr::Input { field, offset } => read(*field, *offset),
        Expr::Const(c) => fmt.quantize(*c),
        Expr::Param(p) => fmt.quantize(param(*p)),
        Expr::Unary { op, arg } => fmt.apply_unary(*op, eval_expr_raw(arg, read, param, fmt)),
        Expr::Binary { op, lhs, rhs } => fmt.apply_binary(
            *op,
            eval_expr_raw(lhs, read, param, fmt),
            eval_expr_raw(rhs, read, param, fmt),
        ),
        Expr::Select { cond, then_, else_ } => {
            if eval_expr_raw(cond, read, param, fmt) != 0 {
                eval_expr_raw(then_, read, param, fmt)
            } else {
                eval_expr_raw(else_, read, param, fmt)
            }
        }
    }
}
