//! `isl-served` — the HLS service's command line.
//!
//! ```text
//! isl-served serve [--addr 127.0.0.1:7878] [--state-dir DIR]
//!                  [--timeout-ms 120000] [--batch-ms 5] [--threads N]
//! isl-served call  --addr HOST:PORT --op OP [--algo NAME] [--device NAME]
//!                  [--width W] [--height H] [--seed S]
//!                  [--max-side N] [--max-depth N] [--max-cores N]
//!                  [--window N] [--depth N] [--cores N]
//!                  [--max-abs X] [--max-width N]
//! ```
//!
//! * `serve` — run the service in the foreground until a client sends the
//!   `shutdown` op (or the process is killed; persistent stores are
//!   checkpointed after every batch, so even `kill -9` answers warm after
//!   a restart).
//! * `call` — one request against a running service; prints the response
//!   line's `result` JSON to stdout and exits non-zero on any error. Ops:
//!   `ping`, `stats`, `explore`, `certify`, `search_format`, `shutdown`.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Duration;

use isl_serve::protocol::value_to_json;
use isl_serve::{Client, Op, Request, ServeConfig, Server};

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_u64(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    match arg_value(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad {name} `{v}`: {e}")),
    }
}

fn parse_f64(args: &[String], name: &str, default: f64) -> Result<f64, String> {
    match arg_value(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad {name} `{v}`: {e}")),
    }
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let cfg = ServeConfig {
        addr: arg_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into()),
        state_dir: arg_value(args, "--state-dir").map(Into::into),
        request_timeout: Duration::from_millis(parse_u64(args, "--timeout-ms", 120_000)?),
        batch_window: Duration::from_millis(parse_u64(args, "--batch-ms", 5)?),
        threads: parse_u64(args, "--threads", 0)? as usize,
    };
    let state = cfg
        .state_dir
        .as_ref()
        .map_or("memory only".to_string(), |d| d.display().to_string());
    let handle = Server::start(cfg).map_err(|e| format!("bind: {e}"))?;
    println!("isl-served listening on {} (state: {state})", handle.addr());
    handle.join(); // until a client sends the shutdown op
    println!("isl-served: drained and flushed, bye");
    Ok(ExitCode::SUCCESS)
}

fn cmd_call(args: &[String]) -> Result<ExitCode, String> {
    let addr = arg_value(args, "--addr").ok_or("call needs --addr HOST:PORT")?;
    let op = arg_value(args, "--op").ok_or("call needs --op")?;
    let op = Op::parse(&op).ok_or_else(|| format!("unknown op `{op}`"))?;
    let d = Request::default();
    let request = Request {
        id: 0, // assigned by the client
        op,
        algo: arg_value(args, "--algo").unwrap_or(d.algo),
        device: arg_value(args, "--device").unwrap_or(d.device),
        width: parse_u64(args, "--width", u64::from(d.width))? as u32,
        height: parse_u64(args, "--height", u64::from(d.height))? as u32,
        seed: parse_u64(args, "--seed", d.seed)?,
        max_side: parse_u64(args, "--max-side", u64::from(d.max_side))? as u32,
        max_depth: parse_u64(args, "--max-depth", u64::from(d.max_depth))? as u32,
        max_cores: parse_u64(args, "--max-cores", u64::from(d.max_cores))? as u32,
        window: parse_u64(args, "--window", u64::from(d.window))? as u32,
        depth: parse_u64(args, "--depth", u64::from(d.depth))? as u32,
        cores: parse_u64(args, "--cores", u64::from(d.cores))? as u32,
        max_abs: parse_f64(args, "--max-abs", d.max_abs)?,
        rms: parse_f64(args, "--rms", d.rms)?,
        max_width: parse_u64(args, "--max-width", u64::from(d.max_width))? as u32,
    };
    let timeout = Duration::from_millis(parse_u64(args, "--timeout-ms", 300_000)?);
    let mut client = Client::connect(&addr)
        .map_err(|e| format!("connect {addr}: {e}"))?
        .with_timeout(timeout)
        .map_err(|e| format!("timeout: {e}"))?;
    let value = client.request(request).map_err(|e| e.to_string())?;
    println!("{}", value_to_json(&value));
    Ok(ExitCode::SUCCESS)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  isl-served serve [--addr A] [--state-dir D] [--timeout-ms N] [--batch-ms N] [--threads N]\n  isl-served call --addr A --op OP [request flags]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("call") => cmd_call(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("isl-served: {e}");
            ExitCode::FAILURE
        }
    }
}
