//! The line-oriented JSON wire protocol of `isl-served`.
//!
//! One request per line, one response per line, in order. Requests are
//! JSON objects with an `op` discriminant plus op-specific fields (all
//! optional — [`Request::default`] supplies the defaults); responses are
//! `{"id": …, "ok": true, "result": {…}}` or
//! `{"id": …, "ok": false, "error": "…"}`. Both directions reuse the
//! in-repo JSON support from `isl-telemetry` — no external dependencies.
//!
//! ```text
//! → {"op":"explore","id":1,"algo":"igf","width":64,"height":48}
//! ← {"id":1,"ok":true,"result":{"points":12,"pareto":3,"fastest":{…}}}
//! ```

use std::fmt::Write as _;

use isl_telemetry::json::{escape_into, parse, Value};

/// The operations the service answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe; echoes the id.
    Ping,
    /// Per-algorithm [`isl_hls::StoreStats`] snapshot (the warm-restart
    /// evidence: a warm service answers with zero build misses).
    Stats,
    /// Design-space exploration (stage 4) of one built-in algorithm.
    Explore,
    /// Architecture certification (stage 6) of one explored instance.
    Certify,
    /// Precision format search (stage 7) under a max-abs error budget.
    SearchFormat,
    /// Graceful shutdown: drain in-flight requests, flush every
    /// persistent store, stop accepting.
    Shutdown,
}

impl Op {
    /// Wire name of the op.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::Explore => "explore",
            Op::Certify => "certify",
            Op::SearchFormat => "search_format",
            Op::Shutdown => "shutdown",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "ping" => Op::Ping,
            "stats" => Op::Stats,
            "explore" => Op::Explore,
            "certify" => Op::Certify,
            "search_format" => Op::SearchFormat,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }
}

/// One decoded request line. Fields not meaningful for the op are carried
/// at their defaults and ignored by the service.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// Built-in algorithm name (`isl_algorithms::all`).
    pub algo: String,
    /// Target device name: `virtex6`, `virtex2pro` or `small`.
    pub device: String,
    /// Frame width of the workload / init frames.
    pub width: u32,
    /// Frame height of the workload / init frames.
    pub height: u32,
    /// Seed of the deterministic init frames (certify / search).
    pub seed: u64,
    /// Largest window side of the explored design space.
    pub max_side: u32,
    /// Largest cone depth of the explored design space.
    pub max_depth: u32,
    /// Largest core count of the explored design space.
    pub max_cores: u32,
    /// Window side of the certified instance (square windows).
    pub window: u32,
    /// Cone depth of the certified instance.
    pub depth: u32,
    /// Core count of the certified instance.
    pub cores: u32,
    /// Max-abs error bound of the format-search budget.
    pub max_abs: f64,
    /// RMS error bound of the budget (`inf` = unbounded).
    pub rms: f64,
    /// Widest word the format search may probe.
    pub max_width: u32,
}

impl Default for Request {
    fn default() -> Self {
        Request {
            id: 0,
            op: Op::Ping,
            algo: "igf".into(),
            device: "virtex6".into(),
            width: 48,
            height: 32,
            seed: 42,
            max_side: 4,
            max_depth: 2,
            max_cores: 4,
            window: 2,
            depth: 1,
            cores: 1,
            max_abs: 1e-3,
            rms: f64::INFINITY,
            max_width: 54,
        }
    }
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_num)
}

fn num_u32(v: &Value, key: &str, default: u32) -> u32 {
    num(v, key).map_or(default, |n| n as u32)
}

impl Request {
    /// Decode one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON, a missing/unknown `op`,
    /// or a non-object document.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let v = parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        if !matches!(v, Value::Obj(_)) {
            return Err("request must be a JSON object".into());
        }
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing \"op\"")?;
        let op = Op::parse(op).ok_or_else(|| format!("unknown op {op:?}"))?;
        let d = Request::default();
        Ok(Request {
            id: num(&v, "id").map_or(0, |n| n as u64),
            op,
            algo: v
                .get("algo")
                .and_then(Value::as_str)
                .unwrap_or(&d.algo)
                .to_string(),
            device: v
                .get("device")
                .and_then(Value::as_str)
                .unwrap_or(&d.device)
                .to_string(),
            width: num_u32(&v, "width", d.width).max(4),
            height: num_u32(&v, "height", d.height).max(4),
            seed: num(&v, "seed").map_or(d.seed, |n| n as u64),
            max_side: num_u32(&v, "max_side", d.max_side).max(1),
            max_depth: num_u32(&v, "max_depth", d.max_depth).max(1),
            max_cores: num_u32(&v, "max_cores", d.max_cores).max(1),
            window: num_u32(&v, "window", d.window).max(1),
            depth: num_u32(&v, "depth", d.depth).max(1),
            cores: num_u32(&v, "cores", d.cores).max(1),
            max_abs: num(&v, "max_abs").unwrap_or(d.max_abs),
            rms: num(&v, "rms").unwrap_or(d.rms),
            max_width: num_u32(&v, "max_width", d.max_width),
        })
    }

    /// Encode as one request line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(s, "{{\"op\":\"{}\",\"id\":{}", self.op.as_str(), self.id);
        if self.op != Op::Ping && self.op != Op::Shutdown {
            s.push_str(",\"algo\":");
            escape_into(&mut s, &self.algo);
        }
        match self.op {
            Op::Ping | Op::Stats | Op::Shutdown => {}
            Op::Explore => {
                let _ = write!(
                    s,
                    ",\"device\":{},\"width\":{},\"height\":{},\"max_side\":{},\"max_depth\":{},\"max_cores\":{}",
                    isl_telemetry::json::escape(&self.device),
                    self.width, self.height, self.max_side, self.max_depth, self.max_cores
                );
            }
            Op::Certify => {
                let _ = write!(
                    s,
                    ",\"width\":{},\"height\":{},\"seed\":{},\"window\":{},\"depth\":{},\"cores\":{}",
                    self.width, self.height, self.seed, self.window, self.depth, self.cores
                );
            }
            Op::SearchFormat => {
                let _ = write!(
                    s,
                    ",\"device\":{},\"width\":{},\"height\":{},\"seed\":{},\"window\":{},\"depth\":{},\"cores\":{},\"max_abs\":{}",
                    isl_telemetry::json::escape(&self.device),
                    self.width, self.height, self.seed,
                    self.window, self.depth, self.cores, self.max_abs
                );
                if self.rms.is_finite() {
                    let _ = write!(s, ",\"rms\":{}", self.rms);
                }
                let _ = write!(s, ",\"max_width\":{}", self.max_width);
            }
        }
        s.push('}');
        s
    }
}

/// Re-serialise a parsed [`Value`] as JSON (object keys sorted — the
/// parser holds objects in a `BTreeMap`). Non-finite numbers become
/// `null`, keeping the output parseable.
pub fn value_to_json(v: &Value) -> String {
    let mut s = String::new();
    write_value(&mut s, v);
    s
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) if n.is_finite() => {
            let _ = write!(out, "{n}");
        }
        Value::Num(_) => out.push_str("null"),
        Value::Str(s) => escape_into(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

/// Encode a success response line: `{"id":…,"ok":true,"result":RESULT}`.
/// `result` must already be a JSON document.
pub fn ok_line(id: u64, result: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"result\":{result}}}")
}

/// Encode an error response line.
pub fn err_line(id: u64, error: &str) -> String {
    let mut s = format!("{{\"id\":{id},\"ok\":false,\"error\":");
    escape_into(&mut s, error);
    s.push('}');
    s
}

/// Decode one response line into `(id, Ok(result) | Err(message))`.
///
/// # Errors
///
/// A message when the line is not a protocol response at all.
pub fn parse_response(line: &str) -> Result<(u64, Result<Value, String>), String> {
    let v = parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let id = num(&v, "id").map_or(0, |n| n as u64);
    match v.get("ok") {
        Some(Value::Bool(true)) => {
            let result = v.get("result").cloned().unwrap_or(Value::Null);
            Ok((id, Ok(result)))
        }
        Some(Value::Bool(false)) => {
            let msg = v
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unknown error")
                .to_string();
            Ok((id, Err(msg)))
        }
        _ => Err("response missing \"ok\"".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        for op in [
            Op::Ping,
            Op::Stats,
            Op::Explore,
            Op::Certify,
            Op::SearchFormat,
            Op::Shutdown,
        ] {
            let req = Request {
                id: 7,
                op,
                algo: "jacobi4".into(),
                ..Request::default()
            };
            let back = Request::from_line(&req.to_line()).unwrap();
            assert_eq!(back.op, op);
            assert_eq!(back.id, 7);
            if !matches!(op, Op::Ping | Op::Shutdown) {
                assert_eq!(back.algo, "jacobi4");
            }
        }
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let req = Request::from_line(r#"{"op":"explore"}"#).unwrap();
        assert_eq!(req, Request { op: Op::Explore, ..Request::default() });
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        for line in ["", "{", "42", r#"{"op":"launch_missiles"}"#, r#"{"id":1}"#] {
            assert!(Request::from_line(line).is_err(), "{line:?}");
        }
    }

    #[test]
    fn response_lines_round_trip() {
        let (id, res) = parse_response(&ok_line(3, r#"{"points":5}"#)).unwrap();
        assert_eq!(id, 3);
        assert_eq!(res.unwrap().get("points").and_then(Value::as_num), Some(5.0));
        let (id, res) = parse_response(&err_line(9, "no \"such\" algo")).unwrap();
        assert_eq!(id, 9);
        assert_eq!(res.unwrap_err(), "no \"such\" algo");
    }
}
