//! A small synchronous client for the `isl-served` protocol.
//!
//! One [`Client`] is one connection; requests are answered in order.
//! Responses come back as parsed [`Value`]s plus a typed
//! [`RemoteStats`] view of the `stats` op — the evidence CI and the
//! property tests assert warm restarts on.

use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use isl_telemetry::json::Value;

use crate::protocol::{parse_response, Op, Request};

/// Client-side failure: transport, protocol or a server-reported error.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The bytes on the wire were not a protocol response.
    Protocol(String),
    /// The server answered `ok: false` with this message.
    Remote(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Protocol(e) => write!(f, "protocol: {e}"),
            ServeError::Remote(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// The `stats` op decoded into counters. `*_misses` count artifacts
/// actually built by the service process; a warm restart keeps
/// [`RemoteStats::build_misses`] at zero while `disk_hits` grows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Cones built.
    pub cone_misses: u64,
    /// Bytecode programs compiled.
    pub program_misses: u64,
    /// Synthesis reports produced.
    pub synthesis_misses: u64,
    /// DSE calibrations computed.
    pub calibration_misses: u64,
    /// Golden-vector sets co-simulated.
    pub vector_misses: u64,
    /// Certificates computed.
    pub certificate_misses: u64,
    /// Lookups served from the in-memory store, all kinds.
    pub total_hits: u64,
    /// Artifacts decoded from the persistent disk tier.
    pub disk_hits: u64,
    /// Disk lookups that fell through to a cold build.
    pub disk_misses: u64,
    /// Corrupt disk records skipped (load + decode).
    pub corrupt: u64,
    /// Persistent store file size, bytes.
    pub bytes_on_disk: u64,
}

impl RemoteStats {
    /// Artifacts this process actually computed (every kind of build
    /// miss). Zero across a whole explore→certify→search replay is the
    /// warm-restart acceptance criterion.
    pub fn build_misses(&self) -> u64 {
        self.cone_misses
            + self.program_misses
            + self.synthesis_misses
            + self.calibration_misses
            + self.vector_misses
            + self.certificate_misses
    }

    /// Decode the `stats` result object.
    ///
    /// # Errors
    ///
    /// A message naming the first missing counter.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let counter = |kind: &str, field: &str| -> Result<u64, String> {
            v.get(kind)
                .and_then(|k| k.get(field))
                .and_then(Value::as_num)
                .map(|n| n as u64)
                .ok_or_else(|| format!("stats missing {kind}.{field}"))
        };
        Ok(RemoteStats {
            cone_misses: counter("cones", "misses")?,
            program_misses: counter("programs", "misses")?,
            synthesis_misses: counter("syntheses", "misses")?,
            calibration_misses: counter("calibrations", "misses")?,
            vector_misses: counter("vectors", "misses")?,
            certificate_misses: counter("certificates", "misses")?,
            total_hits: v
                .get("total_hits")
                .and_then(Value::as_num)
                .map(|n| n as u64)
                .ok_or("stats missing total_hits")?,
            disk_hits: counter("disk", "hits")?,
            disk_misses: counter("disk", "misses")?,
            corrupt: counter("disk", "corrupt")?,
            bytes_on_disk: counter("disk", "bytes")?,
        })
    }
}

/// One connection to an `isl-served` instance.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to the service at `addr`.
    ///
    /// # Errors
    ///
    /// Socket errors from connect/clone.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
        })
    }

    /// Bound how long a single [`Client::call`] may block on the socket.
    ///
    /// # Errors
    ///
    /// Socket errors from `set_read_timeout`.
    pub fn with_timeout(self, timeout: Duration) -> std::io::Result<Self> {
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        Ok(self)
    }

    /// Send `request` (id assigned by the client) and wait for its
    /// response.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on transport failure, a non-protocol reply, a
    /// mismatched id, or a server-reported error.
    pub fn call(&mut self, mut request: Request) -> Result<Value, ServeError> {
        self.next_id += 1;
        request.id = self.next_id;
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ServeError::Protocol("connection closed".into()));
        }
        let (id, result) = parse_response(response.trim()).map_err(ServeError::Protocol)?;
        if id != self.next_id {
            return Err(ServeError::Protocol(format!(
                "response id {id} for request {}",
                self.next_id
            )));
        }
        result.map_err(ServeError::Remote)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.call(Request { op: Op::Ping, ..Request::default() })
            .map(|_| ())
    }

    /// The store counters of `algo`'s session.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; also a protocol error when the counters are
    /// missing from the result.
    pub fn stats(&mut self, algo: &str) -> Result<RemoteStats, ServeError> {
        let v = self.call(Request {
            op: Op::Stats,
            algo: algo.into(),
            ..Request::default()
        })?;
        RemoteStats::from_value(&v).map_err(ServeError::Protocol)
    }

    /// Run `request` as-is (op and parameters chosen by the caller).
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn request(&mut self, request: Request) -> Result<Value, ServeError> {
        self.call(request)
    }

    /// Ask the service to shut down gracefully (drain + flush).
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.call(Request { op: Op::Shutdown, ..Request::default() })
            .map(|_| ())
    }
}
