//! # isl-serve — HLS-as-a-service over warm, persistent sessions
//!
//! A long-running front-end for the `isl-hls` pipeline: the `isl-served`
//! binary (and the in-process [`Server`] it wraps) listens on a TCP port,
//! speaks a line-oriented JSON protocol ([`protocol`]) and fans concurrent
//! `explore` / `certify` / `search_format` requests from many clients over
//! **one shared warm [`isl_hls::IslSession`] per algorithm**, each backed
//! by a persistent on-disk artifact store (`isl-persist`).
//!
//! The point of the service is amortisation with evidence:
//!
//! * **Warm across requests** — two clients asking for the same artifact
//!   trigger exactly one compute (the store's single-flight builds);
//!   everyone else is a hit.
//! * **Warm across restarts** — calibrations, synthesis reports, golden
//!   vectors, certificates and format searches are persisted *before* the
//!   replies go out (answered ⇒ durable), so a restarted (even
//!   `kill -9`ed) service replays
//!   an entire explore→certify→search run with *zero* new cone builds,
//!   pattern compiles or calibration syntheses. The `stats` op exposes
//!   the counters that prove it ([`RemoteStats::build_misses`]).
//! * **Batched admission** — requests arriving within the batch window
//!   are fanned together through [`isl_hls::IslSession::explore_many`] /
//!   [`isl_hls::IslSession::verify_many`] onto the shared worker pool.
//!
//! ```no_run
//! use isl_serve::{Client, Op, Request, ServeConfig, Server};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let handle = Server::start(ServeConfig {
//!     state_dir: Some("/tmp/isl-state".into()),
//!     ..ServeConfig::default()
//! })?;
//! let mut client = Client::connect(handle.addr())?;
//! let result = client.request(Request {
//!     op: Op::Explore,
//!     algo: "igf".into(),
//!     ..Request::default()
//! })?;
//! println!("{result:?}");
//! assert_eq!(client.stats("igf")?.corrupt, 0);
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, RemoteStats, ServeError};
pub use protocol::{err_line, ok_line, parse_response, Op, Request};
pub use server::{ServeConfig, Server, ServerHandle};
