//! The service: a TCP front-end over warm, persistent [`IslSession`]s.
//!
//! One [`Server`] owns one session per built-in algorithm, created lazily
//! on first request and — when a state directory is configured — backed by
//! a persistent artifact store ([`IslSession::with_persistent_store`]), so
//! a restarted service answers warm: repeated explorations, certifications
//! and format searches are served from disk with **zero** new cone builds,
//! pattern compiles or calibration syntheses (observable through the
//! `stats` op).
//!
//! Concurrency model: each client connection gets a reader thread that
//! decodes request lines and enqueues jobs; a single dispatcher drains the
//! queue in admission batches, fanning each batch through the session's
//! batch surface ([`IslSession::explore_many`] /
//! [`IslSession::verify_many`]) onto the shared worker pool. Two clients
//! racing on the same artifact trigger exactly one compute (the store's
//! single-flight builds). The persistent stores are checkpointed *before*
//! the replies go out, so every answered request is durable: a `kill -9`
//! right after a response still restarts warm, losing at most requests
//! that never saw an answer.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, ErrorKind, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use isl_hls::algorithms;
use isl_hls::dse::DesignSpace;
use isl_hls::estimate::Architecture;
use isl_hls::fpga::Device;
use isl_hls::ir::Window;
use isl_hls::sim::{synthetic, FrameSet};
use isl_hls::{
    ArchitectureCertificate, ErrorBudget, ExploreRequest, FormatSearchOutcome, IslSession,
    StoreStats, VerifyRequest,
};

use crate::protocol::{err_line, ok_line, Op, Request};

/// Configuration of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks a free loopback port).
    pub addr: String,
    /// Directory of the per-algorithm persistent store files
    /// (`<algo>.islstore`). `None` serves from memory only.
    pub state_dir: Option<PathBuf>,
    /// Per-request deadline: a request still unanswered after this long
    /// gets an error response (the computation itself is not cancelled —
    /// its artifact lands in the store for the retry).
    pub request_timeout: Duration,
    /// How long the dispatcher waits for more requests to coalesce into
    /// one admission batch after the first arrives.
    pub batch_window: Duration,
    /// Worker threads per session (0 = one per core).
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            state_dir: None,
            request_timeout: Duration::from_secs(120),
            batch_window: Duration::from_millis(5),
            threads: 0,
        }
    }
}

/// One queued request with its reply slot.
struct Job {
    request: Request,
    reply: mpsc::Sender<String>,
}

struct ServiceState {
    cfg: ServeConfig,
    addr: SocketAddr,
    sessions: Mutex<HashMap<String, IslSession>>,
    shutdown: AtomicBool,
}

impl ServiceState {
    /// Checkpoint `algo`'s persistent store (a no-op without one, or when
    /// nothing is dirty). Called before replies are sent, so any answered
    /// request is already durable — `kill -9` after a response restarts
    /// warm.
    fn checkpoint(&self, algo: &str) {
        if let Ok(session) = self.session_for(algo) {
            if let Err(e) = session.checkpoint() {
                eprintln!("isl-served: checkpoint {algo}: {e}");
            }
        }
    }

    /// The (shared, warm) session of `algo`, created on first use.
    fn session_for(&self, algo: &str) -> Result<IslSession, String> {
        let mut sessions = self.sessions.lock().expect("session map");
        if let Some(s) = sessions.get(algo) {
            return Ok(s.clone());
        }
        let def = algorithms::all()
            .into_iter()
            .find(|a| a.name == algo)
            .ok_or_else(|| {
                let known: Vec<&str> = algorithms::all().iter().map(|a| a.name).collect();
                format!("unknown algorithm {algo:?} (known: {})", known.join(", "))
            })?;
        let mut session = IslSession::from_algorithm(&def)
            .map_err(|e| format!("compile {algo}: {e}"))?
            .with_threads(self.cfg.threads);
        if let Some(dir) = &self.cfg.state_dir {
            std::fs::create_dir_all(dir).map_err(|e| format!("state dir: {e}"))?;
            session = session
                .with_persistent_store(dir.join(format!("{algo}.islstore")))
                .map_err(|e| format!("open store for {algo}: {e}"))?;
        }
        sessions.insert(algo.to_string(), session.clone());
        Ok(session)
    }

    fn device_for(name: &str) -> Result<Device, String> {
        match name {
            "virtex6" => Ok(Device::virtex6_xc6vlx760()),
            "virtex2pro" => Ok(Device::virtex2_pro_xc2vp30()),
            "small" => Ok(Device::small_multimedia()),
            other => Err(format!(
                "unknown device {other:?} (known: virtex6, virtex2pro, small)"
            )),
        }
    }

    /// Deterministic init frames: one noise frame per pattern field, so
    /// the same `(algo, width, height, seed)` always certifies the same
    /// run — across clients and across process restarts.
    fn init_frames(session: &IslSession, req: &Request) -> FrameSet {
        let fields = session.pattern().fields().len();
        FrameSet::from_frames(
            (0..fields)
                .map(|i| {
                    synthetic::noise(
                        req.width as usize,
                        req.height as usize,
                        req.seed ^ ((i as u64) << 32),
                    )
                })
                .collect(),
        )
        .expect("congruent noise frames")
    }
}

// ---------------------------------------------------------------------------
// Result JSON.
// ---------------------------------------------------------------------------

fn explore_json(explored: &isl_hls::Explored) -> String {
    let mut s = String::with_capacity(160);
    let _ = write!(
        s,
        "{{\"points\":{},\"pareto\":{}",
        explored.points().len(),
        explored.pareto().len()
    );
    if let Some(best) = explored.fastest() {
        let _ = write!(
            s,
            ",\"fastest\":{{\"window\":{},\"depth\":{},\"cores\":{},\"fps\":{},\"estimated_luts\":{}}}",
            best.arch.window.w, best.arch.depth, best.arch.cores, best.fps, best.estimated_luts
        );
    }
    s.push('}');
    s
}

fn certificate_json(cert: &ArchitectureCertificate) -> String {
    format!(
        "{{\"window\":{},\"depth\":{},\"cores\":{},\"format_width\":{},\"format_frac\":{},\
         \"quantized_elements\":{},\"vector_records\":{},\"vector_words\":{},\
         \"max_fixed_error\":{},\"max_quant_error\":{}}}",
        cert.arch.window.w,
        cert.arch.depth,
        cert.arch.cores,
        cert.format.width,
        cert.format.frac,
        cert.quantized_elements,
        cert.vector_records,
        cert.vector_words,
        cert.max_fixed_error,
        cert.max_quant_error,
    )
}

fn search_json(outcome: &FormatSearchOutcome) -> String {
    format!(
        "{{\"chosen_width\":{},\"chosen_frac\":{},\"default_width\":{},\"default_frac\":{},\
         \"default_area_luts\":{},\"chosen_area_luts\":{},\"probes\":{},\
         \"certificate\":{}}}",
        outcome.chosen.width,
        outcome.chosen.frac,
        outcome.default_format.width,
        outcome.default_format.frac,
        outcome.default_area_luts,
        outcome.chosen_area_luts,
        outcome.probes.len(),
        certificate_json(&outcome.certificate),
    )
}

fn stats_json(stats: &StoreStats) -> String {
    let mut s = String::with_capacity(360);
    s.push('{');
    for (name, cs) in stats.rows() {
        let _ = write!(s, "\"{name}\":{{\"hits\":{},\"misses\":{}}},", cs.hits, cs.misses);
    }
    let _ = write!(
        s,
        "\"disk\":{{\"hits\":{},\"misses\":{},\"corrupt\":{},\"bytes\":{}}},\
         \"total_hits\":{},\"total_misses\":{}}}",
        stats.disk_hits,
        stats.disk_misses,
        stats.load_skipped_corrupt,
        stats.bytes_on_disk,
        stats.total_hits(),
        stats.total_misses(),
    );
    s
}

// ---------------------------------------------------------------------------
// Dispatcher: admission batching onto the session batch surface.
// ---------------------------------------------------------------------------

fn dispatch_loop(state: &ServiceState, rx: &mpsc::Receiver<Job>) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        let deadline = Instant::now() + state.cfg.batch_window;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        process_batch(state, batch);
    }
}

fn process_batch(state: &ServiceState, batch: Vec<Job>) {
    let _span = isl_telemetry::span!("serve", "batch of {}", batch.len());
    isl_telemetry::add("serve.batches", 1);
    isl_telemetry::add("serve.requests", batch.len() as u64);

    let mut explores: Vec<Job> = Vec::new();
    let mut certifies: Vec<Job> = Vec::new();
    let mut searches: Vec<Job> = Vec::new();
    for job in batch {
        match job.request.op {
            Op::Explore => explores.push(job),
            Op::Certify => certifies.push(job),
            Op::SearchFormat => searches.push(job),
            // Ping/stats/shutdown are answered in the connection thread
            // and never reach the queue; anything else is a bug upstream.
            other => {
                let id = job.request.id;
                let _ = job
                    .reply
                    .send(err_line(id, &format!("op {:?} not dispatchable", other.as_str())));
            }
        }
    }

    // Explorations, grouped per algorithm, through explore_many.
    let mut by_algo: HashMap<String, Vec<Job>> = HashMap::new();
    for job in explores {
        by_algo.entry(job.request.algo.clone()).or_default().push(job);
    }
    for (algo, jobs) in by_algo {
        let _span = isl_telemetry::span!("serve", "explore x{} {}", jobs.len(), algo);
        let session = match state.session_for(&algo) {
            Ok(s) => s,
            Err(e) => {
                for job in jobs {
                    let _ = job.reply.send(err_line(job.request.id, &e));
                }
                continue;
            }
        };
        let mut prepared = Vec::with_capacity(jobs.len());
        for job in jobs {
            match ServiceState::device_for(&job.request.device) {
                Ok(device) => {
                    let space = DesignSpace::new(
                        1..=job.request.max_side,
                        1..=job.request.max_depth,
                        job.request.max_cores,
                    );
                    prepared.push((job, device, space));
                }
                Err(e) => {
                    let _ = job.reply.send(err_line(job.request.id, &e));
                }
            }
        }
        let requests: Vec<ExploreRequest<'_>> = prepared
            .iter()
            .map(|(job, device, space)| ExploreRequest {
                device,
                workload: session.workload(job.request.width, job.request.height),
                space,
            })
            .collect();
        let results = session.explore_many(&requests);
        state.checkpoint(&algo); // durable before anyone is answered
        for ((job, _, _), result) in prepared.iter().zip(results) {
            let line = match result {
                Ok(explored) => ok_line(job.request.id, &explore_json(&explored)),
                Err(e) => err_line(job.request.id, &e.to_string()),
            };
            let _ = job.reply.send(line);
        }
    }

    // Certifications, grouped per algorithm, through verify_many.
    let mut by_algo: HashMap<String, Vec<Job>> = HashMap::new();
    for job in certifies {
        by_algo.entry(job.request.algo.clone()).or_default().push(job);
    }
    for (algo, jobs) in by_algo {
        let _span = isl_telemetry::span!("serve", "certify x{} {}", jobs.len(), algo);
        let session = match state.session_for(&algo) {
            Ok(s) => s,
            Err(e) => {
                for job in jobs {
                    let _ = job.reply.send(err_line(job.request.id, &e));
                }
                continue;
            }
        };
        let prepared: Vec<(Job, FrameSet, Architecture)> = jobs
            .into_iter()
            .map(|job| {
                let init = ServiceState::init_frames(&session, &job.request);
                let arch = Architecture::new(
                    Window::square(job.request.window),
                    job.request.depth,
                    job.request.cores,
                );
                (job, init, arch)
            })
            .collect();
        let requests: Vec<VerifyRequest<'_>> = prepared
            .iter()
            .map(|(_, init, arch)| VerifyRequest { init, arch: *arch })
            .collect();
        let results = session.verify_many(&requests);
        state.checkpoint(&algo); // durable before anyone is answered
        for ((job, _, _), result) in prepared.iter().zip(results) {
            let line = match result {
                Ok(certified) => ok_line(job.request.id, &certificate_json(certified.certificate())),
                Err(e) => err_line(job.request.id, &e.to_string()),
            };
            let _ = job.reply.send(line);
        }
    }

    // Format searches: individually (each is internally batched and
    // heavily store-served already). Same durability order: the searched
    // outcome and its probe certificates hit disk before the reply.
    for job in searches {
        let _span = isl_telemetry::span!("serve", "search_format {}", job.request.algo);
        let line = match serve_search(state, &job.request) {
            Ok(result) => ok_line(job.request.id, &result),
            Err(e) => err_line(job.request.id, &e),
        };
        state.checkpoint(&job.request.algo);
        let _ = job.reply.send(line);
    }
}

fn serve_search(state: &ServiceState, req: &Request) -> Result<String, String> {
    let session = state.session_for(&req.algo)?;
    let device = ServiceState::device_for(&req.device)?;
    let init = ServiceState::init_frames(&session, req);
    let arch = Architecture::new(Window::square(req.window), req.depth, req.cores);
    let mut budget = ErrorBudget::max_abs(req.max_abs).with_max_width(req.max_width);
    if req.rms.is_finite() {
        budget = budget.with_rms(req.rms);
    }
    let searched = session
        .search_format(&device, &init, arch, budget)
        .map_err(|e| e.to_string())?;
    Ok(search_json(searched.outcome()))
}

// ---------------------------------------------------------------------------
// Connection handling.
// ---------------------------------------------------------------------------

fn handle_request(state: &Arc<ServiceState>, jobs: &mpsc::Sender<Job>, line: &str) -> String {
    let request = match Request::from_line(line) {
        Ok(r) => r,
        Err(e) => return err_line(0, &e),
    };
    let id = request.id;
    match request.op {
        // Control-plane ops are answered inline — stats must not queue
        // behind a long exploration to be useful as liveness evidence.
        Op::Ping => ok_line(id, "\"pong\""),
        Op::Stats => match state.session_for(&request.algo) {
            Ok(session) => ok_line(id, &stats_json(&session.store_stats())),
            Err(e) => err_line(id, &e),
        },
        Op::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            // The acceptor blocks in accept(); a throwaway connection wakes
            // it so a wire shutdown actually terminates the process.
            let _ = TcpStream::connect(state.addr);
            ok_line(id, "\"shutting down\"")
        }
        Op::Explore | Op::Certify | Op::SearchFormat => {
            let (tx, rx) = mpsc::channel();
            if jobs.send(Job { request, reply: tx }).is_err() {
                return err_line(id, "service is shutting down");
            }
            match rx.recv_timeout(state.cfg.request_timeout) {
                Ok(response) => response,
                Err(_) => {
                    isl_telemetry::add("serve.timeouts", 1);
                    err_line(id, "request timed out (the artifact may still land in the store)")
                }
            }
        }
    }
}

fn handle_client(state: Arc<ServiceState>, jobs: mpsc::Sender<Job>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let response = handle_request(&state, &jobs, trimmed);
                    if writer
                        .write_all(response.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .is_err()
                    {
                        break;
                    }
                }
                line.clear();
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            // Read timeout: poll the shutdown flag, keep any partial line.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

// ---------------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------------

/// The `isl-served` service. [`Server::start`] binds, spawns the acceptor
/// and dispatcher, and returns a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Start serving `cfg`. Returns once the listener is bound — requests
    /// can be sent immediately.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServiceState {
            cfg,
            addr,
            sessions: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();

        let dispatch_state = Arc::clone(&state);
        let dispatch = std::thread::spawn(move || dispatch_loop(&dispatch_state, &jobs_rx));

        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            let mut clients: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if accept_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    let state = Arc::clone(&accept_state);
                    let jobs = jobs_tx.clone();
                    clients.push(std::thread::spawn(move || handle_client(state, jobs, stream)));
                }
            }
            drop(jobs_tx); // dispatcher exits once the last client is done
            for client in clients {
                let _ = client.join();
            }
        });

        Ok(ServerHandle {
            addr,
            state,
            accept: Some(accept),
            dispatch: Some(dispatch),
        })
    }
}

/// Handle of a running [`Server`]: the bound address plus graceful
/// shutdown. A remote `shutdown` op stops the service too; [`ServerHandle::join`]
/// then reaps it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    accept: Option<JoinHandle<()>>,
    dispatch: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the picked port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and wait for the service to drain: stops
    /// accepting, lets in-flight requests finish, then flushes every
    /// persistent store. Idempotent with a remote `shutdown` op.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.reap();
    }

    /// Wait for the service to stop (e.g. after a remote `shutdown` op)
    /// and flush every persistent store.
    pub fn join(mut self) {
        self.reap();
    }

    fn reap(&mut self) {
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.dispatch.take() {
            let _ = t.join();
        }
        let sessions = self.state.sessions.lock().expect("session map");
        for (algo, session) in sessions.iter() {
            if let Err(e) = session.checkpoint() {
                eprintln!("isl-served: final checkpoint {algo}: {e}");
            }
        }
    }
}

impl Drop for ServerHandle {
    /// Dropping the handle shuts the service down gracefully (tests and
    /// panics don't leave threads accepting forever).
    fn drop(&mut self) {
        if self.accept.is_some() || self.dispatch.is_some() {
            self.state.shutdown.store(true, Ordering::SeqCst);
            self.reap();
        }
    }
}
