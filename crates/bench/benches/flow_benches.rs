//! Criterion benchmarks of the flow's own phases: dependency analysis,
//! cone construction (register reuse), VHDL generation and Pareto
//! exploration. These measure the *compiler*, not the modeled hardware.

use isl_bench::harness::{BenchmarkId, Criterion};
use isl_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use isl_hls::algorithms::{all, chambolle, gaussian_igf};
use isl_hls::prelude::*;

fn bench_symbolic_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic_execution");
    for algo in all() {
        group.bench_with_input(BenchmarkId::from_parameter(algo.name), &algo, |b, algo| {
            b.iter(|| IslFlow::from_source(black_box(algo.source)).expect("compiles"))
        });
    }
    group.finish();
}

fn bench_cone_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("cone_construction");
    let igf = IslFlow::from_algorithm(&gaussian_igf()).expect("compiles");
    for depth in [1u32, 2, 5] {
        group.bench_with_input(
            BenchmarkId::new("igf_w8", depth),
            &depth,
            |b, &depth| {
                b.iter(|| igf.build_cone(black_box(Window::square(8)), depth).expect("builds"))
            },
        );
    }
    let cham = IslFlow::from_algorithm(&chambolle()).expect("compiles");
    for depth in [1u32, 2] {
        group.bench_with_input(
            BenchmarkId::new("chambolle_w6", depth),
            &depth,
            |b, &depth| {
                b.iter(|| cham.build_cone(black_box(Window::square(6)), depth).expect("builds"))
            },
        );
    }
    group.finish();
}

fn bench_vhdl_generation(c: &mut Criterion) {
    let flow = IslFlow::from_algorithm(&gaussian_igf()).expect("compiles");
    c.bench_function("vhdl_generation/igf_w4_d2", |b| {
        b.iter(|| flow.generate_vhdl(black_box(Window::square(4)), 2).expect("generates"))
    });
}

fn bench_exploration(c: &mut Criterion) {
    let flow = IslFlow::from_algorithm(&gaussian_igf()).expect("compiles");
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(1..=6, 1..=3, 8);
    c.bench_function("dse/igf_6x3x8_space", |b| {
        b.iter(|| {
            flow.explore(&device, flow.workload(1024, 768), black_box(&space))
                .expect("explores")
        })
    });
}

criterion_group!(
    benches,
    bench_symbolic_execution,
    bench_cone_construction,
    bench_vhdl_generation,
    bench_exploration
);
criterion_main!(benches);
