//! Interpreted vs compiled simulation engine, the headline perf comparison
//! of the bytecode VM work: gaussian IGF and Chambolle at 256×256, through
//! all three execution semantics — golden whole-frame, tiled
//! (cone-architecture) and cone-DAG — plus their **quantised** variants
//! (the raw-word fixed-point datapath of the generated hardware), the
//! cone-program slot footprint with and without the consumer-clustering
//! scheduling pre-pass, warm-vs-cold staged-session DSE, the precision
//! **format search** (cold vs warm, searched vs default-format area), and
//! the **fault-injection campaign** sweep rate (faults/s of the exhaustive
//! stuck-at + bit-flip campaign over the w8 d2 decomposition).
//!
//! A **frames** section scales the float-vs-quantised comparison to
//! production sizes — 1080p and 4K single frames plus a multi-frame 1080p
//! streaming run, for both case-study patterns — reporting Melem/s
//! throughput and the quantised/float time ratio (every engine case also
//! carries its Melem/s). Set
//! `ISL_BENCH_FAST=1` to shrink the frames section to a 1080p smoke case
//! (CI uses this).
//!
//! A **persistence** section measures the disk tier end to end — cold
//! process vs store flush/load vs warm-disk open vs warm-memory — and the
//! served round-trip latency of a warm certify at 1/4/16 concurrent
//! clients through an in-process `isl-serve` server.
//!
//! Always writes `BENCH_sim.json` at the workspace root with the measured
//! times and speedups so the perf trajectory of the engine can be tracked
//! across commits.

use std::time::Instant;

use isl_bench::harness::Criterion;
use isl_hls::algorithms::{chambolle, gaussian_igf};
use isl_hls::cosim::{CoSimulator, MaskSchedule};
use isl_hls::ir::Cone;
use isl_hls::prelude::*;
use isl_hls::sim::synthetic;
use isl_hls::sim::{CompiledCone, Quantizer};

const SIZE: usize = 256;
const ITERS: u32 = 10;
/// Architecture shapes used for the tiled / cone-DAG cases (chosen near
/// the paper's sweet spots: wide windows amortise tiled halo recompute,
/// small windows stress per-tile dispatch on the cone-DAG path).
const TILE_TILED: u32 = 16;
const TILE_CONE: u32 = 8;
const DEPTH: u32 = 2;

struct Case {
    name: &'static str,
    pattern: StencilPattern,
    init: FrameSet,
}

fn cases() -> Vec<Case> {
    let (igf, _) = gaussian_igf().compile().expect("igf compiles");
    let (cham, _) = chambolle().compile().expect("chambolle compiles");
    let noisy = synthetic::add_noise(&synthetic::gaussian_spots(SIZE, SIZE, 9, 4), 3, 0.15);
    vec![
        Case {
            name: "gaussian_igf_256",
            pattern: igf,
            init: FrameSet::from_frames(vec![synthetic::noise(SIZE, SIZE, 42)])
                .expect("frames"),
        },
        Case {
            name: "chambolle_256",
            pattern: cham,
            init: FrameSet::from_frames(vec![
                Frame::new(SIZE, SIZE),
                Frame::new(SIZE, SIZE),
                noisy,
            ])
            .expect("frames"),
        },
    ]
}

/// Median-of-5 wall time of one full run.
fn time_runs(mut f: impl FnMut() -> FrameSet) -> (f64, FrameSet) {
    let out = f();
    let mut times: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (times[2], out)
}

struct Row {
    name: String,
    interpreted_ms: f64,
    compiled_1t_ms: f64,
    compiled_auto_ms: f64,
    /// Frame elements processed by one run (width × height × iterations).
    elems: f64,
}

impl Row {
    /// Melem/s of the compiled engine at auto threads.
    fn throughput_melem_s(&self) -> f64 {
        self.elems / (self.compiled_auto_ms * 1e-3) / 1e6
    }

    fn json(&self, last: bool) -> String {
        format!(
            "    {{\"name\": \"{}\", \"interpreted_ms\": {:.3}, \"compiled_1t_ms\": {:.3}, \"compiled_auto_ms\": {:.3}, \"speedup_1t\": {:.2}, \"speedup_auto\": {:.2}, \"throughput_melem_s\": {:.1}}}{}\n",
            self.name,
            self.interpreted_ms,
            self.compiled_1t_ms,
            self.compiled_auto_ms,
            self.interpreted_ms / self.compiled_1t_ms,
            self.interpreted_ms / self.compiled_auto_ms,
            self.throughput_melem_s(),
            if last { "" } else { "," }
        )
    }

    fn print(&self) {
        println!(
            "{:<24} interpreted {:>8.2} ms | compiled(1t) {:>7.2} ms ({:>5.1}x) | compiled(auto) {:>7.2} ms ({:>5.1}x, {:>7.1} Melem/s)",
            self.name,
            self.interpreted_ms,
            self.compiled_1t_ms,
            self.interpreted_ms / self.compiled_1t_ms,
            self.compiled_auto_ms,
            self.interpreted_ms / self.compiled_auto_ms,
            self.throughput_melem_s(),
        );
    }
}

/// Measure one semantics (reference vs compiled 1t vs compiled auto).
fn measure(
    name: String,
    reference: impl Fn(&Simulator<'_>) -> FrameSet,
    compiled: impl Fn(&Simulator<'_>) -> FrameSet,
    pattern: &StencilPattern,
    elems: f64,
) -> Row {
    let interp = Simulator::new(pattern).expect("valid").with_threads(1);
    let compiled1 = Simulator::new(pattern).expect("valid").with_threads(1);
    let compiledn = Simulator::new(pattern).expect("valid").with_threads(0);
    let (t_interp, a) = time_runs(|| reference(&interp));
    let (t_vm1, b) = time_runs(|| compiled(&compiled1));
    let (t_vmn, c) = time_runs(|| compiled(&compiledn));
    assert_eq!(a, b, "{name}: compiled engine diverged");
    assert_eq!(a, c, "{name}: parallel engine diverged");
    Row {
        name,
        interpreted_ms: t_interp * 1e3,
        compiled_1t_ms: t_vm1 * 1e3,
        compiled_auto_ms: t_vmn * 1e3,
        elems,
    }
}

fn main() {
    let mut c = Criterion::default();
    let cases = cases();
    let tiled_window = Window::square(TILE_TILED);
    let cone_window = Window::square(TILE_CONE);
    let case_elems = (SIZE * SIZE) as f64 * ITERS as f64;
    let mut rows: Vec<Row> = Vec::new();
    for case in &cases {
        // Golden whole-frame semantics: tree-walk vs bytecode VM.
        let row = measure(
            case.name.to_string(),
            |s| s.run_reference(&case.init, ITERS).expect("runs"),
            |s| s.run(&case.init, ITERS).expect("runs"),
            &case.pattern,
            case_elems,
        );
        row.print();
        rows.push(row);

        // Tiled (cone-architecture) semantics: per-pixel tree-walk levels
        // vs compiled halo-buffer levels.
        let row = measure(
            format!("tiled_{}", case.name),
            |s| {
                s.run_tiled_reference(&case.init, ITERS, tiled_window, DEPTH)
                    .expect("runs")
            },
            |s| {
                s.run_tiled(&case.init, ITERS, tiled_window, DEPTH)
                    .expect("runs")
            },
            &case.pattern,
            case_elems,
        );
        row.print();
        rows.push(row);

        // Cone-DAG semantics: graph interpreter vs lowered cone bytecode.
        let row = measure(
            format!("cone_dag_{}", case.name),
            |s| {
                s.run_cone_dag_reference(&case.init, ITERS, cone_window, DEPTH)
                    .expect("runs")
            },
            |s| {
                s.run_cone_dag(&case.init, ITERS, cone_window, DEPTH)
                    .expect("runs")
            },
            &case.pattern,
            case_elems,
        );
        row.print();
        rows.push(row);

        // Quantised semantics (the raw-word fixed-point datapath of the
        // generated hardware): interpreted vs compiled, through all three
        // execution paths.
        let q = Quantizer::q18_10();
        let row = measure(
            format!("quantized_{}", case.name),
            |s| s.run_quantized_reference(&case.init, ITERS, q).expect("runs"),
            |s| s.run_quantized(&case.init, ITERS, q).expect("runs"),
            &case.pattern,
            case_elems,
        );
        row.print();
        rows.push(row);

        let row = measure(
            format!("quantized_tiled_{}", case.name),
            |s| {
                s.run_tiled_quantized_reference(&case.init, ITERS, tiled_window, DEPTH, q)
                    .expect("runs")
            },
            |s| {
                s.run_tiled_quantized(&case.init, ITERS, tiled_window, DEPTH, q)
                    .expect("runs")
            },
            &case.pattern,
            case_elems,
        );
        row.print();
        rows.push(row);

        let row = measure(
            format!("quantized_cone_dag_{}", case.name),
            |s| {
                s.run_cone_dag_quantized_reference(&case.init, ITERS, cone_window, DEPTH, q)
                    .expect("runs")
            },
            |s| {
                s.run_cone_dag_quantized(&case.init, ITERS, cone_window, DEPTH, q)
                    .expect("runs")
            },
            &case.pattern,
            case_elems,
        );
        row.print();
        rows.push(row);

        // Also register per-step timings with the harness for uniform output.
        let interp = Simulator::new(&case.pattern).expect("valid").with_threads(1);
        let small = small_for(&case.pattern, 64, 64);
        let mut g = c.benchmark_group(case.name);
        g.bench_function("interpreted_step_64", |b| {
            b.iter(|| interp.step_reference(&small).expect("runs"))
        });
        g.bench_function("compiled_step_64", |b| {
            b.iter(|| interp.step(&small).expect("runs"))
        });
        g.bench_function("compiled_tiled_64", |b| {
            b.iter(|| {
                interp
                    .run_tiled(&small, 1, Window::square(8), 1)
                    .expect("runs")
            })
        });
        g.finish();
    }

    // Production-size frames: the float vs quantised compiled engines at
    // 1080p and 4K, plus a multi-frame 1080p streaming run — the
    // camera-pipeline shape the paper's architecture targets. The headline
    // number is the quantised/float time ratio: with rounding fused into
    // branch-free lane kernels the raw-word datapath should cost a small
    // constant factor, not an order of magnitude. Fast mode (CI) keeps a
    // single short 1080p smoke case.
    let fast = std::env::var("ISL_BENCH_FAST").is_ok_and(|v| v == "1");
    let frame_shapes: Vec<(&str, usize, usize, u32, u32)> = if fast {
        vec![("frames_1080p", 1920, 1080, 2, 1)]
    } else {
        vec![
            ("frames_1080p", 1920, 1080, ITERS, 1),
            ("frames_4k", 3840, 2160, ITERS, 1),
            ("stream_1080p_x8", 1920, 1080, ITERS, 8),
        ]
    };
    let mut frame_rows: Vec<String> = Vec::new();
    let q = Quantizer::q18_10();
    // Both case-study patterns run at every production shape; fast mode
    // keeps the single-field gaussian smoke case only.
    let frame_cases: Vec<&Case> = if fast { vec![&cases[0]] } else { cases.iter().collect() };
    for case in frame_cases {
        let short = case.name.trim_end_matches("_256");
        for &(shape, w, h, iters, frames) in &frame_shapes {
            let name = format!("{shape}_{short}");
            let init = small_for(&case.pattern, w, h);
            let sim = Simulator::new(&case.pattern).expect("valid").with_threads(0);
            let stream = |run: &dyn Fn(&FrameSet) -> FrameSet| -> FrameSet {
                let mut last = run(&init);
                for _ in 1..frames {
                    last = run(&init);
                }
                last
            };
            let (t_float, _) = time_runs(|| stream(&|f| sim.run(f, iters).expect("runs")));
            let (t_quant, _) =
                time_runs(|| stream(&|f| sim.run_quantized(f, iters, q).expect("runs")));
            let elems = (w * h) as f64 * iters as f64 * frames as f64;
            let ratio = t_quant / t_float;
            println!(
                "{name:<30} {w}x{h} x{frames} frame(s), {iters} iters: float {:>8.2} ms ({:>7.1} Melem/s) | quantized {:>8.2} ms ({:>7.1} Melem/s) | ratio {ratio:.2}x",
                t_float * 1e3,
                elems / t_float / 1e6,
                t_quant * 1e3,
                elems / t_quant / 1e6,
            );
            frame_rows.push(format!(
                "    {{\"name\": \"{name}\", \"pattern\": \"{}\", \"width\": {w}, \"height\": {h}, \"iterations\": {iters}, \"frames\": {frames}, \"float_ms\": {:.3}, \"quantized_ms\": {:.3}, \"float_melem_s\": {:.1}, \"quantized_melem_s\": {:.1}, \"quantized_over_float\": {ratio:.2}}}",
                case.name,
                t_float * 1e3,
                t_quant * 1e3,
                elems / t_float / 1e6,
                elems / t_quant / 1e6,
            ));
        }
    }

    // Cone-program slot footprint: peak live set of the w16d2 cone with the
    // kill-first scheduling pre-pass vs the plain lowering order (the
    // ROADMAP's instruction-scheduling item, measured).
    let mut slot_rows: Vec<String> = Vec::new();
    for case in &cases {
        let params: Vec<f64> = case.pattern.params().iter().map(|p| p.default).collect();
        let cone =
            Cone::build(&case.pattern, Window::square(TILE_TILED), DEPTH).expect("cone builds");
        let cc = CompiledCone::compile(&cone, &params);
        println!(
            "{:<24} w{TILE_TILED} d{DEPTH} cone: {} instrs, slots {} scheduled vs {} linear ({:.1}% smaller)",
            case.name,
            cc.len(),
            cc.slots(),
            cc.slots_unscheduled(),
            100.0 * (1.0 - cc.slots() as f64 / cc.slots_unscheduled() as f64),
        );
        slot_rows.push(format!(
            "    {{\"name\": \"{}_w{TILE_TILED}_d{DEPTH}\", \"instructions\": {}, \"slots_scheduled\": {}, \"slots_linear\": {}}}",
            case.name,
            cc.len(),
            cc.slots(),
            cc.slots_unscheduled()
        ));
    }

    // Warm-vs-cold staged-session DSE: the artifact store memoises cones,
    // compiled programs and calibration syntheses, so a repeated explore on
    // one session reduces to pure enumeration arithmetic.
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(1..=6, 1..=4, 8);
    let mut session_rows: Vec<String> = Vec::new();
    for case in &cases {
        let workload = Workload::image(SIZE as u32, SIZE as u32, ITERS);
        let time_explores = |session: &IslSession| -> f64 {
            let mut times: Vec<f64> = (0..5)
                .map(|_| {
                    let t0 = Instant::now();
                    std::hint::black_box(
                        session.explore(&device, workload, &space).expect("explores"),
                    );
                    t0.elapsed().as_secs_f64()
                })
                .collect();
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            times[2]
        };
        // Cold: a fresh session (empty store) per run.
        let mut cold_times: Vec<f64> = (0..5)
            .map(|_| {
                let session = IslSession::from_pattern(case.pattern.clone(), ITERS);
                let t0 = Instant::now();
                std::hint::black_box(session.explore(&device, workload, &space).expect("explores"));
                t0.elapsed().as_secs_f64()
            })
            .collect();
        cold_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let cold = cold_times[2];
        // Warm: one session, store populated by a first pass.
        let session = IslSession::from_pattern(case.pattern.clone(), ITERS);
        session.explore(&device, workload, &space).expect("explores");
        let warm = time_explores(&session);
        println!(
            "session_dse_{:<16} cold {:>8.3} ms | warm {:>8.3} ms ({:>6.1}x)",
            case.name,
            cold * 1e3,
            warm * 1e3,
            cold / warm
        );
        session_rows.push(format!(
            "    {{\"name\": \"{}\", \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"speedup\": {:.1}}}",
            case.name,
            cold * 1e3,
            warm * 1e3,
            cold / warm
        ));
    }

    // Precision format search: cold (every probe certified from scratch)
    // vs warm (the stored outcome), and the area of the searched format vs
    // the Q8.10/18-bit default through the width-parameterised techmap.
    // Smaller frames than the engine cases — each probe is a full
    // certification of the architecture at that format.
    const FS_SIZE: usize = 64;
    let fs_arch = Architecture::new(Window::square(8), DEPTH, 2);
    let mut fs_rows: Vec<String> = Vec::new();
    for case in &cases {
        let fields = case.pattern.fields().len();
        let init = FrameSet::from_frames(
            (0..fields)
                .map(|i| synthetic::noise(FS_SIZE, FS_SIZE, 21 + i as u64))
                .collect(),
        )
        .expect("frames");
        let budget_of = |session: &IslSession| {
            ErrorBudget::max_abs(
                session
                    .certify(&init, fs_arch)
                    .expect("certifies")
                    .certificate()
                    .max_quant_error,
            )
        };
        let mut cold_times: Vec<f64> = (0..3)
            .map(|_| {
                let session = IslSession::from_pattern(case.pattern.clone(), ITERS);
                let budget = budget_of(&session);
                let t0 = Instant::now();
                std::hint::black_box(
                    session
                        .search_format(&device, &init, fs_arch, budget)
                        .expect("searches"),
                );
                t0.elapsed().as_secs_f64()
            })
            .collect();
        cold_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let cold = cold_times[1];
        let session = IslSession::from_pattern(case.pattern.clone(), ITERS);
        let budget = budget_of(&session);
        let searched = session
            .search_format(&device, &init, fs_arch, budget)
            .expect("searches");
        let mut warm_times: Vec<f64> = (0..5)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(
                    session
                        .search_format(&device, &init, fs_arch, budget)
                        .expect("searches"),
                );
                t0.elapsed().as_secs_f64()
            })
            .collect();
        warm_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let warm = warm_times[2];
        let outcome = searched.outcome();
        println!(
            "format_search_{:<16} cold {:>8.3} ms | warm {:>8.5} ms ({:>9.1}x) | {} {} LUT -> {} {} LUT ({:.1}% saved, {} probes)",
            case.name,
            cold * 1e3,
            warm * 1e3,
            cold / warm,
            outcome.default_format,
            outcome.default_area_luts,
            outcome.chosen,
            outcome.chosen_area_luts,
            100.0 * searched.area_saving(),
            searched.probes().len(),
        );
        fs_rows.push(format!(
            "    {{\"name\": \"{}\", \"cold_ms\": {:.3}, \"warm_ms\": {:.5}, \"speedup\": {:.1}, \"default_format\": \"{}\", \"searched_format\": \"{}\", \"default_area_luts\": {}, \"searched_area_luts\": {}, \"probes\": {}}}",
            case.name,
            cold * 1e3,
            warm * 1e3,
            cold / warm,
            outcome.default_format,
            outcome.chosen,
            outcome.default_area_luts,
            outcome.chosen_area_luts,
            searched.probes().len()
        ));
    }

    // Fault-injection campaign throughput: the reliability subsystem's
    // exhaustive stuck-at + bit-flip sweep over every instruction of the
    // w8 d2 cone decomposition — faults-per-second is the number that
    // bounds how often CI can afford the full campaign. A campaign runs
    // for tens of seconds and is fully deterministic, so one timed run is
    // the measurement (median-of-N would multiply minutes for noise that
    // sits far below the reading). Fast mode shrinks the frame and keeps
    // the single-LSB schedule; the full run uses the standard three-mask
    // schedule of the default format.
    let (fc_size, fc_iters) = if fast { (32usize, 2u32) } else { (48usize, 4u32) };
    let fc_window = Window::square(8);
    let fc_fmt = FixedFormat::default();
    let fc_schedule = if fast {
        MaskSchedule::lsb()
    } else {
        MaskSchedule::standard(fc_fmt)
    };
    let mut fc_rows: Vec<String> = Vec::new();
    for case in &cases {
        let init = small_for(&case.pattern, fc_size, fc_size);
        let cosim = CoSimulator::new(&case.pattern, fc_fmt).expect("valid");
        let t0 = Instant::now();
        let report = cosim
            .fault_campaign(&init, fc_iters, fc_window, DEPTH, &fc_schedule)
            .expect("campaign runs");
        let t = t0.elapsed().as_secs_f64();
        println!(
            "fault_campaign_{:<16} w8 d{DEPTH} {fc_size}x{fc_size}: {} faults over {} instrs in {:>8.2} ms ({:>7.1} faults/s) | detected {:.1}% ({:.1}% of active)",
            case.name,
            report.faults,
            report.instructions,
            t * 1e3,
            report.faults as f64 / t,
            100.0 * report.detection_rate(),
            100.0 * report.active_detection_rate(),
        );
        fc_rows.push(format!(
            "    {{\"name\": \"{}\", \"instructions\": {}, \"faults\": {}, \"campaign_ms\": {:.3}, \"faults_per_s\": {:.1}, \"detection_pct\": {:.1}, \"active_detection_pct\": {:.1}, \"triaged\": {}, \"predicted_silent\": {}}}",
            case.name,
            report.instructions,
            report.faults,
            t * 1e3,
            report.faults as f64 / t,
            100.0 * report.detection_rate(),
            100.0 * report.active_detection_rate(),
            report.triaged,
            report.predicted_silent
        ));
    }

    // Static analysis: the abstract interpreter and the bytecode verifier
    // over the same w8 d2 cone the campaigns sweep — instructions/second
    // is the cost of gating a probe or classifying a fault statically, and
    // must stay orders of magnitude above the certification work it
    // prunes. The pruning columns run the saturating-band format searches
    // of the property suite and report how many full certification probes
    // the range proof skipped, and what the whole gated search cost.
    let mut sa_rows: Vec<String> = Vec::new();
    for case in &cases {
        let params: Vec<f64> = case.pattern.params().iter().map(|p| p.default).collect();
        let cone = Cone::build(&case.pattern, Window::square(8), DEPTH).expect("cone builds");
        let cc = CompiledCone::compile_with(&cone, &params, true);
        let fmt = FixedFormat::default();
        let full = isl_hls::analyze::WordRange::full(fmt);
        let reps = if fast { 20u32 } else { 100 };
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(
                isl_hls::analyze::Analysis::of_cone(&cc, fmt, full).expect("analyses"),
            );
        }
        let analyze_t = t0.elapsed().as_secs_f64() / reps as f64;
        let t0 = Instant::now();
        for _ in 0..reps {
            isl_hls::analyze::verify_cone(&cc).expect("verifies");
        }
        let verify_t = t0.elapsed().as_secs_f64() / reps as f64;

        // The saturating-band search: three-digit inputs overflow the
        // early escalation widths of the Gaussian's 16x pre-normalisation
        // sum; Chambolle's internal 1/lambda = 10x gain overflows on unit
        // noise. Every statically-doomed escalation probe skips its full
        // certification.
        let fields = case.pattern.fields().len();
        let sat_init = FrameSet::from_frames(
            (0..fields)
                .map(|i| {
                    let noise = synthetic::noise(20, 14, 11 + i as u64);
                    if case.name.starts_with("gaussian") {
                        Frame::from_fn(20, 14, |x, y| 100.0 + 100.0 * noise.get(x, y))
                    } else {
                        noise
                    }
                })
                .collect(),
        )
        .expect("frames");
        let sat_arch = Architecture::new(Window::square(4), DEPTH, 1);
        let session = IslSession::from_pattern(case.pattern.clone(), ITERS);
        let t0 = Instant::now();
        let searched = session
            .search_format(&device, &sat_init, sat_arch, ErrorBudget::max_abs(1e-3))
            .expect("searches");
        let search_t = t0.elapsed().as_secs_f64();
        let pruned = session.store_stats().analysis_pruned_probes;

        println!(
            "static_analysis_{:<15} {} instrs: analyze {:>7.3} ms ({:>9.0} instrs/s) | verify {:>7.3} ms ({:>9.0} instrs/s) | saturating search {:>8.2} ms, {} of {} probes pruned -> {}",
            case.name,
            cc.len(),
            analyze_t * 1e3,
            cc.len() as f64 / analyze_t,
            verify_t * 1e3,
            cc.len() as f64 / verify_t,
            search_t * 1e3,
            pruned,
            searched.probes().len(),
            searched.format(),
        );
        sa_rows.push(format!(
            "    {{\"name\": \"{}\", \"instructions\": {}, \"analyze_ms\": {:.4}, \"analyzed_instrs_per_s\": {:.0}, \"verify_ms\": {:.4}, \"verified_instrs_per_s\": {:.0}, \"saturating_search_ms\": {:.3}, \"probes\": {}, \"probes_pruned\": {}, \"searched_format\": \"{}\"}}",
            case.name,
            cc.len(),
            analyze_t * 1e3,
            cc.len() as f64 / analyze_t,
            verify_t * 1e3,
            cc.len() as f64 / verify_t,
            search_t * 1e3,
            searched.probes().len(),
            pruned,
            searched.format(),
        ));
    }

    // Persistence: the disk tier measured end to end — cold process
    // (empty store file, everything built), the store flush and load wall
    // times, a warm-disk open (fresh session replaying the file) and the
    // warm-memory re-explore, then the served round-trip latency of a
    // warm certify at 1/4/16 concurrent clients through `isl-serve`.
    let mut persist_rows: Vec<String> = Vec::new();
    for case in &cases {
        let workload = Workload::image(SIZE as u32, SIZE as u32, ITERS);
        let path = std::env::temp_dir().join(format!("isl-bench-{}.islstore", case.name));

        // Cold process: empty file + fresh session per run.
        let mut cold_times: Vec<f64> = (0..3)
            .map(|_| {
                std::fs::remove_file(&path).ok();
                let session = IslSession::from_pattern(case.pattern.clone(), ITERS)
                    .with_persistent_store(&path)
                    .expect("opens");
                let t0 = Instant::now();
                std::hint::black_box(session.explore(&device, workload, &space).expect("explores"));
                t0.elapsed().as_secs_f64()
            })
            .collect();
        cold_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let cold = cold_times[1];

        // Flush: dirty store → atomically published file.
        std::fs::remove_file(&path).ok();
        let writer = IslSession::from_pattern(case.pattern.clone(), ITERS)
            .with_persistent_store(&path)
            .expect("opens");
        writer.explore(&device, workload, &space).expect("explores");
        let t0 = Instant::now();
        let bytes = writer.checkpoint().expect("flushes");
        let flush = t0.elapsed().as_secs_f64();
        drop(writer);

        // Warm-disk open (load) + first explore from disk artifacts, then
        // the warm-memory re-explore on the same session.
        let t0 = Instant::now();
        let reader = IslSession::from_pattern(case.pattern.clone(), ITERS)
            .with_persistent_store(&path)
            .expect("opens");
        let load = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        std::hint::black_box(reader.explore(&device, workload, &space).expect("explores"));
        let warm_disk = t0.elapsed().as_secs_f64();
        let mut mem_times: Vec<f64> = (0..5)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(reader.explore(&device, workload, &space).expect("explores"));
                t0.elapsed().as_secs_f64()
            })
            .collect();
        mem_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let warm_mem = mem_times[2];
        assert_eq!(reader.store_stats().calibrations.misses, 0, "disk tier missed");
        println!(
            "persistence_{:<16} cold {:>8.3} ms | flush {:>7.3} ms ({bytes} B) | load {:>7.3} ms | warm-disk {:>7.3} ms ({:>6.1}x) | warm-mem {:>7.3} ms",
            case.name,
            cold * 1e3,
            flush * 1e3,
            load * 1e3,
            warm_disk * 1e3,
            cold / warm_disk,
            warm_mem * 1e3,
        );
        persist_rows.push(format!(
            "    {{\"name\": \"{}\", \"cold_ms\": {:.3}, \"flush_ms\": {:.3}, \"flush_bytes\": {bytes}, \"load_ms\": {:.3}, \"warm_disk_ms\": {:.3}, \"warm_memory_ms\": {:.3}, \"disk_speedup\": {:.1}}}",
            case.name,
            cold * 1e3,
            flush * 1e3,
            load * 1e3,
            warm_disk * 1e3,
            warm_mem * 1e3,
            cold / warm_disk
        ));
        std::fs::remove_file(&path).ok();
    }

    // Service round-trip latency: a warm certify against an in-process
    // `isl-serve` server at 1/4/16 concurrent clients (fast mode: 1/4).
    let serve_state = std::env::temp_dir().join("isl-bench-serve-state");
    std::fs::remove_dir_all(&serve_state).ok();
    let handle = isl_serve::Server::start(isl_serve::ServeConfig {
        state_dir: Some(serve_state.clone()),
        batch_window: std::time::Duration::from_millis(1),
        ..isl_serve::ServeConfig::default()
    })
    .expect("serve binds");
    let addr = handle.addr();
    let served_certify = || isl_serve::Request {
        op: isl_serve::Op::Certify,
        algo: "igf".into(),
        width: 48,
        height: 32,
        seed: 1,
        window: 2,
        depth: 1,
        cores: 1,
        ..isl_serve::Request::default()
    };
    // One cold call warms the service; everything after measures serving.
    isl_serve::Client::connect(addr)
        .expect("connects")
        .request(served_certify())
        .expect("answers");
    let serve_clients: &[usize] = if fast { &[1, 4] } else { &[1, 4, 16] };
    let calls_per_client = if fast { 5 } else { 20 };
    let mut serve_rows: Vec<String> = Vec::new();
    for &n in serve_clients {
        let threads: Vec<_> = (0..n)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = isl_serve::Client::connect(addr).expect("connects");
                    (0..calls_per_client)
                        .map(|_| {
                            let t0 = Instant::now();
                            client.request(served_certify()).expect("answers");
                            t0.elapsed().as_secs_f64()
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        let mut lat: Vec<f64> = threads
            .into_iter()
            .flat_map(|t| t.join().expect("client thread"))
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p50 = lat[lat.len() / 2];
        let p95 = lat[(lat.len() * 95 / 100).min(lat.len() - 1)];
        println!(
            "serve_round_trip_c{n:<3} warm certify: p50 {:>7.3} ms | p95 {:>7.3} ms ({} calls)",
            p50 * 1e3,
            p95 * 1e3,
            lat.len(),
        );
        serve_rows.push(format!(
            "    {{\"clients\": {n}, \"calls\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}}}",
            lat.len(),
            p50 * 1e3,
            p95 * 1e3
        ));
    }
    handle.shutdown();
    std::fs::remove_dir_all(&serve_state).ok();

    let mut json = format!(
        "{{\n  \"meta\": {{\"git_commit\": \"{}\", \"rustc\": \"{}\", \"cores\": {}, \"timestamp_utc\": \"{}\"}},\n  \"frame\": [{SIZE}, {SIZE}],\n  \"iterations\": {ITERS},\n  \"tiled_window\": {TILE_TILED},\n  \"cone_dag_window\": {TILE_CONE},\n  \"cone_depth\": {DEPTH},\n  \"cases\": [\n",
        capture("git", &["rev-parse", "--short=12", "HEAD"]),
        capture("rustc", &["--version"]),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        utc_timestamp(),
    );
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&row.json(i + 1 == rows.len()));
    }
    json.push_str("  ],\n  \"frames\": [\n");
    json.push_str(&frame_rows.join(",\n"));
    json.push_str("\n  ],\n  \"cone_slots\": [\n");
    json.push_str(&slot_rows.join(",\n"));
    json.push_str("\n  ],\n  \"session_dse\": [\n");
    json.push_str(&session_rows.join(",\n"));
    json.push_str("\n  ],\n  \"format_search\": [\n");
    json.push_str(&fs_rows.join(",\n"));
    json.push_str("\n  ],\n  \"fault_campaign\": [\n");
    json.push_str(&fc_rows.join(",\n"));
    json.push_str("\n  ],\n  \"static_analysis\": [\n");
    json.push_str(&sa_rows.join(",\n"));
    json.push_str("\n  ],\n  \"persistence\": [\n");
    json.push_str(&persist_rows.join(",\n"));
    json.push_str("\n  ],\n  \"serve_latency\": [\n");
    json.push_str(&serve_rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    // cargo runs benches with the package directory as cwd; anchor the
    // trajectory file at the workspace root instead.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("can write BENCH_sim.json");
    println!("wrote {path}");
    c.final_summary();
}

/// A noise frame set shaped to the pattern's field count.
fn small_for(pattern: &StencilPattern, w: usize, h: usize) -> FrameSet {
    let n = pattern.fields().len();
    FrameSet::from_frames((0..n).map(|i| synthetic::noise(w, h, 7 + i as u64)).collect())
        .expect("frames")
}

/// First line of `cmd`'s stdout, or `"unknown"` — run metadata must never
/// fail the bench (e.g. a source tarball without `.git`).
fn capture(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .and_then(|s| s.lines().next().map(str::trim).map(String::from))
        .unwrap_or_else(|| "unknown".into())
}

/// The current UTC time as `YYYY-MM-DDTHH:MM:SSZ`, from the Unix clock
/// alone (civil-from-days conversion; no date dependency).
fn utc_timestamp() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (h, m, s) = ((secs / 3600) % 24, (secs / 60) % 60, secs % 60);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}Z")
}
