//! Interpreted vs compiled simulation engine, the headline perf comparison
//! of the bytecode VM work: gaussian IGF and Chambolle at 256×256.
//!
//! Always writes `BENCH_sim.json` at the workspace root with the measured
//! times and speedups so the perf trajectory of the engine can be tracked
//! across commits.

use std::time::Instant;

use isl_bench::harness::Criterion;
use isl_hls::algorithms::{chambolle, gaussian_igf};
use isl_hls::prelude::*;
use isl_hls::sim::synthetic;

const SIZE: usize = 256;
const ITERS: u32 = 10;

struct Case {
    name: &'static str,
    pattern: StencilPattern,
    init: FrameSet,
}

fn cases() -> Vec<Case> {
    let (igf, _) = gaussian_igf().compile().expect("igf compiles");
    let (cham, _) = chambolle().compile().expect("chambolle compiles");
    let noisy = synthetic::add_noise(&synthetic::gaussian_spots(SIZE, SIZE, 9, 4), 3, 0.15);
    vec![
        Case {
            name: "gaussian_igf_256",
            pattern: igf,
            init: FrameSet::from_frames(vec![synthetic::noise(SIZE, SIZE, 42)])
                .expect("frames"),
        },
        Case {
            name: "chambolle_256",
            pattern: cham,
            init: FrameSet::from_frames(vec![
                Frame::new(SIZE, SIZE),
                Frame::new(SIZE, SIZE),
                noisy,
            ])
            .expect("frames"),
        },
    ]
}

/// Median-of-3 wall time of one full run.
fn time_runs(mut f: impl FnMut() -> FrameSet) -> (f64, FrameSet) {
    let out = f();
    let mut times: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (times[1], out)
}

fn main() {
    let mut c = Criterion::default();
    let mut json = String::from("{\n  \"frame\": [256, 256],\n  \"iterations\": 10,\n  \"cases\": [\n");
    let cases = cases();
    for (i, case) in cases.iter().enumerate() {
        let interp = Simulator::new(&case.pattern).expect("valid").with_threads(1);
        let compiled1 = Simulator::new(&case.pattern).expect("valid").with_threads(1);
        let compiledn = Simulator::new(&case.pattern).expect("valid").with_threads(0);

        let (t_interp, a) = time_runs(|| interp.run_reference(&case.init, ITERS).expect("runs"));
        let (t_vm1, b) = time_runs(|| compiled1.run(&case.init, ITERS).expect("runs"));
        let (t_vmn, c_out) = time_runs(|| compiledn.run(&case.init, ITERS).expect("runs"));
        assert_eq!(a, b, "{}: compiled engine diverged", case.name);
        assert_eq!(a, c_out, "{}: parallel engine diverged", case.name);

        let speedup1 = t_interp / t_vm1;
        let speedupn = t_interp / t_vmn;
        println!(
            "{:<18} interpreted {:>8.2} ms | compiled(1t) {:>7.2} ms ({:>5.1}x) | compiled(auto) {:>7.2} ms ({:>5.1}x)",
            case.name,
            t_interp * 1e3,
            t_vm1 * 1e3,
            speedup1,
            t_vmn * 1e3,
            speedupn
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"interpreted_ms\": {:.3}, \"compiled_1t_ms\": {:.3}, \"compiled_auto_ms\": {:.3}, \"speedup_1t\": {:.2}, \"speedup_auto\": {:.2}}}{}\n",
            case.name,
            t_interp * 1e3,
            t_vm1 * 1e3,
            t_vmn * 1e3,
            speedup1,
            speedupn,
            if i + 1 < cases.len() { "," } else { "" }
        ));

        // Also register per-step timings with the harness for uniform output.
        let small = small_for(&case.pattern, 64, 64);
        let mut g = c.benchmark_group(case.name);
        g.bench_function("interpreted_step_64", |b| {
            b.iter(|| interp.step_reference(&small).expect("runs"))
        });
        g.bench_function("compiled_step_64", |b| {
            b.iter(|| compiled1.step(&small).expect("runs"))
        });
        g.finish();
    }
    json.push_str("  ]\n}\n");
    // cargo runs benches with the package directory as cwd; anchor the
    // trajectory file at the workspace root instead.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("can write BENCH_sim.json");
    println!("wrote {path}");
    c.final_summary();
}

/// A noise frame set shaped to the pattern's field count.
fn small_for(pattern: &StencilPattern, w: usize, h: usize) -> FrameSet {
    let n = pattern.fields().len();
    FrameSet::from_frames((0..n).map(|i| synthetic::noise(w, h, 7 + i as u64)).collect())
        .expect("frames")
}
