//! Criterion benchmarks of the synthesis-simulator substrate and the Eq. 1
//! estimator — including the headline comparison: estimating an
//! architecture's area vs "synthesising" it.

use isl_bench::harness::{BenchmarkId, Criterion};
use isl_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use isl_hls::algorithms::gaussian_igf;
use isl_hls::prelude::*;

fn bench_synthesis(c: &mut Criterion) {
    let device = Device::virtex6_xc6vlx760();
    let synth = Synthesizer::new(&device);
    let flow = IslFlow::from_algorithm(&gaussian_igf()).expect("compiles");
    let pattern = flow.pattern().clone();

    let mut group = c.benchmark_group("synthesis");
    for (side, depth) in [(2u32, 1u32), (4, 2), (8, 2), (8, 5)] {
        group.bench_with_input(
            BenchmarkId::new("igf", format!("w{side}_d{depth}")),
            &(side, depth),
            |b, &(side, depth)| {
                b.iter(|| {
                    synth
                        .synthesize(black_box(&pattern), Window::square(side), depth, 1)
                        .expect("synthesises")
                })
            },
        );
    }
    group.finish();
}

fn bench_estimation_vs_synthesis(c: &mut Criterion) {
    let device = Device::virtex6_xc6vlx760();
    let synth = Synthesizer::new(&device);
    let flow = IslFlow::from_algorithm(&gaussian_igf()).expect("compiles");
    let pattern = flow.pattern().clone();
    let estimator = AreaEstimator::calibrate(
        &synth,
        &pattern,
        2,
        &[Window::square(1), Window::square(2)],
    )
    .expect("calibrates");
    let cone = flow.build_cone(Window::square(8), 2).expect("builds");
    let registers = cone.registers() as u64;

    let mut group = c.benchmark_group("area_of_w8_d2");
    group.bench_function("eq1_estimate", |b| {
        b.iter(|| estimator.estimate(black_box(registers)))
    });
    group.bench_function("full_synthesis", |b| {
        b.iter(|| {
            synth
                .synthesize(black_box(&pattern), Window::square(8), 2, 1)
                .expect("synthesises")
        })
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let flow = IslFlow::from_algorithm(&gaussian_igf()).expect("compiles");
    let sim = flow.simulator().expect("simulates");
    let init = FrameSet::from_frames(vec![isl_hls::sim::synthetic::noise(64, 48, 3)])
        .expect("frames");

    let mut group = c.benchmark_group("simulation_64x48_4iters");
    group.bench_function("golden", |b| {
        b.iter(|| sim.run(black_box(&init), 4).expect("runs"))
    });
    group.bench_function("tiled_w4_d2", |b| {
        b.iter(|| {
            sim.run_tiled(black_box(&init), 4, Window::square(4), 2)
                .expect("runs")
        })
    });
    group.bench_function("cone_dag_w4_d2", |b| {
        b.iter(|| {
            sim.run_cone_dag(black_box(&init), 4, Window::square(4), 2)
                .expect("runs")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_synthesis,
    bench_estimation_vs_synthesis,
    bench_simulation
);
criterion_main!(benches);
