//! Criterion benchmarks of the figure-regeneration experiments themselves —
//! how long each paper experiment takes to reproduce with this library.

use isl_bench::harness::Criterion;
use isl_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use isl_bench::{area_validation, throughput_sweep};
use isl_hls::algorithms::gaussian_igf;
use isl_hls::prelude::*;

fn bench_fig5(c: &mut Criterion) {
    let device = Device::virtex6_xc6vlx760();
    c.bench_function("figures/fig5_igf_area_grid_6x3", |b| {
        b.iter(|| {
            area_validation(
                black_box(&gaussian_igf()),
                &device,
                &[1, 2, 3, 4, 5, 6],
                &[1, 2, 3],
            )
            .expect("validates")
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    let device = Device::virtex6_xc6vlx760();
    let flow = IslFlow::from_algorithm(&gaussian_igf()).expect("compiles");
    let space = DesignSpace::paper();
    c.bench_function("figures/fig6_igf_pareto_paper_space", |b| {
        b.iter(|| {
            flow.explore(&device, flow.workload(1024, 768), black_box(&space))
                .expect("explores")
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    let device = Device::virtex6_xc6vlx760();
    c.bench_function("figures/fig7_igf_throughput_3x2", |b| {
        b.iter(|| {
            throughput_sweep(
                black_box(&gaussian_igf()),
                &device,
                (1024, 768),
                &[3, 5, 7],
                &[1, 2],
            )
            .expect("sweeps")
        })
    });
}

criterion_group!(benches, bench_fig5, bench_fig6, bench_fig7);
criterion_main!(benches);
