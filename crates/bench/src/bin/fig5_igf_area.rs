//! Figure 5 — IGF area estimation: actual vs Eq. 1 estimate, one curve per
//! depth, x axis = output window area.
//!
//! Paper: maximum estimation error 6.58 %, average 2.93 %, with α calibrated
//! from two syntheses per curve.

#![forbid(unsafe_code)]

use isl_bench::{area_validation, compare, rule};
use isl_hls::algorithms::gaussian_igf;
use isl_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rule("Figure 5: IGF area estimation (Virtex-6)");
    let device = Device::virtex6_xc6vlx760();
    let sides: Vec<u32> = (1..=9).collect();
    let depths: Vec<u32> = (1..=5).collect();
    let e = area_validation(&gaussian_igf(), &device, &sides, &depths)?;

    println!("depth  win-area  registers  actual-kLUT  est-kLUT  err-%  calib");
    for r in &e.rows {
        println!(
            "{:>5}  {:>8}  {:>9}  {:>11.1}  {:>8.1}  {:>5.2}  {}",
            r.depth,
            r.window_area,
            r.registers,
            r.actual_kluts,
            r.estimated_kluts,
            r.error_pct,
            if r.calibration { "*" } else { "" }
        );
    }
    let csv = isl_bench::write_csv(
        "fig5_igf_area",
        &["depth", "window_area", "registers", "actual_kluts", "estimated_kluts", "error_pct", "calibration"],
        e.rows.iter().map(|r| vec![
            r.depth.to_string(),
            r.window_area.to_string(),
            r.registers.to_string(),
            format!("{:.2}", r.actual_kluts),
            format!("{:.2}", r.estimated_kluts),
            format!("{:.3}", r.error_pct),
            r.calibration.to_string(),
        ]),
    )?;
    println!("(csv written to {})", csv.display());
    println!();
    compare("max estimation error", 6.58, e.max_error_pct, "%");
    compare("avg estimation error", 2.93, e.avg_error_pct, "%");
    println!(
        "  modeled synthesis cost: calibration {:.0} s vs full grid {:.0} s ({:.0}x saved)",
        e.calibration_cpu_s,
        e.full_synthesis_cpu_s,
        e.full_synthesis_cpu_s / e.calibration_cpu_s.max(1e-9)
    );
    Ok(())
}
