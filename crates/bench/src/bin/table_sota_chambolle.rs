//! Section 4.2 prose comparison — Chambolle vs the hand-made design \[19\]
//! (Akin 2011, "designed by hand in several months of work"):
//!
//! * \[19\]: 38 fps at 1024x768, 99 fps at 512x512;
//! * the paper's automatic flow: 24 fps at 1024x768, 72 fps at 512x512 —
//!   "comparable results" for zero manual effort.

#![forbid(unsafe_code)]

use isl_bench::{best_fps, compare, rule};
use isl_hls::algorithms::chambolle;
use isl_hls::baselines::published_references;
use isl_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rule("Table B (Sec. 4.2): Chambolle vs the hand design [19]");
    for r in published_references()
        .iter()
        .filter(|r| r.citation.contains("[19]"))
    {
        println!(
            "  literature: {} — {} at {}x{}: {} fps ({})",
            r.citation, r.algorithm, r.resolution.0, r.resolution.1, r.fps, r.note
        );
    }
    println!();

    let device = Device::virtex6_xc6vlx760();
    let sides: Vec<u32> = (2..=9).collect();
    let depths: Vec<u32> = (1..=5).collect();

    let (fps_big, arch_big) = best_fps(&chambolle(), &device, (1024, 768), &sides, &depths)?;
    compare("flow, Chambolle 1024x768", 24.0, fps_big, "fps");
    println!(
        "    best architecture: window {}, depth {}, {} cores",
        arch_big.window, arch_big.depth, arch_big.cores
    );

    let (fps_small, arch_small) = best_fps(&chambolle(), &device, (512, 512), &sides, &depths)?;
    compare("flow, Chambolle 512x512", 72.0, fps_small, "fps");
    println!(
        "    best architecture: window {}, depth {}, {} cores",
        arch_small.window, arch_small.depth, arch_small.cores
    );

    let manual = 38.0;
    println!(
        "\n  automatic/manual ratio at 1024x768: paper {:.2}, measured {:.2} (claim: comparable, i.e. within ~2x)",
        24.0 / manual,
        fps_big / manual
    );
    Ok(())
}
