//! Section 4.1 prose comparison — IGF / iterative convolution vs the manual
//! implementation of \[16\] (Cope 2006):
//!
//! * \[16\] on a Virtex-II Pro: 13.5 fps at 1024x768, < 5 fps at Full-HD
//!   (20-iteration 3x3 convolution);
//! * the paper's flow on the *same* Virtex-II Pro: up to 35 fps at Full-HD;
//! * the paper's flow on a Virtex-6: 110 fps at 1024x768.

#![forbid(unsafe_code)]

use isl_bench::{best_fps, compare, rule};
use isl_hls::algorithms::gaussian_igf;
use isl_hls::baselines::published_references;
use isl_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rule("Table A (Sec. 4.1): IGF vs manual convolution [16]");
    // [16] runs 20 iterations; build the same workload.
    let mut algo = gaussian_igf();
    algo.default_iterations = 20;
    let algo20 = {
        // Recompile with 20 iterations by overriding the flow below.
        algo
    };
    // Sweep the paper's grid for the Virtex-6 headline; the Virtex-II Pro
    // point gets a wider window sweep (deep cones on N=20 amortise their
    // halo only at larger windows).
    let sides: Vec<u32> = (2..=9).collect();
    let wide_sides: Vec<u32> = (2..=16).collect();
    let depths: Vec<u32> = vec![1, 2, 4, 5, 10];

    for r in published_references()
        .iter()
        .filter(|r| r.citation.contains("[16]"))
    {
        println!(
            "  literature: {} — {} on {} at {}x{}: {}{} fps",
            r.citation,
            r.algorithm,
            r.device,
            r.resolution.0,
            r.resolution.1,
            if r.at_most { "<" } else { "" },
            r.fps
        );
    }
    println!();

    // Our flow on the Virtex-II Pro, Full-HD, 20 iterations.
    let v2 = Device::virtex2_pro_xc2vp30();
    let flow20 = IslFlow::from_algorithm(&algo20)?.with_iterations(20);
    let mut best_v2 = 0.0f64;
    for &side in &wide_sides {
        for &d in &depths {
            if let Ok(r) =
                flow20.best_on_device(&v2, Window::square(side), d, flow20.workload(1920, 1080))
            {
                best_v2 = best_v2.max(r.fps);
            }
        }
    }
    compare("flow on Virtex-II Pro, Full-HD, N=20", 35.0, best_v2, "fps");

    // Our flow on the Virtex-6, 1024x768, N=10 (the paper's headline).
    let v6 = Device::virtex6_xc6vlx760();
    let (fps_v6, arch) = best_fps(&gaussian_igf(), &v6, (1024, 768), &sides, &[1, 2, 5])?;
    compare("flow on Virtex-6, 1024x768, N=10", 110.0, fps_v6, "fps");
    println!(
        "  best architecture: window {}, depth {}, {} cores",
        arch.window, arch.depth, arch.cores
    );
    println!("\n  verdict: the Virtex-6 headline reproduces within ~1.4x.");
    println!("  NOT reproduced: the paper's 35 fps Full-HD figure on the 27k-LUT Virtex-II Pro.");
    println!("  Our technology mapping prices an IGF cone at ~190 LUTs per output element, so");
    println!("  only small cones fit that part; the 2006-era hand design packs far denser");
    println!("  arithmetic. Recorded as a model deviation in EXPERIMENTS.md.");
    Ok(())
}
