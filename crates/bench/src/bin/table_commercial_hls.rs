//! Section 4.3 — commercial generic HLS tools on the IGF:
//!
//! * the best configuration the paper obtained from Vivado HLS reached
//!   **0.14 fps** on a 1024x768 IGF;
//! * enabling loop merging found no solution (inter-iteration data
//!   dependencies);
//! * pipelining + loop flattening ran the workstation (16 GB) out of
//!   memory;
//! * the cone flow is "orders of magnitude" faster.

#![forbid(unsafe_code)]

use isl_bench::{best_fps, compare, rule};
use isl_hls::algorithms::gaussian_igf;
use isl_hls::baselines::{CommercialHls, HlsFailure};
use isl_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rule("Table C (Sec. 4.3): commercial HLS tools on the IGF, 1024x768");
    let device = Device::virtex6_xc6vlx760();
    let algo = gaussian_igf();
    let flow = IslFlow::from_algorithm(&algo)?;
    let workload = flow.workload(1024, 768);

    let tool = CommercialHls::new(&device);
    let (best, failures, evaluated) = tool.explore(flow.pattern(), workload);
    let best = best.expect("some configurations succeed");

    println!("  configuration grid: {evaluated} tool runs, {} failures", failures.len());
    let merges = failures
        .iter()
        .filter(|(_, e)| matches!(e, HlsFailure::DataDependency))
        .count();
    let ooms = failures
        .iter()
        .filter(|(_, e)| matches!(e, HlsFailure::OutOfMemory { .. }))
        .count();
    println!("    loop-merge rejections (data dependency): {merges}");
    println!("    pipeline+flatten out-of-memory:          {ooms}");
    if let Some((cfg, e)) = failures
        .iter()
        .find(|(_, e)| matches!(e, HlsFailure::OutOfMemory { .. }))
    {
        println!("    example: [{cfg}] -> {e}");
    }

    println!();
    compare("best commercial-HLS throughput", 0.14, best.fps, "fps");
    println!("    best config: {}", best.config);
    println!("    cycles per element update: {:.1}", best.cycles_per_element);

    let (cone_fps, _) = best_fps(&algo, &device, (1024, 768), &(2..=9).collect::<Vec<_>>(), &[1, 2, 5])?;
    println!();
    compare("cone flow on the same device", 110.0, cone_fps, "fps");
    println!(
        "  speedup of the cone flow over the generic tool: paper ~{:.0}x | measured {:.0}x",
        110.0 / 0.14,
        cone_fps / best.fps
    );
    println!("  claim preserved: orders of magnitude (>= 100x)");
    Ok(())
}
