//! Figure 6 — IGF Pareto curve: time-per-frame vs kLUTs for 1024x768
//! frames, from the exhaustive exploration of the architecture space.
//!
//! Paper: the space holds a few hundreds of solutions; the Pareto knee sits
//! in the tens-of-milliseconds region.

#![forbid(unsafe_code)]

use isl_bench::rule;
use isl_hls::algorithms::gaussian_igf;
use isl_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rule("Figure 6: IGF Pareto curve, 1024x768 (Virtex-6)");
    let device = Device::virtex6_xc6vlx760();
    let flow = IslFlow::from_algorithm(&gaussian_igf())?;
    let result = flow.explore(&device, flow.workload(1024, 768), &DesignSpace::paper())?;

    println!(
        "evaluated {} feasible architectures ({} skipped as infeasible), {} calibration syntheses",
        result.points().len(),
        result.skipped_infeasible(),
        result.calibration_syntheses()
    );
    println!("\nPareto set (area ascending, time descending):");
    println!("  kLUTs      time/frame      fps   window depth cores  bound");
    for p in result.pareto() {
        println!(
            "  {:>8.1}  {:>9.2} ms  {:>7.1}   {:>6} {:>5} {:>5}  {}",
            p.estimated_luts / 1e3,
            p.time_per_frame_s * 1e3,
            p.fps,
            p.arch.window.to_string(),
            p.arch.depth,
            p.arch.cores,
            if p.transfer_bound { "mem" } else { "cpu" }
        );
    }

    let fastest = result.fastest().expect("feasible space");
    let smallest = result.smallest().expect("feasible space");
    println!(
        "\nextremes: fastest {:.1} fps @ {:.0} kLUTs | smallest {:.0} kLUTs @ {:.2} s/frame",
        fastest.fps,
        fastest.estimated_luts / 1e3,
        smallest.estimated_luts / 1e3,
        smallest.time_per_frame_s
    );
    println!("paper reference: \"a few hundreds of solutions\" evaluated exhaustively");
    Ok(())
}
