//! Extra experiment E2 — estimation cost vs exhaustive synthesis
//! (Section 3.3): "an obvious way to determine area and performance would be
//! to synthesize all the cones of every window size and depth but, for
//! typical problem sizes, the synthesis may take days of CPU time".
//!
//! The synthesis simulator attaches a modeled CPU time to every run, so the
//! claim becomes checkable: compare the modeled cost of synthesising the
//! whole grid against the two-syntheses-per-depth calibration the flow
//! actually performs, and against the measured wall-clock of the estimator.

#![forbid(unsafe_code)]

use std::time::Instant;

use isl_bench::{area_validation, rule};
use isl_hls::algorithms::{chambolle, gaussian_igf};
use isl_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rule("Extra E2: estimation cost vs exhaustive synthesis");
    let device = Device::virtex6_xc6vlx760();
    let sides: Vec<u32> = (1..=9).collect();
    let depths: Vec<u32> = (1..=5).collect();

    for algo in [gaussian_igf(), chambolle()] {
        let t0 = Instant::now();
        let e = area_validation(&algo, &device, &sides, &depths)?;
        let wall = t0.elapsed();
        let full_h = e.full_synthesis_cpu_s / 3600.0;
        let calib_min = e.calibration_cpu_s / 60.0;
        println!("\n{}:", algo.name);
        println!(
            "  exhaustive synthesis of the {}-point grid: {:.1} h of modeled tool time",
            e.rows.len(),
            full_h
        );
        println!(
            "  calibration actually performed:            {:.1} min ({} syntheses)",
            calib_min,
            2 * depths.len()
        );
        println!(
            "  saving: {:.0}x  |  estimation accuracy: max {:.2} %, avg {:.2} %",
            e.full_synthesis_cpu_s / e.calibration_cpu_s.max(1e-9),
            e.max_error_pct,
            e.avg_error_pct
        );
        println!(
            "  (this reproduction's estimator wall-clock for the same grid: {:.2} s)",
            wall.as_secs_f64()
        );
    }
    println!("\n  claim preserved: full-grid synthesis costs hours-to-days of tool time;");
    println!("  the estimation model needs two syntheses per depth and is accurate to a few percent.");
    Ok(())
}
