//! Figure 10 — Chambolle throughput vs output window area on the Virtex-6,
//! 1024x768 frames.
//!
//! Paper: the best solution is *not* the largest window (9x9) but 8x8,
//! because two 8x8 cones fit the device while only one 9x9 does — the
//! area-granularity effect the estimation flow is built to expose. Headline:
//! ~24 fps at 1024x768.

#![forbid(unsafe_code)]

use isl_bench::{compare, rule, throughput_sweep};
use isl_hls::algorithms::chambolle;
use isl_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rule("Figure 10: Chambolle throughput on Virtex-6 XC6VLX760, 1024x768");
    let device = Device::virtex6_xc6vlx760();
    let sides: Vec<u32> = (2..=9).collect();
    let depths: Vec<u32> = (1..=5).collect();
    let rows = throughput_sweep(&chambolle(), &device, (1024, 768), &sides, &depths)?;

    println!("win-area |     d=1      d=2      d=3      d=4      d=5   (fps, cores in parens)");
    for &side in &sides {
        let area = u64::from(side) * u64::from(side);
        print!("{area:>8} |");
        for &d in &depths {
            let r = rows
                .iter()
                .find(|r| r.window_area == area && r.depth == d)
                .expect("swept");
            if r.feasible {
                print!(" {:>5.1}({:>2})", r.fps, r.cores);
            } else {
                print!("   inf.   ");
            }
        }
        println!();
    }

    let csv = isl_bench::write_csv(
        "fig10_chambolle_throughput",
        &["window_area", "depth", "fps", "cores", "feasible"],
        rows.iter().map(|r| vec![
            r.window_area.to_string(),
            r.depth.to_string(),
            format!("{:.2}", r.fps),
            r.cores.to_string(),
            r.feasible.to_string(),
        ]),
    )?;
    println!("(csv written to {})", csv.display());

    let best = rows
        .iter()
        .filter(|r| r.feasible)
        .max_by(|a, b| a.fps.partial_cmp(&b.fps).expect("finite"))
        .expect("feasible rows");
    println!();
    compare("best Chambolle throughput", 24.0, best.fps, "fps");
    println!(
        "  best architecture: window area {} elements, depth {}, {} cores",
        best.window_area, best.depth, best.cores
    );

    // The 8x8-vs-9x9 granularity effect at depth 1.
    let at = |area: u64| {
        rows.iter()
            .find(|r| r.window_area == area && r.depth == 1)
            .expect("swept")
    };
    let w64 = at(64);
    let w81 = at(81);
    println!(
        "\n  granularity check (depth 1): 8x8 -> {:.1} fps with {} cores | 9x9 -> {:.1} fps with {} cores",
        w64.fps, w64.cores, w81.fps, w81.cores
    );
    println!("  paper: 8x8 wins because two cones fit where one 9x9 does");
    Ok(())
}
