//! Extra experiment E1 — the memory/performance conflict of the classic
//! two-frame-buffer architecture (Section 2.2), quantified over frame sizes.
//!
//! The paper's argument: either the on-chip memory holds whole frames
//! ("several MBs... expensive and power-consuming") or the performance is
//! "bound by the memory transfers between the off-chip and the on-chip
//! memories at each iteration". The cone architecture's on-chip requirement
//! is frame-size independent.

#![forbid(unsafe_code)]

use isl_bench::rule;
use isl_hls::algorithms::gaussian_igf;
use isl_hls::baselines::FrameBufferModel;
use isl_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rule("Extra E1: frame-buffer memory/performance conflict (IGF, N=10)");
    let flow = IslFlow::from_algorithm(&gaussian_igf())?;

    for device in [Device::small_multimedia(), Device::virtex6_xc6vlx760()] {
        println!(
            "\ndevice {} ({} kb BRAM):",
            device.name, device.bram_kbits
        );
        println!("  frame        buffers-needed  fits?  bound     fps");
        let model = FrameBufferModel::new(&device);
        for (w, h) in [(128, 128), (256, 256), (512, 512), (1024, 768), (1920, 1080)] {
            let r = model.evaluate(flow.pattern(), flow.workload(w, h))?;
            println!(
                "  {:>4}x{:<5}  {:>11.2} MB  {:>5}  {:>8}  {:>7.1}",
                w,
                h,
                r.buffer_bytes_required as f64 / 1e6,
                if r.fits_on_chip { "yes" } else { "no" },
                if r.transfer_bound { "memory" } else { "compute" },
                r.fps
            );
        }

        // The cone architecture's on-chip need at the same workloads is a
        // single input window, independent of the frame size.
        let cone = flow.build_cone(Window::square(8), 2)?;
        let window_bytes =
            (cone.inputs().len() + cone.static_inputs().len()) * 3; // Q8.10 in 3 bytes
        println!(
            "  (cone architecture on-chip requirement: {} bytes per cone, frame-size independent)",
            window_bytes
        );
    }
    println!("\n  claim preserved: the frame-buffer design needs MBs on chip or goes memory-bound;");
    println!("  the cone template needs a fixed few-hundred-byte window either way.");
    Ok(())
}
