//! Figure 9 — Chambolle Pareto curve: time-per-frame vs kLUTs, 1024x768.

#![forbid(unsafe_code)]

use isl_bench::rule;
use isl_hls::algorithms::chambolle;
use isl_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rule("Figure 9: Chambolle Pareto curve, 1024x768 (Virtex-6)");
    let device = Device::virtex6_xc6vlx760();
    let flow = IslFlow::from_algorithm(&chambolle())?;
    // Chambolle cones are an order of magnitude heavier than IGF cones, so
    // the feasible windows/depths are smaller — exactly the paper's point.
    let space = DesignSpace::new(1..=9, 1..=5, 16);
    let result = flow.explore(&device, flow.workload(1024, 768), &space)?;

    println!(
        "evaluated {} feasible architectures ({} skipped as infeasible)",
        result.points().len(),
        result.skipped_infeasible()
    );
    println!("\nPareto set:");
    println!("  kLUTs      time/frame      fps   window depth cores");
    for p in result.pareto() {
        println!(
            "  {:>8.1}  {:>9.1} ms  {:>7.1}   {:>6} {:>5} {:>5}",
            p.estimated_luts / 1e3,
            p.time_per_frame_s * 1e3,
            p.fps,
            p.arch.window.to_string(),
            p.arch.depth,
            p.arch.cores
        );
    }
    Ok(())
}
