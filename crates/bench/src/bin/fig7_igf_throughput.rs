//! Figure 7 — IGF throughput vs output window area on a packed Virtex-6
//! XC6VLX760, one curve per cone depth, 1024x768 frames, N = 10.
//!
//! Paper: depths that divide N = 10 (1, 2, 5) beat depths 3 and 4, which
//! must allocate an additional remainder core; the best architectures reach
//! ~110 fps; curves are non-monotone in the window size because smaller
//! cones sometimes pack the device better.

#![forbid(unsafe_code)]

use isl_bench::{compare, rule, throughput_sweep};
use isl_hls::algorithms::gaussian_igf;
use isl_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    rule("Figure 7: IGF throughput on Virtex-6 XC6VLX760, 1024x768");
    let device = Device::virtex6_xc6vlx760();
    let sides: Vec<u32> = (2..=9).collect();
    let depths: Vec<u32> = (1..=5).collect();
    let rows = throughput_sweep(&gaussian_igf(), &device, (1024, 768), &sides, &depths)?;

    println!("win-area |     d=1      d=2      d=3      d=4      d=5   (fps, cores in parens)");
    for &side in &sides {
        let area = u64::from(side) * u64::from(side);
        print!("{area:>8} |");
        for &d in &depths {
            let r = rows
                .iter()
                .find(|r| r.window_area == area && r.depth == d)
                .expect("swept");
            if r.feasible {
                print!(" {:>5.1}({:>2})", r.fps, r.cores);
            } else {
                print!("   inf.   ");
            }
        }
        println!();
    }

    let csv = isl_bench::write_csv(
        "fig7_igf_throughput",
        &["window_area", "depth", "fps", "cores", "feasible"],
        rows.iter().map(|r| vec![
            r.window_area.to_string(),
            r.depth.to_string(),
            format!("{:.2}", r.fps),
            r.cores.to_string(),
            r.feasible.to_string(),
        ]),
    )?;
    println!("(csv written to {})", csv.display());

    let best = rows
        .iter()
        .filter(|r| r.feasible)
        .max_by(|a, b| a.fps.partial_cmp(&b.fps).expect("finite"))
        .expect("feasible rows");
    println!();
    compare("best IGF throughput", 110.0, best.fps, "fps");

    // The divisor effect, aggregated over the window sweep.
    let avg = |d: u32| {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| r.depth == d && r.feasible)
            .map(|r| r.fps)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!("\n  mean fps per depth (divisors of 10 should lead):");
    for d in 1..=5u32 {
        let marker = if 10 % d == 0 { "divisor" } else { "       " };
        println!("    depth {d} ({marker}): {:>6.1} fps", avg(d));
    }
    Ok(())
}
