//! Ablations of the flow's design decisions — what each mechanism buys.
//!
//! Four switches, each corresponding to a claim in the paper:
//!
//! 1. **register reuse** (Section 3.2): interned DAG registers vs the naive
//!    per-output expression tree — "the exponential explosion of the number
//!    of symbols is avoided by enforcing data reuse";
//! 2. **algebraic simplification**: the "slim VHDL" effect of folding
//!    constants and pruning identities during cone construction;
//! 3. **inter-cone logic sharing** (Section 3.3): why area grows
//!    non-linearly in the number of cones — the thing α models;
//! 4. **calibration depth**: accuracy of Eq. 1 with 2 vs 4 syntheses
//!    ("the higher the number, the more accurate the estimation").

#![forbid(unsafe_code)]

use isl_bench::rule;
use isl_hls::algorithms::{chambolle, gaussian_igf};
use isl_hls::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::virtex6_xc6vlx760();

    rule("Ablation 1: register reuse vs naive expression trees (IGF, window 6x6)");
    let flow = IslFlow::from_algorithm(&gaussian_igf())?;
    println!("  depth  registers(DAG)  tree-ops(no reuse)   reuse factor");
    for depth in 1..=5u32 {
        let cone = flow.build_cone(Window::square(6), depth)?;
        println!(
            "  {:>5}  {:>14}  {:>18.0}  {:>12.1}x",
            depth,
            cone.registers(),
            cone.tree_op_count(),
            cone.tree_op_count() / cone.registers() as f64
        );
    }
    println!("  (the tree grows ~13^d for the 3x3 kernel; the DAG grows with the cone volume)");

    rule("Ablation 2: algebraic simplification (constant folding, identities)");
    println!("  algorithm   simplified-regs  raw-regs   saved");
    for algo in [gaussian_igf(), chambolle()] {
        let flow = IslFlow::from_algorithm(&algo)?;
        let simplified = flow.build_cone(Window::square(4), 2)?;
        let raw = isl_hls::ir::Cone::build_with(flow.pattern(), Window::square(4), 2, false)?;
        println!(
            "  {:<10}  {:>15}  {:>8}  {:>5.1}%",
            algo.name,
            simplified.registers(),
            raw.registers(),
            100.0 * (1.0 - simplified.registers() as f64 / raw.registers() as f64)
        );
    }

    rule("Ablation 3: inter-cone logic sharing (IGF, window 4x4, depth 2)");
    let flow = IslFlow::from_algorithm(&gaussian_igf())?;
    let with = Synthesizer::with_options(
        &device,
        SynthOptions { jitter: false, ..SynthOptions::default() },
    );
    let without = Synthesizer::with_options(
        &device,
        SynthOptions { jitter: false, inter_cone_sharing: false, ..SynthOptions::default() },
    );
    println!("  cones   LUTs(shared)  LUTs(no sharing)  saved");
    for n in [1u32, 2, 4, 8, 16] {
        let a = with.synthesize(flow.pattern(), Window::square(4), 2, n)?;
        let b = without.synthesize(flow.pattern(), Window::square(4), 2, n)?;
        println!(
            "  {:>5}  {:>12}  {:>16}  {:>5.1}%",
            n,
            a.luts,
            b.luts,
            100.0 * (1.0 - a.luts as f64 / b.luts as f64)
        );
    }
    println!("  (this sub-linearity is exactly what Eq. 1's alpha absorbs)");

    rule("Ablation 4: calibration syntheses vs estimation accuracy (IGF)");
    let windows: Vec<Window> = (1..=8).map(Window::square).collect();
    println!("  calibration-points  max-err  avg-err");
    for points in [2usize, 3, 4] {
        let v = flow.validate_area_model(&device, &windows, &[1, 2, 3], points)?;
        println!(
            "  {:>18}  {:>6.2}%  {:>6.2}%",
            points, v.max_error_pct, v.avg_error_pct
        );
    }
    println!("  (the paper: \"if a higher accuracy is needed, more initial synthesis need to be performed\")");
    Ok(())
}
