//! # isl-bench — experiment harness for every table and figure of the paper
//!
//! Each experiment of the DAC 2013 evaluation has a regeneration function
//! here and a binary under `src/bin` that prints the paper's value next to
//! the measured one (see `EXPERIMENTS.md` at the repository root for the
//! index and the recorded results). The Criterion benches under `benches/`
//! measure the *flow itself* (symbolic execution, cone construction,
//! estimation, exploration) rather than the modeled hardware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use isl_hls::algorithms::Algorithm;
use isl_hls::prelude::*;

/// One point of the Figure 5 / Figure 8 experiments.
#[derive(Debug, Clone)]
pub struct AreaRow {
    /// Cone depth (one curve per depth in the figures).
    pub depth: u32,
    /// Output window area, elements (the x axis).
    pub window_area: u64,
    /// Registers of the cone.
    pub registers: u64,
    /// Synthesised ("actual") kLUTs.
    pub actual_kluts: f64,
    /// Estimated kLUTs (Eq. 1).
    pub estimated_kluts: f64,
    /// Relative error, percent.
    pub error_pct: f64,
    /// Whether the point fed the α calibration.
    pub calibration: bool,
}

/// Result of an area-model validation experiment.
#[derive(Debug, Clone)]
pub struct AreaExperiment {
    /// All grid points.
    pub rows: Vec<AreaRow>,
    /// Max |error| over non-calibration points, percent.
    pub max_error_pct: f64,
    /// Mean |error| over non-calibration points, percent.
    pub avg_error_pct: f64,
    /// Modeled CPU cost of synthesising the whole grid, seconds.
    pub full_synthesis_cpu_s: f64,
    /// Modeled CPU cost of the calibration syntheses only, seconds.
    pub calibration_cpu_s: f64,
}

/// Run the Figure 5 / Figure 8 area-model validation for one algorithm.
///
/// # Errors
///
/// Propagates flow errors (which do not occur for the built-in algorithms).
pub fn area_validation(
    algo: &Algorithm,
    device: &Device,
    sides: &[u32],
    depths: &[u32],
) -> Result<AreaExperiment, FlowError> {
    let flow = IslFlow::from_algorithm(algo)?;
    let windows: Vec<Window> = sides.iter().map(|&s| Window::square(s)).collect();
    let v = flow.validate_area_model(device, &windows, depths, 2)?;
    Ok(AreaExperiment {
        rows: v
            .rows
            .iter()
            .map(|r| AreaRow {
                depth: r.depth,
                window_area: r.window.area(),
                registers: r.registers,
                actual_kluts: r.actual_luts as f64 / 1e3,
                estimated_kluts: r.estimated_luts / 1e3,
                error_pct: r.error_pct,
                calibration: r.calibration,
            })
            .collect(),
        max_error_pct: v.max_error_pct,
        avg_error_pct: v.avg_error_pct,
        full_synthesis_cpu_s: v.full_synthesis_cpu_s,
        calibration_cpu_s: v.calibration_cpu_s,
    })
}

/// Run the Figure 6 / Figure 9 Pareto exploration for one algorithm.
///
/// # Errors
///
/// Propagates flow errors.
pub fn pareto_curve(
    algo: &Algorithm,
    device: &Device,
    frame: (u32, u32),
    space: &DesignSpace,
) -> Result<Exploration, FlowError> {
    let flow = IslFlow::from_algorithm(algo)?;
    flow.explore(device, flow.workload(frame.0, frame.1), space)
}

/// One point of the Figure 7 / Figure 10 experiments.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Output window area (x axis).
    pub window_area: u64,
    /// Cone depth (one curve per depth).
    pub depth: u32,
    /// Frames per second with the device packed full.
    pub fps: f64,
    /// Cores that fit.
    pub cores: u32,
    /// Whether the architecture was feasible at all.
    pub feasible: bool,
}

/// Run the Figure 7 / Figure 10 device-constrained throughput sweep.
///
/// # Errors
///
/// Propagates flow errors (infeasible points are reported per-row instead).
pub fn throughput_sweep(
    algo: &Algorithm,
    device: &Device,
    frame: (u32, u32),
    sides: &[u32],
    depths: &[u32],
) -> Result<Vec<ThroughputRow>, FlowError> {
    let flow = IslFlow::from_algorithm(algo)?;
    let workload = flow.workload(frame.0, frame.1);
    let mut rows = Vec::new();
    for &side in sides {
        for &depth in depths {
            if depth > flow.iterations() {
                continue;
            }
            match flow.best_on_device(device, Window::square(side), depth, workload) {
                Ok(r) => rows.push(ThroughputRow {
                    window_area: u64::from(side) * u64::from(side),
                    depth,
                    fps: r.fps,
                    cores: r.arch.cores,
                    feasible: true,
                }),
                Err(_) => rows.push(ThroughputRow {
                    window_area: u64::from(side) * u64::from(side),
                    depth,
                    fps: 0.0,
                    cores: 0,
                    feasible: false,
                }),
            }
        }
    }
    Ok(rows)
}

/// Best feasible fps over a window sweep at fixed depth — the headline
/// number for the state-of-the-art comparisons.
///
/// # Errors
///
/// Propagates flow errors.
pub fn best_fps(
    algo: &Algorithm,
    device: &Device,
    frame: (u32, u32),
    sides: &[u32],
    depths: &[u32],
) -> Result<(f64, Architecture), FlowError> {
    let rows = throughput_sweep(algo, device, frame, sides, depths)?;
    let best = rows
        .iter()
        .filter(|r| r.feasible)
        .max_by(|a, b| a.fps.partial_cmp(&b.fps).expect("fps is finite"));
    match best {
        Some(r) => Ok((
            r.fps,
            Architecture::new(
                Window::square((r.window_area as f64).sqrt() as u32),
                r.depth,
                r.cores,
            ),
        )),
        None => Err(FlowError::Estimation("no feasible architecture".into())),
    }
}

/// Write a CSV artifact next to the printed table so results can be
/// plotted directly (lands under `target/experiments/`).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_csv(
    name: &str,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Pretty separator line for the binaries.
pub fn rule(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Format a paper-vs-measured comparison line.
pub fn compare(label: &str, paper: f64, measured: f64, unit: &str) {
    let ratio = if paper != 0.0 { measured / paper } else { f64::NAN };
    println!("  {label:<44} paper {paper:>8.2} {unit} | measured {measured:>8.2} {unit} (x{ratio:.2})");
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_hls::algorithms::gaussian_igf;

    #[test]
    fn area_validation_smoke() {
        let dev = Device::virtex6_xc6vlx760();
        let e = area_validation(&gaussian_igf(), &dev, &[1, 2, 3, 4], &[1, 2]).unwrap();
        assert_eq!(e.rows.len(), 8);
        assert!(e.max_error_pct < 15.0);
        assert!(e.calibration_cpu_s < e.full_synthesis_cpu_s);
    }

    #[test]
    fn throughput_sweep_smoke() {
        let dev = Device::virtex6_xc6vlx760();
        let rows =
            throughput_sweep(&gaussian_igf(), &dev, (256, 192), &[2, 4], &[1, 2]).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.feasible));
    }

    #[test]
    fn best_fps_finds_a_point() {
        let dev = Device::virtex6_xc6vlx760();
        let (fps, arch) = best_fps(&gaussian_igf(), &dev, (256, 192), &[3, 4], &[1, 2]).unwrap();
        assert!(fps > 0.0);
        assert!(arch.cores >= 1);
    }
}
