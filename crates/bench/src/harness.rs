//! A self-contained benchmark harness with a Criterion-compatible surface.
//!
//! The repository builds fully offline, so the benches cannot depend on the
//! `criterion` crate. This module provides the subset of its API the bench
//! suite uses — [`Criterion`], [`Bencher::iter`], benchmark groups,
//! [`BenchmarkId`] and the `criterion_group!`/`criterion_main!` macros — with
//! simple, robust timing: every benchmark is warmed up, batched until a batch
//! lasts long enough for `Instant` noise to be negligible, and reported as
//! the median per-iteration time over several batches.
//!
//! Set `ISL_BENCH_JSON=<path>` to additionally write the results as JSON
//! (used by CI for the perf trajectory), and `ISL_BENCH_FAST=1` to shrink
//! the measurement budget for smoke runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Fully-qualified benchmark name (`group/id`).
    pub name: String,
    /// Median per-iteration wall time, nanoseconds.
    pub median_ns: f64,
    /// Total iterations executed while measuring.
    pub iterations: u64,
}

/// Collects benchmark results (Criterion-style driver).
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Sample>,
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        let sample = b.finish(name.to_string());
        println!(
            "bench {:<48} {:>12}/iter ({} iters)",
            sample.name,
            format_ns(sample.median_ns),
            sample.iterations
        );
        self.results.push(sample);
        self
    }

    /// Open a named group; benchmark ids inside it are prefixed `group/`.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// Print a closing summary and honour `ISL_BENCH_JSON`.
    pub fn final_summary(&self) {
        println!("\n{} benchmarks measured", self.results.len());
        if let Ok(path) = std::env::var("ISL_BENCH_JSON") {
            if !path.is_empty() {
                match std::fs::write(&path, self.to_json()) {
                    Ok(()) => println!("results written to {path}"),
                    Err(e) => eprintln!("could not write {path}: {e}"),
                }
            }
        }
    }

    /// The results as a JSON document (no external serialiser available).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"iterations\": {}}}{}\n",
                r.name.replace('"', "'"),
                r.median_ns,
                r.iterations,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// A benchmark group (adds a name prefix).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.prefix, id);
        self.criterion.bench_function(name, f);
        self
    }

    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Measures one closure.
#[derive(Debug, Default)]
pub struct Bencher {
    batches: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Measure `f`, keeping its return value alive via [`std::hint::black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let fast = std::env::var("ISL_BENCH_FAST").is_ok_and(|v| v == "1");
        let (budget, min_batches) = if fast {
            (Duration::from_millis(30), 3)
        } else {
            (Duration::from_millis(250), 5)
        };
        // Warm-up and batch-size calibration: grow the batch until it runs
        // for at least ~1/20 of the budget.
        let mut batch: u64 = 1;
        let mut warm;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            warm = t0.elapsed();
            if warm * 20 >= budget || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        self.batches.push((warm, batch));
        let start = Instant::now();
        while start.elapsed() < budget || self.batches.len() < min_batches {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.batches.push((t0.elapsed(), batch));
        }
    }

    fn finish(self, name: String) -> Sample {
        assert!(!self.batches.is_empty(), "Bencher::iter was never called for {name}");
        let mut per_iter: Vec<f64> = self
            .batches
            .iter()
            .map(|(d, n)| d.as_secs_f64() * 1e9 / *n as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median_ns = per_iter[per_iter.len() / 2];
        let iterations = self.batches.iter().map(|(_, n)| n).sum();
        Sample {
            name,
            median_ns,
            iterations,
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Criterion-compatible group declaration: expands to a function running
/// every listed benchmark against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::harness::Criterion) {
            $($target(c);)+
        }
    };
}

/// Criterion-compatible entry point: expands to `fn main` running every
/// listed group and printing the final summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        // Closures here are cheap, so even the full measurement budget keeps
        // this test fast; no env mutation (racy in a threaded test binary).
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        let mut g = c.benchmark_group("grouped");
        g.bench_with_input(BenchmarkId::new("id", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[1].name, "grouped/id/3");
        assert!(c.results().iter().all(|r| r.median_ns > 0.0));
        let json = c.to_json();
        assert!(json.contains("\"benchmarks\""));
        assert!(json.contains("noop_sum"));
    }
}
