//! The flow-level error type, with pipeline-stage context.

use std::error::Error;
use std::fmt;

/// The stages of the staged pipeline API (see [`crate::IslSession`]).
///
/// Every error raised by a session method carries the stage it failed in
/// (and, where one exists, the artifact key being produced), applied by one
/// shared constructor — so a failure surfacing through the artifact store's
/// cache path reads exactly like the same failure on a cold recompute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Stage {
    /// Parsing / dependency analysis (building the [`crate::IslSession`]).
    Spec,
    /// Cone decomposition of one architecture shape.
    Decompose,
    /// Area/latency estimation and α calibration.
    Estimate,
    /// Design-space exploration.
    Explore,
    /// Precision design-space exploration (certified fixed-point format
    /// search).
    FormatSearch,
    /// Functional simulation.
    Simulate,
    /// VHDL generation / bundle assembly.
    Synthesize,
    /// Hardware co-simulation and certification.
    Certify,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Spec => "spec",
            Stage::Decompose => "decompose",
            Stage::Estimate => "estimate",
            Stage::Explore => "explore",
            Stage::FormatSearch => "format-search",
            Stage::Simulate => "simulate",
            Stage::Synthesize => "synthesize",
            Stage::Certify => "certify",
        })
    }
}

/// Any failure along the HLS flow, tagged by phase.
///
/// Marked `#[non_exhaustive]`: the staged session API adds variants (and
/// may add more), so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// Frontend / symbolic-execution failure (phase 1).
    Analysis(String),
    /// Cone construction failure (phase 2).
    Cone(String),
    /// Synthesis-simulator failure.
    Synthesis(String),
    /// Estimation failure (phase 3).
    Estimation(String),
    /// Design-space exploration failure (phase 4).
    Exploration(String),
    /// Functional-simulation failure.
    Simulation(String),
    /// Hardware co-simulation / certification failure: the architecture's
    /// quantised execution or its golden vectors diverged.
    Verification(String),
    /// Precision format search failure: no certifiable fixed-point format
    /// within the search's width cap meets the error budget (or the budget
    /// itself is malformed).
    Format(String),
    /// Filesystem failure while exporting a bundle
    /// ([`crate::VhdlBundle::write_to`]).
    Io(String),
}

impl FlowError {
    /// Attach uniform stage context to this error: `stage`, plus the
    /// content key of the artifact being produced when there is one.
    ///
    /// Every session entry point funnels its failures through here —
    /// whether the artifact store served a cached value, raced another
    /// thread, or recomputed from cold, an identical failure produces an
    /// identical message (the property `tests/tests/session_props.rs`
    /// checks).
    #[must_use]
    pub fn at(self, stage: Stage, artifact: Option<&str>) -> FlowError {
        let tag = match artifact {
            Some(key) => format!("[{stage}: {key}] "),
            None => format!("[{stage}] "),
        };
        self.map_message(|m| format!("{tag}{m}"))
    }

    fn map_message(self, f: impl FnOnce(String) -> String) -> FlowError {
        match self {
            FlowError::Analysis(m) => FlowError::Analysis(f(m)),
            FlowError::Cone(m) => FlowError::Cone(f(m)),
            FlowError::Synthesis(m) => FlowError::Synthesis(f(m)),
            FlowError::Estimation(m) => FlowError::Estimation(f(m)),
            FlowError::Exploration(m) => FlowError::Exploration(f(m)),
            FlowError::Simulation(m) => FlowError::Simulation(f(m)),
            FlowError::Verification(m) => FlowError::Verification(f(m)),
            FlowError::Format(m) => FlowError::Format(f(m)),
            FlowError::Io(m) => FlowError::Io(f(m)),
        }
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Analysis(m) => write!(f, "dependency analysis failed: {m}"),
            FlowError::Cone(m) => write!(f, "cone construction failed: {m}"),
            FlowError::Synthesis(m) => write!(f, "synthesis failed: {m}"),
            FlowError::Estimation(m) => write!(f, "estimation failed: {m}"),
            FlowError::Exploration(m) => write!(f, "design-space exploration failed: {m}"),
            FlowError::Simulation(m) => write!(f, "simulation failed: {m}"),
            FlowError::Verification(m) => write!(f, "architecture verification failed: {m}"),
            FlowError::Format(m) => write!(f, "format search failed: {m}"),
            FlowError::Io(m) => write!(f, "bundle export failed: {m}"),
        }
    }
}

impl Error for FlowError {}

impl From<isl_symexec::SymExecError> for FlowError {
    fn from(e: isl_symexec::SymExecError) -> Self {
        FlowError::Analysis(e.to_string())
    }
}

impl From<isl_ir::ConeError> for FlowError {
    fn from(e: isl_ir::ConeError) -> Self {
        FlowError::Cone(e.to_string())
    }
}

impl From<isl_fpga::SynthError> for FlowError {
    fn from(e: isl_fpga::SynthError) -> Self {
        FlowError::Synthesis(e.to_string())
    }
}

impl From<isl_estimate::EstimateError> for FlowError {
    fn from(e: isl_estimate::EstimateError) -> Self {
        FlowError::Estimation(e.to_string())
    }
}

impl From<isl_dse::DseError> for FlowError {
    fn from(e: isl_dse::DseError) -> Self {
        FlowError::Exploration(e.to_string())
    }
}

impl From<isl_sim::SimError> for FlowError {
    fn from(e: isl_sim::SimError) -> Self {
        FlowError::Simulation(e.to_string())
    }
}

impl From<isl_cosim::CosimError> for FlowError {
    fn from(e: isl_cosim::CosimError) -> Self {
        FlowError::Verification(e.to_string())
    }
}

impl From<std::io::Error> for FlowError {
    fn from(e: std::io::Error) -> Self {
        FlowError::Io(e.to_string())
    }
}
