//! The flow-level error type.

use std::error::Error;
use std::fmt;

/// Any failure along the HLS flow, tagged by phase.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Frontend / symbolic-execution failure (phase 1).
    Analysis(String),
    /// Cone construction failure (phase 2).
    Cone(String),
    /// Synthesis-simulator failure.
    Synthesis(String),
    /// Estimation failure (phase 3).
    Estimation(String),
    /// Design-space exploration failure (phase 4).
    Exploration(String),
    /// Functional-simulation failure.
    Simulation(String),
    /// Hardware co-simulation / certification failure: the architecture's
    /// quantised execution or its golden vectors diverged.
    Verification(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Analysis(m) => write!(f, "dependency analysis failed: {m}"),
            FlowError::Cone(m) => write!(f, "cone construction failed: {m}"),
            FlowError::Synthesis(m) => write!(f, "synthesis failed: {m}"),
            FlowError::Estimation(m) => write!(f, "estimation failed: {m}"),
            FlowError::Exploration(m) => write!(f, "design-space exploration failed: {m}"),
            FlowError::Simulation(m) => write!(f, "simulation failed: {m}"),
            FlowError::Verification(m) => write!(f, "architecture verification failed: {m}"),
        }
    }
}

impl Error for FlowError {}

impl From<isl_symexec::SymExecError> for FlowError {
    fn from(e: isl_symexec::SymExecError) -> Self {
        FlowError::Analysis(e.to_string())
    }
}

impl From<isl_ir::ConeError> for FlowError {
    fn from(e: isl_ir::ConeError) -> Self {
        FlowError::Cone(e.to_string())
    }
}

impl From<isl_fpga::SynthError> for FlowError {
    fn from(e: isl_fpga::SynthError) -> Self {
        FlowError::Synthesis(e.to_string())
    }
}

impl From<isl_estimate::EstimateError> for FlowError {
    fn from(e: isl_estimate::EstimateError) -> Self {
        FlowError::Estimation(e.to_string())
    }
}

impl From<isl_dse::DseError> for FlowError {
    fn from(e: isl_dse::DseError) -> Self {
        FlowError::Exploration(e.to_string())
    }
}

impl From<isl_sim::SimError> for FlowError {
    fn from(e: isl_sim::SimError) -> Self {
        FlowError::Simulation(e.to_string())
    }
}

impl From<isl_cosim::CosimError> for FlowError {
    fn from(e: isl_cosim::CosimError) -> Self {
        FlowError::Verification(e.to_string())
    }
}
