//! # isl-hls — an automatic HLS flow for iterative stencil loops on FPGAs
//!
//! A from-scratch Rust reproduction of *"A High-Level Synthesis Flow for the
//! Implementation of Iterative Stencil Loop Algorithms on FPGA Devices"*
//! (Nacci, Rana, Bruschi, Sciuto, Beretta, Atienza — DAC 2013).
//!
//! The flow (paper, Figure 2) takes a C kernel describing **one iteration**
//! of an ISL and produces Pareto-optimal FPGA architectures:
//!
//! 1. **Dependency analysis** — symbolic execution of the kernel extracts
//!    the stencil pattern, verifying *domain narrowness* and *translational
//!    invariance* (`isl-frontend`, `isl-symexec`);
//! 2. **Cone identification** — multi-iteration compute modules ("cones")
//!    are built by unrolling the dependencies with full register reuse
//!    (`isl-ir`), and rendered to synthesizable VHDL (`isl-vhdl`);
//! 3. **Performance and area estimation** — the incremental register-based
//!    area model (Eq. 1, α calibrated from two syntheses) and an analytic
//!    throughput schedule (`isl-estimate`, over the `isl-fpga` synthesis
//!    simulator);
//! 4. **Design space exploration** — exhaustive enumeration of (window ×
//!    depth × cores) instances and Pareto extraction (`isl-dse`).
//!
//! Functional correctness of the whole architecture template is provable in
//! simulation: window-by-window cone execution is bit-identical to the
//! golden whole-frame iteration (`isl-sim`).
//!
//! ## Quickstart
//!
//! ```
//! use isl_hls::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let flow = IslFlow::from_source(r#"
//! #pragma isl iterations 10
//! #pragma isl border clamp
//! void blur(const float in[H][W], float out[H][W]) {
//!     for (int y = 0; y < H; y++)
//!         for (int x = 0; x < W; x++)
//!             out[y][x] = (in[y-1][x] + in[y+1][x] + in[y][x-1] + in[y][x+1]) * 0.25f;
//! }
//! "#)?;
//!
//! // Explore architectures for 256x192 frames on a Virtex-6.
//! let device = Device::virtex6_xc6vlx760();
//! let space = DesignSpace::new(1..=4, 1..=2, 4);
//! let result = flow.explore(&device, flow.workload(256, 192), &space)?;
//! let best = result.fastest().expect("feasible points exist");
//! assert!(best.fps > 0.0);
//!
//! // Generate the VHDL for the chosen cone.
//! let bundle = flow.generate_vhdl(best.arch.window, best.arch.depth)?;
//! assert!(bundle.entity.contains("entity"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod flow;

pub use error::FlowError;
pub use flow::{ArchitectureCertificate, IslFlow, VhdlBundle};

/// Convenient single-import surface for flow users.
pub mod prelude {
    pub use crate::{ArchitectureCertificate, FlowError, IslFlow, VhdlBundle};
    pub use isl_dse::{DesignPoint, DesignSpace, Exploration, Explorer};
    pub use isl_estimate::{
        Architecture, AreaEstimator, AreaValidation, ScheduleModel, ThroughputEstimator,
        Workload,
    };
    pub use isl_fpga::{Device, FixedFormat, SynthOptions, Synthesizer};
    pub use isl_ir::{Cone, Expr, StencilPattern, Window};
    pub use isl_sim::{BorderMode, Frame, FrameSet, Simulator};
}

// Re-export the component crates for power users.
pub use isl_algorithms as algorithms;
pub use isl_baselines as baselines;
pub use isl_cosim as cosim;
pub use isl_dse as dse;
pub use isl_estimate as estimate;
pub use isl_fpga as fpga;
pub use isl_frontend as frontend;
pub use isl_ir as ir;
pub use isl_sim as sim;
pub use isl_symexec as symexec;
pub use isl_vhdl as vhdl;
