//! # isl-hls — an automatic HLS flow for iterative stencil loops on FPGAs
//!
//! A from-scratch Rust reproduction of *"A High-Level Synthesis Flow for the
//! Implementation of Iterative Stencil Loop Algorithms on FPGA Devices"*
//! (Nacci, Rana, Bruschi, Sciuto, Beretta, Atienza — DAC 2013).
//!
//! The flow (paper, Figure 2) takes a C kernel describing **one iteration**
//! of an ISL and produces Pareto-optimal FPGA architectures. Since the
//! staged-API redesign it is exposed as an explicit typed pipeline over an
//! [`IslSession`]:
//!
//! ```text
//! Spec (IslSession) → Decomposed → Estimated → Explored → Synthesized
//!                                                       ↘ Certified → FormatSearched
//! ```
//!
//! 1. **Spec** — symbolic execution of the kernel extracts the stencil
//!    pattern, verifying *domain narrowness* and *translational invariance*
//!    (`isl-frontend`, `isl-symexec`);
//! 2. **Decomposed** — multi-iteration compute modules ("cones") are built
//!    by unrolling the dependencies with full register reuse (`isl-ir`);
//! 3. **Estimated** — the incremental register-based area model (Eq. 1,
//!    α calibrated from two syntheses per depth) and the analytic schedule
//!    (`isl-estimate`, over the `isl-fpga` synthesis simulator);
//! 4. **Explored** — exhaustive enumeration of (window × depth × cores)
//!    instances and Pareto extraction (`isl-dse`);
//! 5. **Synthesized** — synthesizable VHDL, packaged with testbenches (and,
//!    after certification, golden-vector replays) into a [`VhdlBundle`];
//! 6. **Certified** — bit-true hardware co-simulation evidence
//!    ([`ArchitectureCertificate`], via `isl-cosim`);
//! 7. **FormatSearched** — precision design-space exploration
//!    ([`IslSession::search_format`]): binary-search the narrowest
//!    certified fixed-point format within an [`ErrorBudget`], with every
//!    probed format's golden vectors and certificate cached in the store,
//!    and the area saving measured through the width-parameterised
//!    technology mapper.
//!
//! Every stage output is an immutable, `Arc`-shared handle backed by the
//! session's concurrency-safe **artifact store** ([`ArtifactStore`]): built
//! cones, compiled bytecode programs, calibration syntheses, golden vectors
//! and certificates are keyed by content hashes, so later stages — and
//! repeated or concurrent calls with the same inputs — reuse them instead
//! of recomputing ([`IslSession::store_stats`] proves it). The batch
//! surface ([`IslSession::explore_many`], [`IslSession::verify_many`]) fans
//! request sets over the persistent worker pool against the same store.
//!
//! ## Quickstart
//!
//! ```
//! use isl_hls::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let session = IslSession::from_source(r#"
//! #pragma isl iterations 10
//! #pragma isl border clamp
//! void blur(const float in[H][W], float out[H][W]) {
//!     for (int y = 0; y < H; y++)
//!         for (int x = 0; x < W; x++)
//!             out[y][x] = (in[y-1][x] + in[y+1][x] + in[y][x-1] + in[y][x+1]) * 0.25f;
//! }
//! "#)?;
//!
//! // Explore architectures for 256x192 frames on a Virtex-6.
//! let device = Device::virtex6_xc6vlx760();
//! let space = DesignSpace::new(1..=4, 1..=2, 4);
//! let explored = session.explore(&device, session.workload(256, 192), &space)?;
//! let best = explored.fastest().expect("feasible points exist");
//! assert!(best.fps > 0.0);
//!
//! // Generate the VHDL for the fastest point.
//! let synthesized = explored.synthesize_fastest()?;
//! assert!(synthesized.bundle().entity.contains("entity"));
//!
//! // A second explore with the same inputs is served from the store.
//! let again = session.explore(&device, session.workload(256, 192), &space)?;
//! assert_eq!(explored.points(), again.points());
//! assert!(session.store_stats().calibrations.hits > 0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Choosing an error budget
//!
//! [`IslSession::search_format`] needs an [`ErrorBudget`] — how much may
//! the fixed-point hardware deviate from the exact (`f64`) run of the same
//! cone decomposition? Guidance:
//!
//! * **Anchor on the default format.** Certify once at the session's
//!   format (Q8.10/18-bit by default) and read
//!   [`ArchitectureCertificate::max_quant_error`]: a budget equal to that
//!   value asks the search for "the narrowest format at least as accurate
//!   as the hand-chosen one" — for gaussian-IGF that already narrows 18
//!   bits to 15 (and the searched format is *certified*, which the
//!   hand-chosen one's accuracy never was).
//! * **Or anchor on the workload.** For 8-bit imagery, half an output
//!   grey level is `0.5 / 255 ≈ 2e-3` — max-abs budgets coarser than that
//!   are invisible in the output; budget RMS an order of magnitude lower
//!   ([`ErrorBudget::with_rms`]) to bound the average, not just the worst
//!   pixel.
//! * **Don't budget below the decomposition floor.** The budget bounds the
//!   *quantisation* error (same-decomposition reference), which more
//!   fractional bits always shrink. The gap between the decomposition and
//!   the whole-frame golden run
//!   ([`ArchitectureCertificate::max_fixed_error`], cone-base border
//!   resolution at frame edges) is format-independent — no budget spent on
//!   width buys it back.
//! * **Tight budgets cost integer bits too.** When the widest probe misses
//!   the budget, the search trades fractional for integer bits
//!   (intermediate saturation — e.g. a squared gradient overflowing the
//!   range — is also unfixable by resolution alone). Expect a `1e-9`
//!   budget on Chambolle to come back ~Q9.34 rather than Q8.x.
//!
//! ## Migrating from `IslFlow`
//!
//! [`IslFlow`] remains as a thin deprecated façade: every method delegates
//! to one shared session, so old code keeps compiling (and now shares
//! artifacts across calls for free). New code should use the staged API:
//!
//! | Old (`IslFlow`)                           | New (staged `IslSession`)                                   |
//! |-------------------------------------------|-------------------------------------------------------------|
//! | `IslFlow::from_source(src)?`              | `IslSession::from_source(src)?`                             |
//! | `IslFlow::from_algorithm(&a)?`            | `IslSession::from_algorithm(&a)?`                           |
//! | `IslFlow::from_pattern(p, n)`             | `IslSession::from_pattern(p, n)`                            |
//! | `flow.with_border(b)` (etc.)              | `session.with_border(b)` (same builder set, plus `with_threads`) |
//! | `flow.build_cone(w, d)?`                  | `session.decompose(w, d)?.main_cone()` (or `session.cone(w, d)?`) |
//! | `flow.generate_vhdl(w, d)?`               | `session.synthesize(w, d)?.into_bundle()`                   |
//! | `flow.validate_area_model(...)?`          | `session.validate_area_model(...)?`                         |
//! | `flow.throughput(...)?` / `best_on_device`| `session.throughput(...)?` / `session.best_on_device(...)?` |
//! | `flow.explore(dev, wl, space)?`           | `session.explore(dev, wl, space)?` (or `session.estimate(dev, space)?.explore(wl)?`) |
//! | *(sweeping several workloads/devices)*    | `session.explore_many(&requests)`                           |
//! | `flow.simulator()?`                       | `session.simulator()?`                                      |
//! | `flow.run_architecture(init, arch)?`      | `session.run_architecture(init, arch)?`                     |
//! | `flow.verify_architecture(init, arch)?`   | `session.certify(init, arch)?` (then `.certificate()`)      |
//! | *(certifying a batch)*                    | `session.verify_many(&requests)`                            |
//! | *(vectors next to the VHDL, by hand)*     | `session.certify(...)?.synthesize()?.write_to(dir)?` + `run_ghdl.sh` |
//! | *(fixed-point format chosen by hand)*     | `session.search_format(dev, init, arch, budget)?` (new stage)        |
//! | *(artifacts die with the process)*        | `session.with_persistent_store(path)?` (on-disk tier; see `isl-persist`) |
//! | *(store flushed only at drop)*            | `session.checkpoint()?` (explicit durable flush)            |
//!
//! Functional correctness of the whole architecture template is provable in
//! simulation: window-by-window cone execution is bit-identical to the
//! golden whole-frame iteration (`isl-sim`), and stage results served from
//! the artifact store are property-tested bit-identical to cold recomputes
//! (`tests/tests/session_props.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod flow;
mod persist;
mod session;
mod store;
mod telemetry;

pub use error::{FlowError, Stage};
pub use flow::IslFlow;
pub use session::{
    ArchitectureCertificate, Certified, Decomposed, ErrorBudget, Estimated, Explored,
    ExploreRequest, FormatProbe, FormatSearchOutcome, FormatSearched, IslSession, Synthesized,
    VectorSet, VerifyRequest, VhdlBundle,
};
pub use store::{ArtifactStore, StoreStats};
pub use telemetry::TelemetryReport;

/// Convenient single-import surface for flow users.
pub mod prelude {
    pub use crate::{
        ArchitectureCertificate, ArtifactStore, Certified, Decomposed, ErrorBudget, Estimated,
        Explored, ExploreRequest, FlowError, FormatProbe, FormatSearchOutcome, FormatSearched,
        IslFlow, IslSession, Stage, StoreStats, Synthesized, TelemetryReport, VectorSet,
        VerifyRequest, VhdlBundle,
    };
    pub use isl_dse::{Calibration, DesignPoint, DesignSpace, Exploration, Explorer};
    pub use isl_estimate::{
        Architecture, AreaEstimator, AreaValidation, ScheduleModel, ThroughputEstimator,
        Workload,
    };
    pub use isl_fpga::{Device, FixedFormat, SynthOptions, Synthesizer};
    pub use isl_ir::{Cone, Expr, StencilPattern, Window};
    pub use isl_sim::{BorderMode, Frame, FrameSet, Simulator};
}

// Re-export the component crates for power users.
pub use isl_algorithms as algorithms;
pub use isl_analyze as analyze;
pub use isl_baselines as baselines;
pub use isl_cosim as cosim;
pub use isl_dse as dse;
pub use isl_estimate as estimate;
pub use isl_fpga as fpga;
pub use isl_frontend as frontend;
pub use isl_ir as ir;
pub use isl_sim as sim;
pub use isl_symexec as symexec;
pub use isl_telemetry;
pub use isl_vhdl as vhdl;
