//! Run-level observability: the [`TelemetryReport`] a session emits after
//! an instrumented run.
//!
//! Telemetry is process-global and **off by default** (the disabled path is
//! one relaxed atomic load per probe site). Start an observed run with
//! [`crate::IslSession::with_telemetry`] — which resets the collector and
//! enables it before parsing, so even the Spec stage is on the record —
//! then pull the evidence with [`crate::IslSession::telemetry_report`]:
//!
//! ```
//! use isl_hls::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let session = IslSession::with_telemetry(r#"
//! #pragma isl iterations 4
//! void blur(const float in[H][W], float out[H][W]) {
//!     for (int y = 0; y < H; y++)
//!         for (int x = 0; x < W; x++)
//!             out[y][x] = (in[y-1][x] + in[y+1][x]) * 0.5f;
//! }
//! "#)?;
//! let _cone = session.cone(Window::square(2), 2)?;
//! let report = session.telemetry_report();
//! assert!(report.to_json().contains("\"caches\""));
//! isl_telemetry::set_enabled(false);
//! # Ok(())
//! # }
//! ```
//!
//! The report fuses the global [`isl_telemetry::Snapshot`] (spans,
//! counters, gauges, per-thread lanes) with the session's own
//! [`StoreStats`], and renders three ways: a structured JSON run report
//! ([`TelemetryReport::to_json`]), a Chrome trace-event file loadable in
//! Perfetto or `chrome://tracing` ([`TelemetryReport::chrome_trace`]), and
//! a human summary (`Display`).

use std::fmt;

use isl_telemetry::{gauge_json, GaugeStat, Snapshot, SpanTotal};

use crate::store::StoreStats;

/// The observability evidence of one instrumented run: the global telemetry
/// [`Snapshot`] plus the session's artifact-store counters, taken together
/// by [`crate::IslSession::telemetry_report`].
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    snapshot: Snapshot,
    store: StoreStats,
}

/// The pool gauges the run report always carries, present even when the
/// run never left the serial fast path (a one-core box spawns no workers).
const POOL_GAUGES: [(&str, &str); 3] = [
    ("queue_depth", "pool.queue_depth"),
    ("park_us", "pool.park_us"),
    ("batch_us", "pool.batch_us"),
];

impl TelemetryReport {
    pub(crate) fn new(snapshot: Snapshot, store: StoreStats) -> Self {
        TelemetryReport { snapshot, store }
    }

    /// The raw global snapshot the report was taken from.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The session's store counters at report time.
    pub fn store_stats(&self) -> StoreStats {
        self.store
    }

    /// Aggregated wall time of the pipeline stages (category `"stage"`),
    /// in execution order — `Spec` through `FormatSearched` for a full
    /// run.
    pub fn stages(&self) -> Vec<SpanTotal> {
        self.snapshot.span_totals_for("stage")
    }

    /// The value of one counter (0 when it never fired).
    pub fn counter(&self, name: &str) -> u64 {
        self.snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The statistics of one gauge (all-zero when it never sampled).
    pub fn gauge(&self, name: &str) -> GaugeStat {
        self.snapshot
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, g)| *g)
            .unwrap_or_default()
    }

    /// The structured JSON run report.
    ///
    /// Top-level keys: `"stages"` (per-stage wall time, execution order),
    /// `"caches"` (hit/miss per artifact kind), `"pool"` (queue depth,
    /// park time, batch time, task counts — the gauge keys are always
    /// present, zeroed when the pool never went parallel), and
    /// `"telemetry"` (the full snapshot: every span category, counter,
    /// gauge and lane). Parses with any JSON parser, including
    /// [`isl_telemetry::json::parse`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(8192);
        out.push_str("{\n  \"stages\": [");
        let stages = self.stages();
        for (i, t) in stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"count\": {}, \"total_us\": {}}}",
                isl_telemetry::json::escape(&t.name),
                t.count,
                t.total_us
            ));
        }
        if !stages.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"caches\": {");
        for (i, (name, s)) in self.store.rows().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{name}\": {{\"hits\": {}, \"misses\": {}}}",
                s.hits, s.misses
            ));
        }
        out.push_str("\n  },\n  \"pool\": {");
        for (key, gauge) in POOL_GAUGES {
            out.push_str(&format!("\n    \"{key}\": {},", gauge_json(self.gauge(gauge))));
        }
        out.push_str(&format!(
            "\n    \"batches\": {},\n    \"tasks\": {},\n    \"caller_tasks\": {},",
            self.counter("pool.batches"),
            self.counter("pool.tasks"),
            self.counter("pool.caller.tasks"),
        ));
        out.push_str("\n    \"worker_tasks\": {");
        let workers = self.worker_tasks();
        for (i, (w, n)) in workers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{w}\": {n}"));
        }
        out.push_str("}\n  },\n  \"telemetry\": ");
        out.push_str(&self.snapshot.to_json());
        out.push_str("\n}\n");
        out
    }

    /// The Chrome trace-event export of the run — load the file in
    /// Perfetto (`ui.perfetto.dev`) or `chrome://tracing`; one lane per
    /// worker thread, nested spans per stage.
    pub fn chrome_trace(&self) -> String {
        self.snapshot.chrome_trace()
    }

    /// `(worker index, tasks run)` rows recovered from the
    /// `pool.worker.<i>.tasks` counters, sorted by index.
    fn worker_tasks(&self) -> Vec<(u64, u64)> {
        let mut rows: Vec<(u64, u64)> = self
            .snapshot
            .counters
            .iter()
            .filter_map(|(n, v)| {
                let idx = n.strip_prefix("pool.worker.")?.strip_suffix(".tasks")?;
                Some((idx.parse().ok()?, *v))
            })
            .collect();
        rows.sort_unstable();
        rows
    }
}

impl fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pipeline stages:")?;
        let stages = self.stages();
        if stages.is_empty() {
            writeln!(f, "  (none recorded)")?;
        }
        for t in &stages {
            writeln!(
                f,
                "  {:<14} {:>4} × {:>10.3} ms total",
                t.name,
                t.count,
                t.total_us as f64 / 1000.0
            )?;
        }
        writeln!(f, "artifact store:")?;
        for line in self.store.to_string().lines() {
            writeln!(f, "  {line}")?;
        }
        let (qd, park, batch) = (
            self.gauge("pool.queue_depth"),
            self.gauge("pool.park_us"),
            self.gauge("pool.batch_us"),
        );
        writeln!(
            f,
            "worker pool: {} batches, {} tasks ({} on caller), queue depth max {}, \
             park mean {:.0} µs, batch mean {:.0} µs",
            self.counter("pool.batches"),
            self.counter("pool.tasks"),
            self.counter("pool.caller.tasks"),
            qd.max,
            park.mean(),
            batch.mean()
        )?;
        write!(f, "{}", self.snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_keeps_pool_keys() {
        let report = TelemetryReport::new(Snapshot::default(), StoreStats::default());
        let json = report.to_json();
        for key in ["queue_depth", "park_us", "batch_us", "caller_tasks"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
        }
        let parsed = isl_telemetry::json::parse(&json).expect("report parses");
        let pool = parsed.get("pool").expect("pool object");
        assert_eq!(
            pool.get("batches").and_then(|v| v.as_num()),
            Some(0.0),
            "zeroed batches"
        );
        assert!(report.to_string().contains("worker pool"));
    }
}
