//! The disk tier of the [`ArtifactStore`](crate::ArtifactStore): artifact
//! codecs over the generic [`isl_persist`] record file.
//!
//! `isl-persist` deliberately knows nothing about pipeline types — it
//! stores `(kind, key) → bytes`. This module owns the other half of the
//! contract: a stable binary codec per persisted artifact kind
//! (calibrations, synthesis reports, golden-vector sets, architecture
//! certificates, reference-run pairs and format-search outcomes, each
//! keyed by the pattern fingerprint plus every config bit that can change
//! the value), and the [`ARTIFACT_CODEC_VERSION`] that invalidates all
//! persisted bytes wholesale whenever any encoding changes.
//!
//! Every codec is exact: `f64`s travel by bit pattern, so a disk-served
//! artifact is bit-identical to the cold recompute it replaced
//! (property-tested in `tests/tests/persist_props.rs`). Payloads that
//! fail to decode — truncation survived the checksum odds, or a foreign
//! tool wrote the record — are discarded and counted as corrupt; the
//! caller falls back to a cold build. Never a panic.

use std::path::Path;

use isl_dse::{Calibration, ConeFacts};
use isl_estimate::{Architecture, AreaEstimator};
use isl_fpga::{FixedFormat, SynthCache, SynthKey, SynthesisReport};
use isl_ir::Window;
use isl_persist::{ByteReader, ByteWriter, DecodeError, DiskStore};
use isl_sim::{Frame, FrameSet};
use isl_vhdl::VectorFile;

use crate::error::FlowError;
use crate::session::{ArchitectureCertificate, ErrorBudget, FormatProbe, FormatSearchOutcome};
use crate::store::{CalibrationKey, RefKey, RunKey, SearchKey};

/// Version of the artifact codecs in this module, fed to
/// [`isl_persist::DiskStore::open`] as the `app_version`. **Bump on any
/// encoding change** — stale files are then invalidated wholesale instead
/// of half-decoded.
pub const ARTIFACT_CODEC_VERSION: u64 = 1;

const KIND_CALIBRATION: u8 = 1;
const KIND_VECTORS: u8 = 2;
const KIND_CERTIFICATE: u8 = 3;
const KIND_REFERENCES: u8 = 4;
const KIND_SEARCH: u8 = 5;
const KIND_SYNTHESIS: u8 = 6;

// ---------------------------------------------------------------------------
// Shared field codecs.
// ---------------------------------------------------------------------------

fn put_window(w: &mut ByteWriter, win: Window) {
    w.put_u32(win.w);
    w.put_u32(win.h);
    w.put_u32(win.d);
}

fn get_window(r: &mut ByteReader<'_>) -> Result<Window, DecodeError> {
    let (w, h, d) = (r.u32()?, r.u32()?, r.u32()?);
    if w == 0 || h == 0 || d == 0 {
        return Err(DecodeError(format!("degenerate window {w}x{h}x{d}")));
    }
    Ok(Window { w, h, d })
}

fn put_format(w: &mut ByteWriter, f: FixedFormat) {
    w.put_u32(f.width);
    w.put_u32(f.frac);
}

fn get_format(r: &mut ByteReader<'_>) -> Result<FixedFormat, DecodeError> {
    let (width, frac) = (r.u32()?, r.u32()?);
    if width == 0 || width > 64 || frac >= width {
        return Err(DecodeError(format!("invalid format Q{}.{}", width, frac)));
    }
    Ok(FixedFormat { width, frac })
}

type OptionBits = (FixedFormat, bool, bool, bool, bool);

fn put_options(w: &mut ByteWriter, o: &OptionBits) {
    put_format(w, o.0);
    w.put_bool(o.1);
    w.put_bool(o.2);
    w.put_bool(o.3);
    w.put_bool(o.4);
}

fn put_u32_vec(w: &mut ByteWriter, v: &[u32]) {
    w.put_u32(v.len() as u32);
    for &x in v {
        w.put_u32(x);
    }
}

// ---------------------------------------------------------------------------
// Key codecs. A key encoding is part of the record identity: changing one
// requires an ARTIFACT_CODEC_VERSION bump like any payload change.
// ---------------------------------------------------------------------------

fn calibration_key(key: &CalibrationKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(key.pattern);
    w.put_str(&key.device);
    put_options(&mut w, &key.options);
    w.put_u32(key.iterations);
    put_u32_vec(&mut w, &key.sides);
    put_u32_vec(&mut w, &key.depths);
    w.into_inner()
}

fn run_key(key: &RunKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(key.pattern);
    w.put_u64(key.init);
    put_format(&mut w, key.format);
    w.put_u8(key.border.0);
    w.put_u64(key.border.1);
    w.put_u32(key.iterations);
    put_window(&mut w, key.window);
    w.put_u32(key.depth);
    w.into_inner()
}

fn cert_key(key: &RunKey, cores: u32) -> Vec<u8> {
    let mut bytes = run_key(key);
    bytes.extend_from_slice(&cores.to_le_bytes());
    bytes
}

fn ref_key(key: &RefKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(key.pattern);
    w.put_u64(key.init);
    w.put_u8(key.border.0);
    w.put_u64(key.border.1);
    w.put_u32(key.iterations);
    put_window(&mut w, key.window);
    w.put_u32(key.depth);
    w.into_inner()
}

fn search_key(key: &SearchKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_raw(&run_key(&key.run));
    w.put_u32(key.cores);
    w.put_str(&key.device);
    put_options(&mut w, &key.options);
    w.put_u64(key.budget.0);
    w.put_u64(key.budget.1);
    w.put_u32(key.budget.2);
    w.into_inner()
}

fn synth_key(key: &SynthKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(key.pattern);
    w.put_str(&key.device);
    put_format(&mut w, key.format);
    w.put_bool(key.options.0);
    w.put_bool(key.options.1);
    w.put_bool(key.options.2);
    w.put_bool(key.options.3);
    put_window(&mut w, key.window);
    w.put_u32(key.depth);
    w.put_u32(key.cones);
    w.into_inner()
}

fn decode_synth_key(r: &mut ByteReader<'_>) -> Result<SynthKey, DecodeError> {
    Ok(SynthKey {
        pattern: r.u64()?,
        device: r.str()?.to_string(),
        format: get_format(r)?,
        options: (r.bool()?, r.bool()?, r.bool()?, r.bool()?),
        window: get_window(r)?,
        depth: r.u32()?,
        cones: r.u32()?,
    })
}

// ---------------------------------------------------------------------------
// Payload codecs.
// ---------------------------------------------------------------------------

fn encode_calibration(c: &Calibration) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(c.iterations());
    w.put_usize(c.syntheses());
    let estimators = c.estimators();
    w.put_u32(estimators.len() as u32);
    for (depth, est) in estimators {
        let (alpha, size_reg, anchor_area, anchor_registers, used) = est.parts();
        w.put_u32(depth);
        w.put_f64(alpha);
        w.put_f64(size_reg);
        w.put_f64(anchor_area);
        w.put_u64(anchor_registers);
        w.put_usize(used);
    }
    let facts = c.all_facts();
    w.put_u32(facts.len() as u32);
    for ((side, depth), f) in facts {
        w.put_u32(side);
        w.put_u32(depth);
        w.put_u64(f.registers);
        w.put_u32(f.latency);
        w.put_f64(f.est_luts);
    }
    w.into_inner()
}

fn decode_calibration(bytes: &[u8]) -> Result<Calibration, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let iterations = r.u32()?;
    let syntheses = r.usize()?;
    let n_est = r.u32()? as usize;
    let mut estimators = Vec::with_capacity(n_est.min(1024));
    for _ in 0..n_est {
        let depth = r.u32()?;
        let alpha = r.f64()?;
        let size_reg = r.f64()?;
        let anchor_area = r.f64()?;
        let anchor_registers = r.u64()?;
        let used = r.usize()?;
        estimators.push((
            depth,
            AreaEstimator::from_parts(alpha, size_reg, anchor_area, anchor_registers, used),
        ));
    }
    let n_facts = r.u32()? as usize;
    let mut facts = Vec::with_capacity(n_facts.min(4096));
    for _ in 0..n_facts {
        let side = r.u32()?;
        let depth = r.u32()?;
        let f = ConeFacts {
            registers: r.u64()?,
            latency: r.u32()?,
            est_luts: r.f64()?,
        };
        facts.push(((side, depth), f));
    }
    r.expect_end()?;
    Ok(Calibration::from_parts(iterations, syntheses, estimators, facts))
}

/// Golden-vector sets reuse the exchange text format — the exact
/// round-trip `tests` already pin (`VectorFile::parse(to_text()) == self`).
fn encode_vectors(files: &[VectorFile]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(files.len() as u32);
    for f in files {
        w.put_str(&f.to_text());
    }
    w.into_inner()
}

fn decode_vectors(bytes: &[u8]) -> Result<Vec<VectorFile>, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let n = r.u32()? as usize;
    let mut files = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let text = r.str()?;
        files.push(
            VectorFile::parse(text).map_err(|e| DecodeError(format!("vector file: {e}")))?,
        );
    }
    r.expect_end()?;
    Ok(files)
}

fn encode_certificate(c: &ArchitectureCertificate) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_window(&mut w, c.arch.window);
    w.put_u32(c.arch.depth);
    w.put_u32(c.arch.cores);
    w.put_u32(c.iterations);
    put_format(&mut w, c.format);
    w.put_usize(c.quantized_elements);
    w.put_bytes(&encode_vectors(&c.vector_files));
    w.put_usize(c.vector_records);
    w.put_usize(c.vector_words);
    w.put_f64(c.max_fixed_error);
    w.put_f64(c.rms_fixed_error);
    w.put_f64(c.max_quant_error);
    w.put_f64(c.rms_quant_error);
    w.into_inner()
}

fn decode_certificate_fields(
    r: &mut ByteReader<'_>,
) -> Result<ArchitectureCertificate, DecodeError> {
    let window = get_window(r)?;
    let depth = r.u32()?;
    let cores = r.u32()?;
    let arch = Architecture::new(window, depth, cores);
    let iterations = r.u32()?;
    let format = get_format(r)?;
    let quantized_elements = r.usize()?;
    let vector_files = decode_vectors(r.bytes()?)?;
    Ok(ArchitectureCertificate {
        arch,
        iterations,
        format,
        quantized_elements,
        vector_files,
        vector_records: r.usize()?,
        vector_words: r.usize()?,
        max_fixed_error: r.f64()?,
        rms_fixed_error: r.f64()?,
        max_quant_error: r.f64()?,
        rms_quant_error: r.f64()?,
    })
}

fn decode_certificate(bytes: &[u8]) -> Result<ArchitectureCertificate, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let cert = decode_certificate_fields(&mut r)?;
    r.expect_end()?;
    Ok(cert)
}

fn put_frame_set(w: &mut ByteWriter, fs: &FrameSet) {
    w.put_u32(fs.len() as u32);
    w.put_usize(fs.width());
    w.put_usize(fs.height());
    for frame in fs.frames() {
        for &v in frame.as_slice() {
            w.put_f64(v);
        }
    }
}

fn get_frame_set(r: &mut ByteReader<'_>) -> Result<FrameSet, DecodeError> {
    let n = r.u32()? as usize;
    let width = r.usize()?;
    let height = r.usize()?;
    let elems = width
        .checked_mul(height)
        .filter(|&e| e > 0 && e <= (1 << 28))
        .ok_or_else(|| DecodeError(format!("invalid frame dims {width}x{height}")))?;
    if n == 0 || n > 64 {
        return Err(DecodeError(format!("invalid frame count {n}")));
    }
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        let mut data = Vec::with_capacity(elems);
        for _ in 0..elems {
            data.push(r.f64()?);
        }
        frames.push(Frame::from_vec(width, height, data));
    }
    FrameSet::from_frames(frames).map_err(|e| DecodeError(format!("frame set: {e}")))
}

fn encode_references(refs: &(FrameSet, FrameSet)) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_frame_set(&mut w, &refs.0);
    put_frame_set(&mut w, &refs.1);
    w.into_inner()
}

fn decode_references(bytes: &[u8]) -> Result<(FrameSet, FrameSet), DecodeError> {
    let mut r = ByteReader::new(bytes);
    let golden = get_frame_set(&mut r)?;
    let exact = get_frame_set(&mut r)?;
    r.expect_end()?;
    Ok((golden, exact))
}

fn encode_search(o: &FormatSearchOutcome) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_f64(o.budget.max_abs);
    w.put_f64(o.budget.rms);
    w.put_u32(o.budget.max_width);
    put_format(&mut w, o.chosen);
    put_format(&mut w, o.default_format);
    w.put_u64(o.default_area_luts);
    w.put_u64(o.chosen_area_luts);
    w.put_u32(o.probes.len() as u32);
    for p in &o.probes {
        put_format(&mut w, p.format);
        w.put_f64(p.max_abs_error);
        w.put_f64(p.rms_error);
        w.put_bool(p.within_budget);
    }
    w.put_raw(&encode_certificate(&o.certificate));
    w.into_inner()
}

fn decode_search(bytes: &[u8]) -> Result<FormatSearchOutcome, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let budget = ErrorBudget {
        max_abs: r.f64()?,
        rms: r.f64()?,
        max_width: r.u32()?,
    };
    let chosen = get_format(&mut r)?;
    let default_format = get_format(&mut r)?;
    let default_area_luts = r.u64()?;
    let chosen_area_luts = r.u64()?;
    let n = r.u32()? as usize;
    let mut probes = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        probes.push(FormatProbe {
            format: get_format(&mut r)?,
            max_abs_error: r.f64()?,
            rms_error: r.f64()?,
            within_budget: r.bool()?,
        });
    }
    let certificate = std::sync::Arc::new(decode_certificate_fields(&mut r)?);
    r.expect_end()?;
    Ok(FormatSearchOutcome {
        budget,
        chosen,
        default_format,
        default_area_luts,
        chosen_area_luts,
        probes,
        certificate,
    })
}

fn encode_synthesis(s: &SynthesisReport) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(&s.design);
    put_window(&mut w, s.window);
    w.put_u32(s.depth);
    w.put_u32(s.cones);
    w.put_u64(s.luts);
    w.put_u64(s.ffs);
    w.put_u64(s.dsps);
    w.put_u64(s.slices);
    w.put_u64(s.registers);
    w.put_u64(s.input_buffer_bits);
    w.put_f64(s.critical_path_ns);
    w.put_f64(s.fmax_mhz);
    w.put_u32(s.latency_cycles);
    w.put_f64(s.utilization);
    w.put_f64(s.modeled_cpu_seconds);
    w.into_inner()
}

fn decode_synthesis(r: &mut ByteReader<'_>) -> Result<SynthesisReport, DecodeError> {
    Ok(SynthesisReport {
        design: r.str()?.to_string(),
        window: get_window(r)?,
        depth: r.u32()?,
        cones: r.u32()?,
        luts: r.u64()?,
        ffs: r.u64()?,
        dsps: r.u64()?,
        slices: r.u64()?,
        registers: r.u64()?,
        input_buffer_bits: r.u64()?,
        critical_path_ns: r.f64()?,
        fmax_mhz: r.f64()?,
        latency_cycles: r.u32()?,
        utilization: r.f64()?,
        modeled_cpu_seconds: r.f64()?,
    })
}

// ---------------------------------------------------------------------------
// The tier.
// ---------------------------------------------------------------------------

/// The [`ArtifactStore`](crate::ArtifactStore)'s persistent tier: one
/// [`DiskStore`] plus the typed fetch/put pairs above. Fetches that fail
/// to decode discard the record as corrupt and return `None` (cold build).
#[derive(Debug)]
pub(crate) struct DiskTier {
    store: DiskStore,
}

impl DiskTier {
    pub(crate) fn open(path: &Path) -> Result<Self, FlowError> {
        let _span = isl_telemetry::span!("persist", "load {}", path.display());
        let store = DiskStore::open(path, ARTIFACT_CODEC_VERSION).map_err(FlowError::from)?;
        let stats = store.stats();
        isl_telemetry::add("store.disk.load_records", stats.records);
        isl_telemetry::add("store.disk.load_corrupt", stats.skipped_corrupt);
        Ok(DiskTier { store })
    }

    pub(crate) fn with_byte_budget(self, byte_budget: u64) -> Self {
        DiskTier {
            store: self.store.with_byte_budget(byte_budget),
        }
    }

    pub(crate) fn stats(&self) -> isl_persist::DiskStats {
        self.store.stats()
    }

    pub(crate) fn flush(&self) -> Result<u64, FlowError> {
        let _span = isl_telemetry::span("persist", "flush");
        let report = self.store.flush().map_err(FlowError::from)?;
        if report.wrote {
            isl_telemetry::add("store.disk.flush_records", report.records as u64);
            isl_telemetry::add("store.disk.flush_bytes", report.bytes);
            isl_telemetry::add("store.disk.evicted", report.evicted as u64);
        }
        Ok(report.bytes)
    }

    /// Generic fetch: lookup, decode, and on decode failure discard the
    /// record as corrupt (counted) so the caller rebuilds cold.
    fn fetch<V>(
        &self,
        kind: u8,
        key: &[u8],
        decode: impl FnOnce(&[u8]) -> Result<V, DecodeError>,
    ) -> Option<V> {
        let payload = self.store.lookup(kind, key);
        match payload {
            Some(bytes) => match decode(&bytes) {
                Ok(v) => {
                    isl_telemetry::add("store.disk.hit", 1);
                    Some(v)
                }
                Err(_) => {
                    self.store.discard_corrupt(kind, key);
                    isl_telemetry::add("store.disk.corrupt", 1);
                    None
                }
            },
            None => {
                isl_telemetry::add("store.disk.miss", 1);
                None
            }
        }
    }

    pub(crate) fn fetch_calibration(&self, key: &CalibrationKey) -> Option<Calibration> {
        self.fetch(KIND_CALIBRATION, &calibration_key(key), decode_calibration)
    }

    pub(crate) fn put_calibration(&self, key: &CalibrationKey, value: &Calibration) {
        self.store
            .insert(KIND_CALIBRATION, calibration_key(key), encode_calibration(value));
    }

    pub(crate) fn fetch_vectors(&self, key: &RunKey) -> Option<Vec<VectorFile>> {
        self.fetch(KIND_VECTORS, &run_key(key), decode_vectors)
    }

    pub(crate) fn put_vectors(&self, key: &RunKey, value: &[VectorFile]) {
        self.store
            .insert(KIND_VECTORS, run_key(key), encode_vectors(value));
    }

    pub(crate) fn fetch_certificate(
        &self,
        key: &RunKey,
        cores: u32,
    ) -> Option<ArchitectureCertificate> {
        self.fetch(KIND_CERTIFICATE, &cert_key(key, cores), decode_certificate)
    }

    pub(crate) fn put_certificate(
        &self,
        key: &RunKey,
        cores: u32,
        value: &ArchitectureCertificate,
    ) {
        self.store
            .insert(KIND_CERTIFICATE, cert_key(key, cores), encode_certificate(value));
    }

    pub(crate) fn fetch_references(&self, key: &RefKey) -> Option<(FrameSet, FrameSet)> {
        self.fetch(KIND_REFERENCES, &ref_key(key), decode_references)
    }

    pub(crate) fn put_references(&self, key: &RefKey, value: &(FrameSet, FrameSet)) {
        self.store
            .insert(KIND_REFERENCES, ref_key(key), encode_references(value));
    }

    pub(crate) fn fetch_search(&self, key: &SearchKey) -> Option<FormatSearchOutcome> {
        self.fetch(KIND_SEARCH, &search_key(key), decode_search)
    }

    pub(crate) fn put_search(&self, key: &SearchKey, value: &FormatSearchOutcome) {
        self.store
            .insert(KIND_SEARCH, search_key(key), encode_search(value));
    }

    /// Pre-seed every persisted synthesis report into the in-memory cache
    /// (neither hits nor misses — they were loaded, not requested).
    /// Records that fail to decode are discarded as corrupt.
    pub(crate) fn seed_syntheses(&self, cache: &SynthCache) {
        let mut corrupt: Vec<Vec<u8>> = Vec::new();
        for (key_bytes, payload) in self.store.entries_of_kind(KIND_SYNTHESIS) {
            let mut kr = ByteReader::new(&key_bytes);
            let mut pr = ByteReader::new(&payload);
            let decoded = decode_synth_key(&mut kr)
                .and_then(|k| kr.expect_end().map(|()| k))
                .and_then(|k| {
                    let report = decode_synthesis(&mut pr)?;
                    pr.expect_end()?;
                    Ok((k, report))
                });
            match decoded {
                Ok((key, report)) => cache.seed(key, report),
                Err(_) => corrupt.push(key_bytes),
            }
        }
        for key_bytes in corrupt {
            self.store.discard_corrupt(KIND_SYNTHESIS, &key_bytes);
            isl_telemetry::add("store.disk.corrupt", 1);
        }
    }

    /// Write every in-memory synthesis report the disk tier does not hold
    /// yet (reports are immutable per key, so present records are final).
    pub(crate) fn sync_syntheses(&self, cache: &SynthCache) {
        for (key, report) in cache.entries() {
            let key_bytes = synth_key(&key);
            if !self.store.contains(KIND_SYNTHESIS, &key_bytes) {
                self.store
                    .insert(KIND_SYNTHESIS, key_bytes, encode_synthesis(&report));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_report_codec_round_trips() {
        let report = SynthesisReport {
            design: "blur_w4x4_d2 x3".into(),
            window: Window::square(4),
            depth: 2,
            cones: 3,
            luts: 1234,
            ffs: 567,
            dsps: 8,
            slices: 400,
            registers: 77,
            input_buffer_bits: 2048,
            critical_path_ns: 3.21,
            fmax_mhz: 311.5,
            latency_cycles: 9,
            utilization: 0.0417,
            modeled_cpu_seconds: 123.456,
        };
        let bytes = encode_synthesis(&report);
        let mut r = ByteReader::new(&bytes);
        let back = decode_synthesis(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn frame_set_codec_is_bit_exact() {
        let f = Frame::from_fn(5, 3, |x, y| (x as f64 - 2.0) * 0.1 + y as f64);
        let fs = FrameSet::from_frames(vec![f.clone(), f]).unwrap();
        let bytes = encode_references(&(fs.clone(), fs.clone()));
        let (a, b) = decode_references(&bytes).unwrap();
        assert_eq!(a.fingerprint(), fs.fingerprint());
        assert_eq!(b.fingerprint(), fs.fingerprint());
    }

    #[test]
    fn truncated_payloads_fail_soft() {
        let f = Frame::from_fn(4, 4, |x, y| (x * y) as f64);
        let fs = FrameSet::from_frames(vec![f]).unwrap();
        let bytes = encode_references(&(fs.clone(), fs));
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_references(&bytes[..cut]).is_err());
        }
        assert!(decode_calibration(&bytes).is_err());
    }
}
