//! The staged pipeline API: typed [`IslSession`] stages over a shared
//! [`ArtifactStore`].
//!
//! The paper's flow is a pipeline — stencil spec → cone decomposition →
//! area/latency estimation → design-space exploration → VHDL → hardware
//! certification — and this module makes the stages explicit:
//!
//! ```text
//! Spec (IslSession) → Decomposed → Estimated → Explored → Synthesized
//!                                                       ↘ Certified
//! ```
//!
//! An [`IslSession`] owns one stencil spec plus one concurrency-safe
//! [`ArtifactStore`]; every stage method returns an immutable, `Arc`-shared
//! handle whose expensive contents (cones, compiled programs, calibration
//! syntheses, golden vectors, certificates) live in the store. Later stages
//! — and repeated calls with the same inputs, from any thread — reuse the
//! stored artifacts instead of recomputing; [`IslSession::store_stats`]
//! exposes the hit/miss counters that prove it.
//!
//! The batch surface ([`IslSession::explore_many`],
//! [`IslSession::verify_many`]) fans independent requests over the
//! persistent worker pool while all of them share one store, so a sweep
//! over devices or workloads builds each cone shape once.
//!
//! The pre-redesign [`crate::IslFlow`] survives as a thin shim over a
//! session (see the [migration table](crate#migrating-from-islflow)).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use isl_algorithms::Algorithm;
use isl_cosim::CoSimulator;
use isl_dse::{Calibration, DesignSpace, Exploration};
use isl_estimate::{
    Architecture, AreaValidation, ScheduleModel, ThroughputEstimator, ThroughputReport, Workload,
};
use isl_fpga::{Device, FixedFormat, SynthOptions, Synthesizer};
use isl_ir::{Cone, StencilPattern, Window};
use isl_sim::parallel::par_map;
use isl_sim::{level_depths, BorderMode, CompiledCone, FrameSet, Simulator};
use isl_symexec::compile_str;
use isl_vhdl::{
    check::verify_vectors, fixed_package, generate_cone, generate_testbench,
    generate_vector_testbench, generate_wrapper, VectorFile, VhdlOptions,
};

use crate::error::{FlowError, Stage};
use crate::store::{ArtifactStore, CalibrationKey, RefKey, RunKey, SearchKey, StoreStats};
use crate::telemetry::TelemetryReport;

// ---------------------------------------------------------------------------
// Bundles: what synthesize/certify hand to the outside world.
// ---------------------------------------------------------------------------

/// A golden-vector replay set shipped inside a [`VhdlBundle`]: the vector
/// file and the matching vector-mode testbench (plus the entity code when
/// the set drives a cone other than the bundle's main one — the remainder
/// cone of a non-divisor decomposition).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSet {
    /// Entity the vectors drive.
    pub entity_name: String,
    /// Entity code, when this is not the bundle's main entity.
    pub entity: Option<String>,
    /// File name of the vector file (`<entity>.vectors`).
    pub vectors_name: String,
    /// Vector-file text (the line-oriented exchange format).
    pub vectors: String,
    /// File name of the vector testbench (`tb_<entity>_vec.vhd`).
    pub testbench_name: String,
    /// The self-checking vector-replay testbench.
    pub testbench: String,
}

/// Everything needed to drop a cone into a VHDL project.
///
/// A bundle from [`IslSession::synthesize`] carries the support package,
/// entity, wrapper and the classic single-window testbench; a bundle from
/// [`Certified::synthesize`] additionally ships the certified golden-vector
/// files and their replay testbenches ([`VhdlBundle::vectors`]), so an
/// external GHDL/ModelSim run is one command: [`VhdlBundle::write_to`] a
/// directory and execute the generated `run_ghdl.sh`.
#[derive(Debug, Clone, PartialEq)]
pub struct VhdlBundle {
    /// The fixed-point support package (`isl_fixed_pkg`).
    pub package: String,
    /// The cone entity + architecture.
    pub entity: String,
    /// The tile wrapper (serial window loader + fire/collect control).
    pub wrapper: String,
    /// A self-checking testbench (drives the bare cone).
    pub testbench: String,
    /// The entity name.
    pub entity_name: String,
    /// Pipeline depth, cycles.
    pub pipeline_stages: u32,
    /// Certified golden-vector replay sets (empty unless the bundle came
    /// through [`Certified::synthesize`]; certified shapes without stimulus
    /// ports — constant-only cones — have nothing to replay and are
    /// omitted).
    pub vectors: Vec<VectorSet>,
}

impl VhdlBundle {
    /// Every file of the bundle as `(file name, contents)`, in compile
    /// order: package, entities, wrapper, testbenches, vector files, and
    /// the `run_ghdl.sh` driver script.
    pub fn files(&self) -> Vec<(String, String)> {
        let mut files = vec![
            ("isl_fixed_pkg.vhd".to_string(), self.package.clone()),
            (format!("{}.vhd", self.entity_name), self.entity.clone()),
        ];
        for set in &self.vectors {
            if let Some(entity) = &set.entity {
                files.push((format!("{}.vhd", set.entity_name), entity.clone()));
            }
        }
        files.push((format!("{}_tile.vhd", self.entity_name), self.wrapper.clone()));
        files.push((format!("tb_{}.vhd", self.entity_name), self.testbench.clone()));
        for set in &self.vectors {
            files.push((set.vectors_name.clone(), set.vectors.clone()));
            files.push((set.testbench_name.clone(), set.testbench.clone()));
        }
        files.push(("run_ghdl.sh".to_string(), self.ghdl_script()));
        files
    }

    /// A shell script that analyses, elaborates and runs every shipped
    /// testbench in GHDL (any VHDL-93 simulator accepts the same file
    /// list) — the promised one-command external replay.
    pub fn ghdl_script(&self) -> String {
        let mut sources = vec![
            "isl_fixed_pkg.vhd".to_string(),
            format!("{}.vhd", self.entity_name),
        ];
        for set in &self.vectors {
            if set.entity.is_some() {
                sources.push(format!("{}.vhd", set.entity_name));
            }
        }
        sources.push(format!("{}_tile.vhd", self.entity_name));
        sources.push(format!("tb_{}.vhd", self.entity_name));
        let mut benches = vec![format!("tb_{}", self.entity_name)];
        for set in &self.vectors {
            sources.push(set.testbench_name.clone());
            benches.push(format!("tb_{}_vec", set.entity_name));
        }
        let mut script = String::from(
            "#!/bin/sh\n# Replay every shipped testbench (self-checking: any assertion\n# failure stops the run with a non-zero exit).\nset -e\n",
        );
        script.push_str(&format!("ghdl -a --std=93 {}\n", sources.join(" ")));
        for tb in &benches {
            script.push_str(&format!("ghdl -e --std=93 {tb}\nghdl -r --std=93 {tb}\n"));
        }
        script.push_str("echo \"all testbenches passed\"\n");
        script
    }

    /// Write every bundle file (and `run_ghdl.sh`) into `dir`, creating it
    /// if needed. Returns the written paths.
    ///
    /// # Errors
    ///
    /// [`FlowError::Io`] on filesystem failures.
    pub fn write_to(&self, dir: &Path) -> Result<Vec<PathBuf>, FlowError> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::new();
        for (name, contents) in self.files() {
            let path = dir.join(name);
            std::fs::write(&path, contents)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// Evidence that one architecture instance computes what the hardware will:
/// returned by [`IslSession::certify`] (and the [`crate::IslFlow`] shim).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchitectureCertificate {
    /// The certified instance.
    pub arch: Architecture,
    /// Iterations of the certified run.
    pub iterations: u32,
    /// Fixed-point format of the datapath.
    pub format: FixedFormat,
    /// Frame elements compared bit-for-bit across the quantised compiled /
    /// reference engine pairs (tiled + cone-DAG).
    pub quantized_elements: usize,
    /// Golden-vector files, one per distinct cone shape of the
    /// decomposition — every firing of the run, certified mismatch-free.
    pub vector_files: Vec<VectorFile>,
    /// Cone firings certified across all vector files.
    pub vector_records: usize,
    /// Response words certified bit-for-bit.
    pub vector_words: usize,
    /// Largest |fixed-point − f64| deviation from the **whole-frame golden
    /// run** (the end-to-end numeric cost of the hardware, measured — not
    /// assumed). Includes the decomposition's cone-base border semantics,
    /// so it has a format-independent floor at frame edges.
    pub max_fixed_error: f64,
    /// Root-mean-square counterpart of
    /// [`ArchitectureCertificate::max_fixed_error`].
    pub rms_fixed_error: f64,
    /// Largest |fixed-point − f64| deviation from the **exact-arithmetic
    /// run of the same cone decomposition** — the pure cost of the
    /// fixed-point format, with the decomposition's (format-independent)
    /// border semantics factored out. Monotone non-increasing in the
    /// fractional width, which is the axis [`crate::ErrorBudget`] bounds
    /// and the format search binary-searches.
    pub max_quant_error: f64,
    /// Root-mean-square counterpart of
    /// [`ArchitectureCertificate::max_quant_error`] (the second budget
    /// axis).
    pub rms_quant_error: f64,
}

// ---------------------------------------------------------------------------
// The session (the `Spec` stage).
// ---------------------------------------------------------------------------

/// The immutable stencil spec a session is anchored on.
#[derive(Debug, Clone)]
struct Spec {
    pattern: StencilPattern,
    fingerprint: u64,
    iterations: u32,
    border: BorderMode,
    synth_options: SynthOptions,
    schedule: ScheduleModel,
    threads: usize,
    /// Consult the `isl-analyze` saturation certificates during
    /// `search_format` to route statically-doomed escalation probes
    /// through the cheap error-measurement-only path. Outside every store
    /// key on purpose: probe results are bit-identical either way, only
    /// the work performed differs.
    static_analysis: bool,
}

/// A staged-pipeline session: one stencil spec, one shared
/// [`ArtifactStore`].
///
/// Cloning a session is cheap and shares the store — hand clones to threads
/// (all stage methods take `&self`) or keep one session per process and let
/// every request reuse each other's artifacts. Builder-style `with_*`
/// methods refine the spec without touching the store; store keys embed the
/// options, so artifacts cached under previous settings are simply not
/// matched.
///
/// See the [crate-level documentation](crate) for the full staged example
/// and the migration table from the flat [`crate::IslFlow`] API.
#[derive(Debug, Clone)]
pub struct IslSession {
    spec: Arc<Spec>,
    store: Arc<ArtifactStore>,
}

impl IslSession {
    /// Stage 1 (**Spec**): parse, analyse and symbolically execute a C
    /// kernel.
    ///
    /// # Errors
    ///
    /// [`FlowError::Analysis`] with the frontend/symexec diagnostic.
    pub fn from_source(source: &str) -> Result<Self, FlowError> {
        let _span = isl_telemetry::span("stage", "Spec");
        let (pattern, info) = compile_str(source).map_err(|e| FlowError::from(e).at(Stage::Spec, None))?;
        let border = info
            .border
            .as_deref()
            .and_then(BorderMode::parse)
            .unwrap_or_default();
        Ok(Self::from_pattern(pattern, info.iterations.unwrap_or(1)).with_border(border))
    }

    /// Build the session from a built-in algorithm.
    ///
    /// # Errors
    ///
    /// Same as [`IslSession::from_source`].
    pub fn from_algorithm(algorithm: &Algorithm) -> Result<Self, FlowError> {
        Self::from_source(algorithm.source)
    }

    /// [`IslSession::from_source`] under observation: start a fresh global
    /// telemetry run ([`isl_telemetry::start`]) *before* parsing, so the
    /// Spec stage itself is on the record, then pull the evidence any time
    /// with [`IslSession::telemetry_report`].
    ///
    /// Telemetry is **process-global** (one collector, like the `log`
    /// crate): this resets whatever a previous run recorded, every session
    /// in the process contributes to the same record, and collection stays
    /// enabled until [`isl_telemetry::set_enabled`]`(false)`. Disabled-mode
    /// probes cost one relaxed atomic load, so leaving instrumented code
    /// paths compiled in is free in production.
    ///
    /// # Errors
    ///
    /// Same as [`IslSession::from_source`].
    pub fn with_telemetry(source: &str) -> Result<Self, FlowError> {
        isl_telemetry::start();
        Self::from_source(source)
    }

    /// The observability evidence recorded since telemetry started: the
    /// global span/counter/gauge snapshot fused with this session's store
    /// counters. See [`TelemetryReport`] for the three sink formats (JSON
    /// run report, Chrome trace event file, human summary).
    pub fn telemetry_report(&self) -> TelemetryReport {
        TelemetryReport::new(isl_telemetry::snapshot(), self.store.stats())
    }

    /// Build the session from an already-extracted pattern.
    pub fn from_pattern(pattern: StencilPattern, iterations: u32) -> Self {
        // Every compile this session triggers is bytecode-verified in
        // debug builds (first install wins; cheap when already set).
        isl_analyze::install_debug_verifier();
        let fingerprint = pattern.fingerprint();
        IslSession {
            spec: Arc::new(Spec {
                pattern,
                fingerprint,
                iterations: iterations.max(1),
                border: BorderMode::default(),
                synth_options: SynthOptions::default(),
                schedule: ScheduleModel::default(),
                threads: 0,
                static_analysis: true,
            }),
            store: Arc::new(ArtifactStore::new()),
        }
    }

    /// Override the border mode.
    pub fn with_border(mut self, border: BorderMode) -> Self {
        Arc::make_mut(&mut self.spec).border = border;
        self
    }

    /// Override the iteration count.
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        Arc::make_mut(&mut self.spec).iterations = iterations.max(1);
        self
    }

    /// Override synthesis options (fixed-point format, sharing, jitter).
    pub fn with_synth_options(mut self, options: SynthOptions) -> Self {
        Arc::make_mut(&mut self.spec).synth_options = options;
        self
    }

    /// Override only the fixed-point format of the synthesis options — the
    /// knob the format search turns. The returned session shares this
    /// session's store, so artifacts probed under one format (cones are
    /// format-independent; certificates and syntheses key on the format)
    /// stay shared.
    pub fn with_format(mut self, format: FixedFormat) -> Self {
        Arc::make_mut(&mut self.spec).synth_options.format = format;
        self
    }

    /// Override the schedule model.
    pub fn with_schedule(mut self, schedule: ScheduleModel) -> Self {
        Arc::make_mut(&mut self.spec).schedule = schedule;
        self
    }

    /// Cap the worker threads of engines and batch fans (0 = one per core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        Arc::make_mut(&mut self.spec).threads = threads;
        self
    }

    /// Enable or disable the `isl-analyze` saturation certificates inside
    /// [`IslSession::search_format`] (default **on**). With analysis on,
    /// an escalation probe whose width the analyzer proves may-saturating
    /// skips its full certification and only measures the quantisation
    /// error — the returned [`FormatSearchOutcome`] is bit-identical
    /// either way (the property suite asserts it), and every skipped
    /// probe is counted in [`StoreStats::analysis_pruned_probes`].
    pub fn with_static_analysis(mut self, enabled: bool) -> Self {
        Arc::make_mut(&mut self.spec).static_analysis = enabled;
        self
    }

    /// Back this session's artifact store with the on-disk record file at
    /// `path` (creating it when absent): persisted calibrations, synthesis
    /// reports, golden vectors, certificates, reference runs and
    /// format-search outcomes are served warm across process restarts —
    /// bit-identical to cold recomputes, with the reuse observable as
    /// [`StoreStats`] disk hits instead of fresh builds. Artifacts already
    /// cached in memory by this session are kept.
    ///
    /// Corrupt or version-mismatched files are not errors: bad records
    /// degrade to cold builds and are counted in
    /// [`StoreStats::load_skipped_corrupt`]. The store flushes on drop;
    /// call [`IslSession::checkpoint`] to flush durably at a known point.
    ///
    /// # Errors
    ///
    /// [`FlowError::Io`] when the file exists but cannot be read.
    pub fn with_persistent_store(mut self, path: impl AsRef<Path>) -> Result<Self, FlowError> {
        self.store = Arc::new(ArtifactStore::open_persistent(path.as_ref())?);
        Ok(self)
    }

    /// Cap the persistent store file size in bytes; the flush path evicts
    /// least-recently-used records down to the budget. No-op without
    /// [`IslSession::with_persistent_store`], or when the store is already
    /// shared with clones of this session (set the budget at build time,
    /// right after [`IslSession::with_persistent_store`]).
    pub fn with_store_byte_budget(mut self, byte_budget: u64) -> Self {
        if let Some(store) = Arc::get_mut(&mut self.store) {
            *store = std::mem::take(store).with_byte_budget(byte_budget);
        }
        self
    }

    /// Durably flush the persistent store now (atomic write-then-rename;
    /// readers of the file never observe a partial write). Returns the
    /// bytes written — 0 when the store is clean or purely in-memory.
    ///
    /// # Errors
    ///
    /// [`FlowError::Io`] from the underlying write or rename; the previous
    /// file is untouched on failure.
    pub fn checkpoint(&self) -> Result<u64, FlowError> {
        self.store.checkpoint()
    }

    // -- spec accessors -----------------------------------------------------

    /// The extracted stencil pattern.
    pub fn pattern(&self) -> &StencilPattern {
        &self.spec.pattern
    }

    /// Iterations per frame (the paper's `N`).
    pub fn iterations(&self) -> u32 {
        self.spec.iterations
    }

    /// Border mode used for simulation.
    pub fn border(&self) -> BorderMode {
        self.spec.border
    }

    /// Active synthesis options.
    pub fn synth_options(&self) -> SynthOptions {
        self.spec.synth_options
    }

    /// Active schedule model.
    pub fn schedule(&self) -> ScheduleModel {
        self.spec.schedule
    }

    /// A workload for this ISL over `width`×`height` frames.
    pub fn workload(&self, width: u32, height: u32) -> Workload {
        Workload::image(width, height, self.spec.iterations)
    }

    /// The shared artifact store.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Snapshot of the store's per-kind hit/miss counters.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    // -- shared infrastructure ---------------------------------------------

    /// The cone of one shape, through the store (stage context applied
    /// uniformly whether served or built).
    fn cone_at(&self, stage: Stage, window: Window, depth: u32) -> Result<Arc<Cone>, FlowError> {
        let _span = isl_telemetry::span!("artifact", "cone w{} d{}", window, depth);
        let key = format!("cone {}_w{window}_d{depth}", self.spec.pattern.name());
        self.store
            .cone(&self.spec.pattern, window, depth, true)
            .map_err(|e| FlowError::from(e).at(stage, Some(&key)))
    }

    /// Stage 2 helper, public for shims and power users: the shared cone of
    /// `(window, depth)`.
    ///
    /// # Errors
    ///
    /// [`FlowError::Cone`] on invalid depth/pattern, tagged with the
    /// decompose stage and the cone's key.
    pub fn cone(&self, window: Window, depth: u32) -> Result<Arc<Cone>, FlowError> {
        self.cone_at(Stage::Decompose, window, depth)
    }

    /// A synthesiser wired to the store's cone and report caches.
    fn synthesizer<'d>(&self, device: &'d Device) -> Synthesizer<'d> {
        Synthesizer::with_options(device, self.spec.synth_options)
            .with_caches(self.store.cones().clone(), self.store.syntheses().clone())
    }

    /// An explorer wired to the store's caches.
    fn explorer<'d>(&self, device: &'d Device) -> isl_dse::Explorer<'d> {
        isl_dse::Explorer::new(device)
            .with_synth_options(self.spec.synth_options)
            .with_schedule(self.spec.schedule)
            .with_threads(self.spec.threads)
            .with_caches(self.store.cones().clone(), self.store.syntheses().clone())
    }

    /// A functional simulator wired to the store's compile caches (golden /
    /// tiled / cone-DAG semantics).
    ///
    /// # Errors
    ///
    /// [`FlowError::Simulation`] for unsupported ranks.
    pub fn simulator(&self) -> Result<Simulator<'_>, FlowError> {
        Ok(Simulator::new(&self.spec.pattern)
            .map_err(|e| FlowError::from(e).at(Stage::Simulate, None))?
            .with_border(self.spec.border)
            .with_threads(self.spec.threads)
            .with_program_cache(self.store.programs().clone())
            .with_cone_cache(self.store.cones().clone()))
    }

    // -- stage 2: Decomposed -------------------------------------------------

    /// Stage 2 (**Decomposed**): decompose this spec's iteration count into
    /// levels of depth-`depth` cones over `window` and build (or fetch) the
    /// cone of every distinct level depth.
    ///
    /// # Errors
    ///
    /// [`FlowError::Cone`] on invalid depth/pattern.
    pub fn decompose(&self, window: Window, depth: u32) -> Result<Decomposed, FlowError> {
        let _span = isl_telemetry::span("stage", "Decomposed");
        let levels = if depth == 0 {
            // Surface the error through the same path a cone build would.
            return Err(self.cone_at(Stage::Decompose, window, depth).unwrap_err());
        } else {
            level_depths(self.spec.iterations, depth)
        };
        let mut cones: Vec<(u32, Arc<Cone>)> = Vec::new();
        for &d in &levels {
            if !cones.iter().any(|(cd, _)| *cd == d) {
                cones.push((d, self.cone_at(Stage::Decompose, window, d)?));
            }
        }
        Ok(Decomposed {
            session: self.clone(),
            window,
            depth,
            levels,
            cones,
        })
    }

    // -- stage 3: Estimated --------------------------------------------------

    /// Stage 3 (**Estimated**): α-calibrate the area model and derive the
    /// cone facts of every shape `space` can touch on `device` — the
    /// expensive half of an exploration, stored and reused across repeated
    /// calls, other workloads of the same iteration count, and threads.
    ///
    /// # Errors
    ///
    /// [`FlowError::Exploration`] on calibration failures.
    pub fn estimate(&self, device: &Device, space: &DesignSpace) -> Result<Estimated, FlowError> {
        self.estimate_for(device, space, self.spec.iterations)
    }

    /// [`IslSession::estimate`] for an explicit iteration count (the
    /// remainder depths a calibration covers depend on it). Calibrations of
    /// different iteration counts are distinct store entries.
    fn estimate_for(
        &self,
        device: &Device,
        space: &DesignSpace,
        iterations: u32,
    ) -> Result<Estimated, FlowError> {
        let _span = isl_telemetry::span("stage", "Estimated");
        let key = CalibrationKey::new(
            self.spec.fingerprint,
            device,
            &self.spec.synth_options,
            iterations,
            space,
        );
        let artifact = key.describe();
        let explorer = self.explorer(device);
        let calibration = self
            .store
            .calibration(key, || {
                explorer
                    .calibrate(&self.spec.pattern, iterations, space)
                    .map_err(FlowError::from)
            })
            .map_err(|e| e.at(Stage::Estimate, Some(&artifact)))?;
        Ok(Estimated {
            session: self.clone(),
            device: device.clone(),
            space: space.clone(),
            calibration,
        })
    }

    // -- stage 4: Explored ---------------------------------------------------

    /// Stage 4 (**Explored**): explore the design space and extract the
    /// Pareto set — an estimation stage followed by [`Estimated::explore`].
    /// The calibration follows `workload`'s iteration count (which may
    /// differ from the session's), exactly like the pre-redesign flat API.
    ///
    /// # Errors
    ///
    /// [`FlowError::Exploration`] when nothing is feasible.
    pub fn explore(
        &self,
        device: &Device,
        workload: Workload,
        space: &DesignSpace,
    ) -> Result<Explored, FlowError> {
        self.estimate_for(device, space, workload.iterations)?
            .explore(workload)
    }

    /// Fan a batch of exploration requests over the worker pool, all
    /// sharing this session's store — cones and calibration syntheses of
    /// one shape are shared across the whole batch (e.g. one workload on
    /// many devices, or many frame sizes on one device). Requests that
    /// race on an artifact nobody has built yet build it exactly once:
    /// the first claims the build and the rest block for the result
    /// (single-flight — the waiters count as hits). Results are in request
    /// order, each independently `Ok` or `Err`.
    pub fn explore_many(&self, requests: &[ExploreRequest<'_>]) -> Vec<Result<Explored, FlowError>> {
        par_map(requests.to_vec(), self.spec.threads, |req| {
            self.explore(req.device, req.workload, req.space)
        })
    }

    // -- stage 5: Synthesized ------------------------------------------------

    /// Stage 5 (**Synthesized**): generate the complete VHDL bundle for one
    /// cone shape (no golden vectors — certify first and use
    /// [`Certified::synthesize`] for a bundle that ships them).
    ///
    /// # Errors
    ///
    /// [`FlowError::Cone`] on invalid depth/pattern.
    pub fn synthesize(&self, window: Window, depth: u32) -> Result<Synthesized, FlowError> {
        let _span = isl_telemetry::span("stage", "Synthesized");
        let cone = self.cone_at(Stage::Synthesize, window, depth)?;
        Ok(Synthesized {
            session: self.clone(),
            bundle: self.bundle_of(&cone, &[])?,
        })
    }

    /// Assemble a bundle for `cone`, shipping `vectors` (entity code is
    /// generated for vector shapes that differ from the main cone). Vector
    /// files without stimulus ports (constant-only cones — certified
    /// word-for-word but with nothing for a testbench to drive) are the
    /// only ones skipped; every other failure propagates.
    fn bundle_of(&self, cone: &Cone, vectors: &[VectorFile]) -> Result<VhdlBundle, FlowError> {
        let fmt = self.spec.synth_options.format;
        let module = generate_cone(cone, &VhdlOptions { format: fmt });
        let testbench = generate_testbench(cone, &module, fmt);
        let wrapper = generate_wrapper(cone, &module);
        let mut sets = Vec::new();
        for file in vectors {
            if file.ports_in.is_empty() {
                continue;
            }
            // Vector files of foreign shapes need their own entity; the
            // cones come from the store (already built by certify).
            let vcone = self.cone_at(Stage::Synthesize, file.window, file.depth)?;
            let vmodule = generate_cone(&vcone, &VhdlOptions { format: fmt });
            let tb = generate_vector_testbench(&vmodule, file)
                .map_err(|e| FlowError::Verification(e.to_string()).at(Stage::Synthesize, None))?;
            sets.push(VectorSet {
                entity: (vmodule.entity_name != module.entity_name).then_some(vmodule.code),
                entity_name: vmodule.entity_name,
                vectors_name: format!("{}.vectors", file.entity),
                vectors: file.to_text(),
                testbench_name: format!("tb_{}_vec.vhd", file.entity),
                testbench: tb,
            });
        }
        Ok(VhdlBundle {
            package: fixed_package(fmt),
            entity_name: module.entity_name.clone(),
            pipeline_stages: module.pipeline_stages,
            entity: module.code,
            wrapper: wrapper.code,
            testbench,
            vectors: sets,
        })
    }

    // -- simulation ----------------------------------------------------------

    /// Run this ISL's full iteration count on `init` through the compiled
    /// tiled engine with the exact window/depth decomposition of `arch` —
    /// i.e. simulate what the explored architecture instance computes.
    /// Bit-identical to the golden run for local border modes.
    ///
    /// # Errors
    ///
    /// [`FlowError::Simulation`] for unsupported ranks, non-local borders,
    /// or mismatched frame sets.
    pub fn run_architecture(
        &self,
        init: &FrameSet,
        arch: Architecture,
    ) -> Result<FrameSet, FlowError> {
        let sim = self.simulator()?;
        sim.run_tiled(init, self.spec.iterations, arch.window, arch.depth)
            .map_err(|e| FlowError::from(e).at(Stage::Simulate, None))
    }

    // -- estimation passthroughs ---------------------------------------------

    /// Validate the Eq. 1 area model over a window/depth grid on `device`
    /// (the Figure 5 / Figure 8 experiment).
    ///
    /// # Errors
    ///
    /// [`FlowError::Estimation`] on calibration/synthesis failures.
    pub fn validate_area_model(
        &self,
        device: &Device,
        windows: &[Window],
        depths: &[u32],
        calibration_points: usize,
    ) -> Result<AreaValidation, FlowError> {
        let synth = self.synthesizer(device);
        AreaValidation::run(&synth, &self.spec.pattern, windows, depths, calibration_points)
            .map_err(|e| FlowError::from(e).at(Stage::Estimate, None))
    }

    /// Estimate one architecture's throughput on `device`.
    ///
    /// # Errors
    ///
    /// [`FlowError::Estimation`] on infeasibility or bad parameters.
    pub fn throughput(
        &self,
        device: &Device,
        arch: Architecture,
        workload: Workload,
    ) -> Result<ThroughputReport, FlowError> {
        let synth = self.synthesizer(device);
        let est = ThroughputEstimator::with_schedule(&synth, self.spec.schedule);
        est.estimate(&self.spec.pattern, arch, workload)
            .map_err(|e| FlowError::from(e).at(Stage::Estimate, None))
    }

    /// Best throughput for a window/depth when the device is packed with as
    /// many cores as fit (the Figure 7 / Figure 10 experiment).
    ///
    /// # Errors
    ///
    /// [`FlowError::Estimation`] on infeasibility.
    pub fn best_on_device(
        &self,
        device: &Device,
        window: Window,
        depth: u32,
        workload: Workload,
    ) -> Result<ThroughputReport, FlowError> {
        let synth = self.synthesizer(device);
        let est = ThroughputEstimator::with_schedule(&synth, self.spec.schedule);
        est.best_on_device(&self.spec.pattern, window, depth, workload)
            .map_err(|e| FlowError::from(e).at(Stage::Estimate, None))
    }

    // -- stage 6: Certified ----------------------------------------------------

    /// Stage 6 (**Certified**): certify an explored architecture instance
    /// end to end on `init`:
    ///
    /// 1. the **compiled quantised tiled** run (fixed-point rounding after
    ///    every operation, at `arch`'s exact window/depth decomposition) is
    ///    checked bit-identical to the tree-walking quantised reference;
    /// 2. the **compiled quantised cone-DAG** run — the hardware's actual
    ///    multi-level datapath semantics — likewise;
    /// 3. the bit-true **integer co-simulator** replays the decomposition
    ///    on raw fixed-point words and records every cone firing as golden
    ///    vectors, which must pass [`isl_vhdl::check::verify_vectors`]
    ///    (independent re-derivation of every response word) with zero
    ///    mismatches; the vector-file testbenches are generated and
    ///    structurally checked along the way.
    ///
    /// The certificate (golden vectors included) is stored: repeating the
    /// call — from any thread, any clone of this session — serves the
    /// stored evidence, and [`Certified::synthesize`] packages the vectors
    /// into a replayable [`VhdlBundle`].
    ///
    /// # Errors
    ///
    /// [`FlowError::Verification`] on any divergence;
    /// [`FlowError::Simulation`] for unsupported ranks, non-local borders or
    /// mismatched frame sets.
    pub fn certify(&self, init: &FrameSet, arch: Architecture) -> Result<Certified, FlowError> {
        let _span = isl_telemetry::span("stage", "Certified");
        let key = RunKey::new(
            self.spec.fingerprint,
            init,
            self.spec.synth_options.format,
            self.spec.border,
            self.spec.iterations,
            arch.window,
            arch.depth,
        );
        let artifact = key.describe();
        let vector_key = key.clone();
        let certificate = self
            .store
            .certificate(key, arch.cores, || self.certify_cold(init, arch, vector_key))
            .map_err(|e| e.at(Stage::Certify, Some(&artifact)))?;
        Ok(Certified {
            session: self.clone(),
            certificate,
        })
    }

    /// Fan a batch of certification requests over the worker pool, sharing
    /// the store (and therefore cones, compiled programs and golden-vector
    /// sets) across all of them. Results are in request order.
    pub fn verify_many(&self, requests: &[VerifyRequest<'_>]) -> Vec<Result<Certified, FlowError>> {
        par_map(requests.to_vec(), self.spec.threads, |req| {
            self.certify(req.init, req.arch)
        })
    }

    /// The cold path of [`IslSession::certify`] — always recomputes; the
    /// store guarantees a cached certificate came from exactly this code on
    /// the same key. `vector_key` is the caller's run key (same content,
    /// core count excluded by construction), reused so the frame set is
    /// fingerprinted once.
    fn certify_cold(
        &self,
        init: &FrameSet,
        arch: Architecture,
        vector_key: RunKey,
    ) -> Result<ArchitectureCertificate, FlowError> {
        let fmt = self.spec.synth_options.format;
        let q = isl_cosim::quantizer_of(fmt);
        let sim = self.simulator()?;
        let iters = self.spec.iterations;
        let (window, depth) = (arch.window, arch.depth);

        let bitwise = |a: &FrameSet, b: &FrameSet, what: &str| -> Result<usize, FlowError> {
            let mut n = 0;
            for fi in 0..a.len() {
                for (i, (x, y)) in a
                    .frame(fi)
                    .as_slice()
                    .iter()
                    .zip(b.frame(fi).as_slice())
                    .enumerate()
                {
                    if x.to_bits() != y.to_bits() {
                        return Err(FlowError::Verification(format!(
                            "{what}: field {fi} element {i}: compiled {x} vs reference {y}"
                        )));
                    }
                    n += 1;
                }
            }
            Ok(n)
        };

        // 1) Quantised tiled semantics, compiled vs golden tree walk.
        let span_q = isl_telemetry::span("certify", "quantised engine checks");
        let tiled = sim.run_tiled_quantized(init, iters, window, depth, q)?;
        let tiled_ref = sim.run_tiled_quantized_reference(init, iters, window, depth, q)?;
        let mut quantized_elements = bitwise(&tiled, &tiled_ref, "quantised tiled")?;

        // 2) Quantised cone-DAG semantics, compiled vs golden graph walk.
        let dag = sim.run_cone_dag_quantized(init, iters, window, depth, q)?;
        let dag_ref = sim.run_cone_dag_quantized_reference(init, iters, window, depth, q)?;
        quantized_elements += bitwise(&dag, &dag_ref, "quantised cone-DAG")?;
        drop(span_q);

        // 3) Bit-true integer co-simulation + golden-vector certification.
        // The vector set is itself a stored artifact (keyed without the
        // core count — vectors are per-decomposition), so certifying the
        // same decomposition at another core count replays the stored
        // firings instead of re-running the co-simulator.
        let cosim = CoSimulator::new(&self.spec.pattern, fmt)?.with_border(self.spec.border);
        let vector_files = self
            .store
            .golden_vectors(vector_key, || {
                cosim
                    .golden_vectors(init, iters, window, depth)
                    .map_err(FlowError::from)
            })?;
        let span_v = isl_telemetry::span("certify", "vector verify");
        let mut vector_records = 0;
        let mut vector_words = 0;
        for file in vector_files.iter() {
            let cone = self.cone_at(Stage::Certify, file.window, file.depth)?;
            let report = verify_vectors(&cone, fmt, file)
                .map_err(|e| FlowError::Verification(e.to_string()))?;
            vector_records += report.records;
            vector_words += report.words;
            // The exchange works end to end: the file round-trips through
            // its text form and drives a structurally valid testbench.
            let reparsed = VectorFile::parse(&file.to_text())
                .map_err(|e| FlowError::Verification(e.to_string()))?;
            if &reparsed != file {
                return Err(FlowError::Verification(
                    "vector file text round-trip diverged".into(),
                ));
            }
            // A constant-only cone has no stimulus ports; its firings are
            // still certified word-for-word above, but there is nothing for
            // a replay testbench to drive.
            if !file.ports_in.is_empty() {
                let module = generate_cone(&cone, &VhdlOptions { format: fmt });
                let tb = generate_vector_testbench(&module, file)
                    .map_err(|e| FlowError::Verification(e.to_string()))?;
                isl_vhdl::check::balance_only(&tb)
                    .map_err(|e| FlowError::Verification(e.to_string()))?;
            }
        }

        drop(span_v);

        // Measured accuracy of the hardware datapath, on two references:
        // the whole-frame golden run (end-to-end, includes the cone-base
        // border semantics of the decomposition) and the exact-arithmetic
        // run of the *same* decomposition (pure format cost — the monotone
        // axis the format search budgets). Both are format-independent, so
        // they are stored once per decomposition and shared by every
        // format the search probes.
        let refs = self.reference_runs(init, window, depth)?;
        let (golden, exact_dag) = (&refs.0, &refs.1);
        let fixed = cosim
            .run_cone_levels(init, iters, window, depth)?
            .dequantize(fmt);
        let metrics = isl_cosim::error_metrics(golden, &fixed);
        let quant = isl_cosim::error_metrics(exact_dag, &fixed);

        Ok(ArchitectureCertificate {
            arch,
            iterations: iters,
            format: fmt,
            quantized_elements,
            vector_files: (*vector_files).clone(),
            vector_records,
            vector_words,
            max_fixed_error: metrics.max_abs,
            rms_fixed_error: metrics.rms,
            max_quant_error: quant.max_abs,
            rms_quant_error: quant.rms,
        })
    }

    /// The `(whole-frame golden, exact cone-DAG)` `f64` reference pair of
    /// one decomposition over `init`, through the store — computed once
    /// and shared by every format certified against it.
    fn reference_runs(
        &self,
        init: &FrameSet,
        window: Window,
        depth: u32,
    ) -> Result<Arc<(FrameSet, FrameSet)>, FlowError> {
        let key = RefKey::new(
            self.spec.fingerprint,
            init,
            self.spec.border,
            self.spec.iterations,
            window,
            depth,
        );
        self.store.reference_runs(key, || {
            let sim = self.simulator()?;
            let golden = sim.run(init, self.spec.iterations)?;
            let exact = sim.run_cone_dag(init, self.spec.iterations, window, depth)?;
            Ok::<_, FlowError>((golden, exact))
        })
    }

    // -- stage 7: FormatSearched ---------------------------------------------

    /// Stage 7 (**FormatSearched**): precision design-space exploration —
    /// find the narrowest certified [`FixedFormat`] whose measured error
    /// against the exact-arithmetic (`f64`) run of the *same* cone
    /// decomposition stays within `budget`, for `arch`'s decomposition
    /// over `init`.
    ///
    /// The search fixes the integer bits from the measured dynamic range of
    /// the reference run (plus one headroom bit, escalated when
    /// intermediate saturation shows up in the widest probe) and
    /// **binary-searches the fractional bits**: the quantisation error is
    /// monotone non-increasing in `frac` at fixed integer width (up to
    /// per-pixel rounding noise — saturation residue is frac-independent
    /// and handled by the integer-bit escalation), which
    /// `tests/tests/format_search_props.rs` property-tests.
    /// Every probe is a full [`IslSession::certify`] at that format —
    /// quantised engines bitwise-checked, golden vectors generated and
    /// verified word-for-word — so each probed format's vectors and
    /// [`ArchitectureCertificate`] land in the artifact store. Re-running
    /// the search warm (same budget) serves the stored outcome; re-running
    /// with a *different* budget re-drives the binary search but serves
    /// every previously-probed format from the store (zero new quantised
    /// builds for overlapping probes — observable in
    /// [`IslSession::store_stats`]).
    ///
    /// `device` anchors the area axis: the outcome reports the synthesised
    /// LUT area of `arch` at the chosen format vs. the session's default
    /// format, both through the width-parameterised technology mapper, so
    /// the saving feeds straight back into DSE
    /// ([`FormatSearched::session`] + [`IslSession::explore`]).
    ///
    /// # Errors
    ///
    /// [`FlowError::Format`] when the budget is malformed or no format up
    /// to `budget.max_width` bits meets it; [`FlowError::Verification`] /
    /// [`FlowError::Simulation`] when a probe itself fails to certify.
    pub fn search_format(
        &self,
        device: &Device,
        init: &FrameSet,
        arch: Architecture,
        budget: ErrorBudget,
    ) -> Result<FormatSearched, FlowError> {
        let _span = isl_telemetry::span("stage", "FormatSearched");
        budget
            .validate()
            .map_err(|e| e.at(Stage::FormatSearch, None))?;
        let run_key = RunKey::new(
            self.spec.fingerprint,
            init,
            self.spec.synth_options.format,
            self.spec.border,
            self.spec.iterations,
            arch.window,
            arch.depth,
        );
        let key = SearchKey::new(run_key, arch.cores, device, &self.spec.synth_options, &budget);
        let artifact = key.describe();
        let outcome = self
            .store
            .format_search(key, || self.search_format_cold(device, init, arch, budget))
            .map_err(|e| e.at(Stage::FormatSearch, Some(&artifact)))?;
        Ok(FormatSearched {
            session: self.clone(),
            outcome,
        })
    }

    /// The cold path of [`IslSession::search_format`] — runs the actual
    /// probes. Individual probe certificates, golden vectors and synthesis
    /// reports still come from (and land in) the shared store, which is
    /// what makes a re-search with a different budget incremental.
    fn search_format_cold(
        &self,
        device: &Device,
        init: &FrameSet,
        arch: Architecture,
        budget: ErrorBudget,
    ) -> Result<FormatSearchOutcome, FlowError> {
        // Dynamic range of the exact run fixes the starting integer bits:
        // the smallest signed integer field covering every input and output
        // sample, plus one headroom bit for intermediate growth inside a
        // cone. The reference pair lands in the store, where every probe's
        // certification reuses it.
        let refs = self.reference_runs(init, arch.window, arch.depth)?;
        let golden = &refs.0;
        let mut maxabs = 0.0f64;
        for fs in [init, golden] {
            for frame in fs.frames().iter() {
                for &v in frame.as_slice() {
                    if v.is_finite() {
                        maxabs = maxabs.max(v.abs());
                    }
                }
            }
        }
        let mut int_bits = 2u32;
        while int_bits < budget.max_width && (1u128 << (int_bits - 1)) as f64 <= maxabs {
            int_bits += 1;
        }
        int_bits = (int_bits + 1).clamp(2, budget.max_width.saturating_sub(1).max(1));

        let mut probes: Vec<FormatProbe> = Vec::new();
        let probe = |fmt: FixedFormat| -> Result<FormatProbe, FlowError> {
            let _span = isl_telemetry::span!("search", "probe {}", fmt);
            let certified = self.clone().with_format(fmt).certify(init, arch)?;
            let c = certified.certificate();
            Ok(FormatProbe {
                format: fmt,
                max_abs_error: c.max_quant_error,
                rms_error: c.rms_quant_error,
                within_budget: budget.admits(c.max_quant_error, c.rms_quant_error),
            })
        };

        // Static saturation gate (`isl-analyze`): the fold-free cone
        // program of this decomposition — the exact instruction set the
        // bit-true engines execute — abstractly interpreted per candidate
        // format over the measured value box. `may_saturate == false` is a
        // proof; `true` flags the escalation probe as statically doomed,
        // and the probe is then served by `light_probe`, which measures
        // only the quantisation error the probe reports — the same
        // `run_cone_levels` + `error_metrics` numbers `certify` records,
        // bit-identically — and skips the full certification (quantised
        // engine cross-checks, golden vectors, testbench). The verdict
        // only ever picks between two bit-identical ways of computing the
        // probe, so an over- or under-approximate gate costs work, never
        // correctness.
        let sat_gate = if self.spec.static_analysis {
            let cone = self.cone_at(Stage::FormatSearch, arch.window, arch.depth)?;
            let params: Vec<f64> =
                self.spec.pattern.params().iter().map(|p| p.default).collect();
            Some(CompiledCone::compile_with(&cone, &params, false))
        } else {
            None
        };
        let may_saturate = |fmt: FixedFormat| -> bool {
            sat_gate.as_ref().is_some_and(|cc| {
                let input =
                    isl_analyze::WordRange::new(fmt.quantize(-maxabs), fmt.quantize(maxabs));
                isl_analyze::Analysis::of_cone(cc, fmt, input)
                    .map(|a| a.may_saturate())
                    .unwrap_or(false)
            })
        };
        let light_probe = |fmt: FixedFormat| -> Result<FormatProbe, FlowError> {
            let _span = isl_telemetry::span!("search", "light probe {}", fmt);
            let cosim =
                CoSimulator::new(&self.spec.pattern, fmt)?.with_border(self.spec.border);
            let fixed = cosim
                .run_cone_levels(init, self.spec.iterations, arch.window, arch.depth)?
                .dequantize(fmt);
            let quant = isl_cosim::error_metrics(&refs.1, &fixed);
            Ok(FormatProbe {
                format: fmt,
                max_abs_error: quant.max_abs,
                rms_error: quant.rms,
                within_budget: budget.admits(quant.max_abs, quant.rms),
            })
        };

        // Widest candidate at the current integer width. When even the
        // widest word misses the budget the error may be dominated by
        // *intermediate saturation* (frame values fit, but e.g. a squared
        // gradient overflows the integer range — a residual the fractional
        // bits cannot buy back) — trade fractional for integer bits and
        // retry while that keeps helping. A failure that escalation does
        // not improve is quantisation-limited: the budget is unreachable
        // at this width cap, and further escalations would only certify
        // strictly worse formats.
        let mut escalations = 0;
        let unreachable_budget = |probes: &[FormatProbe]| -> FlowError {
            let best = probes
                .iter()
                .min_by(|a, b| {
                    a.max_abs_error
                        .partial_cmp(&b.max_abs_error)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("at least one probe ran");
            FlowError::Format(format!(
                "no certifiable format up to {} bits meets the budget \
                 (best probe {}: max-abs {:.3e}, rms {:.3e}; \
                 budget max-abs {:.3e}, rms {:.3e})",
                budget.max_width,
                best.format,
                best.max_abs_error,
                best.rms_error,
                budget.max_abs,
                budget.rms
            ))
        };
        loop {
            let fmt_w = FixedFormat::new(budget.max_width, budget.max_width - int_bits);
            // A statically may-saturating escalation width gets the light
            // probe; when it fails the budget (the overwhelmingly common
            // outcome the proof predicts) the full certification was pure
            // waste and is skipped — counted in
            // `StoreStats::analysis_pruned_probes`. The rare flagged probe
            // that still lands in budget re-runs in full, preserving the
            // invariant that every passing probe holds a store-served
            // certificate.
            let p = if may_saturate(fmt_w) {
                let lp = light_probe(fmt_w)?;
                if lp.within_budget {
                    probe(fmt_w)?
                } else {
                    self.store.note_pruned_probe();
                    isl_telemetry::add("search.pruned_probes", 1);
                    lp
                }
            } else {
                probe(fmt_w)?
            };
            // Strictly worse than the previous widest probe: the lost
            // fractional bit cost more than the gained integer bit bought —
            // quantisation-limited, stop. (Saturation-limited escalations
            // plateau or improve: a fully saturated region can hold the
            // max error exactly flat until the range clears it.)
            let stalled = probes
                .last()
                .is_some_and(|prev| p.max_abs_error > prev.max_abs_error);
            probes.push(p);
            if p.within_budget {
                break;
            }
            escalations += 1;
            if stalled || int_bits + 1 >= budget.max_width || escalations > 16 {
                return Err(unreachable_budget(&probes));
            }
            int_bits += 1;
        }

        // Binary-search the smallest fractional width that still meets the
        // budget (the widest probe above is the known-pass upper bound).
        let mut lo = 0u32;
        let mut hi = budget.max_width - int_bits;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let p = probe(FixedFormat::new(int_bits + mid, mid))?;
            probes.push(p);
            if p.within_budget {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let chosen = FixedFormat::new(int_bits + hi, hi);
        // `hi` is always a probed, passing frac, so this certify is served
        // from the store.
        let certificate = Arc::clone(
            self.clone()
                .with_format(chosen)
                .certify(init, arch)?
                .certificate(),
        );

        // The area axis: synthesise `arch` at the chosen and the default
        // format through the width-parameterised techmap (reports come
        // from / land in the shared synthesis cache).
        let area_of = |fmt: FixedFormat| -> Result<u64, FlowError> {
            let opts = SynthOptions { format: fmt, ..self.spec.synth_options };
            Synthesizer::with_options(device, opts)
                .with_caches(self.store.cones().clone(), self.store.syntheses().clone())
                .synthesize(&self.spec.pattern, arch.window, arch.depth, arch.cores)
                .map(|r| r.luts)
                .map_err(FlowError::from)
        };
        let default_format = self.spec.synth_options.format;
        Ok(FormatSearchOutcome {
            budget,
            chosen,
            default_format,
            default_area_luts: area_of(default_format)?,
            chosen_area_luts: area_of(chosen)?,
            probes,
            certificate,
        })
    }
}

// ---------------------------------------------------------------------------
// Batch requests.
// ---------------------------------------------------------------------------

/// One request of an [`IslSession::explore_many`] batch.
#[derive(Debug, Clone, Copy)]
pub struct ExploreRequest<'a> {
    /// Target device.
    pub device: &'a Device,
    /// Frame workload (its iteration count must match the session's).
    pub workload: Workload,
    /// The design space to enumerate.
    pub space: &'a DesignSpace,
}

/// One request of an [`IslSession::verify_many`] batch.
#[derive(Debug, Clone, Copy)]
pub struct VerifyRequest<'a> {
    /// Initial frames to certify on.
    pub init: &'a FrameSet,
    /// The architecture instance to certify.
    pub arch: Architecture,
}

// ---------------------------------------------------------------------------
// Stage handles.
// ---------------------------------------------------------------------------

/// Stage 2 output: one architecture shape decomposed into cone levels, with
/// every distinct cone `Arc`-shared out of the session store.
#[derive(Debug, Clone)]
pub struct Decomposed {
    session: IslSession,
    window: Window,
    depth: u32,
    levels: Vec<u32>,
    cones: Vec<(u32, Arc<Cone>)>,
}

impl Decomposed {
    /// The output window.
    pub fn window(&self) -> Window {
        self.window
    }

    /// The requested (main) depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The level plan: the depth of every level, main levels first, the
    /// remainder level (if any) last.
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// The cone of one level depth, when that depth occurs in the plan.
    pub fn cone(&self, depth: u32) -> Option<&Arc<Cone>> {
        self.cones.iter().find(|(d, _)| *d == depth).map(|(_, c)| c)
    }

    /// The cone of the first level (the main cone of the decomposition).
    pub fn main_cone(&self) -> &Arc<Cone> {
        &self.cones[0].1
    }

    /// Total operation registers across the distinct cone shapes (the area
    /// model's `Reg` inputs).
    pub fn registers(&self) -> usize {
        self.cones.iter().map(|(_, c)| c.registers()).sum()
    }

    /// Chain to stage 5: the VHDL bundle of the main cone.
    ///
    /// # Errors
    ///
    /// Same as [`IslSession::synthesize`].
    pub fn synthesize(&self) -> Result<Synthesized, FlowError> {
        self.session.synthesize(self.window, self.levels[0])
    }
}

/// Stage 3 output: the calibrated estimation of one `(device, space)`
/// combination, `Arc`-shared out of the session store.
#[derive(Debug, Clone)]
pub struct Estimated {
    session: IslSession,
    device: Device,
    space: DesignSpace,
    calibration: Arc<Calibration>,
}

impl Estimated {
    /// The calibration handle (per-depth estimators + cone facts).
    pub fn calibration(&self) -> &Arc<Calibration> {
        &self.calibration
    }

    /// The device this estimation targets.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Nominal synthesis cost of this calibration (two per distinct depth,
    /// the paper's "as low as two" per estimation curve). Actual runs may
    /// be fewer: a store-served calibration reports its original cold-path
    /// count, and the synthesis cache may have served individual reports —
    /// see [`IslSession::store_stats`] for what really ran.
    pub fn syntheses(&self) -> usize {
        self.calibration.syntheses()
    }

    /// Chain to stage 4: enumerate `workload` against this calibration —
    /// pure arithmetic, no cone builds, no syntheses.
    ///
    /// # Errors
    ///
    /// [`FlowError::Exploration`] when nothing is feasible or the
    /// workload's iteration count differs from the session's.
    pub fn explore(&self, workload: Workload) -> Result<Explored, FlowError> {
        let _span = isl_telemetry::span("stage", "Explored");
        let exploration = self
            .session
            .explorer(&self.device)
            .enumerate(&self.session.spec.pattern, workload, &self.space, &self.calibration)
            .map_err(|e| {
                FlowError::from(e).at(Stage::Explore, Some(&format!("on {}", self.device.name)))
            })?;
        Ok(Explored {
            session: self.session.clone(),
            device: self.device.clone(),
            workload,
            exploration: Arc::new(exploration),
        })
    }
}

/// Stage 4 output: an explored design space with its Pareto set.
#[derive(Debug, Clone)]
pub struct Explored {
    session: IslSession,
    device: Device,
    workload: Workload,
    exploration: Arc<Exploration>,
}

impl Explored {
    /// The full exploration (points, Pareto front, counters).
    pub fn exploration(&self) -> &Arc<Exploration> {
        &self.exploration
    }

    /// Every feasible evaluated point.
    pub fn points(&self) -> &[isl_dse::DesignPoint] {
        self.exploration.points()
    }

    /// The Pareto-optimal points, ascending by area.
    pub fn pareto(&self) -> Vec<&isl_dse::DesignPoint> {
        self.exploration.pareto()
    }

    /// The point with the highest frames-per-second.
    pub fn fastest(&self) -> Option<&isl_dse::DesignPoint> {
        self.exploration.fastest()
    }

    /// The feasible point with the smallest estimated area.
    pub fn smallest(&self) -> Option<&isl_dse::DesignPoint> {
        self.exploration.smallest()
    }

    /// The device this exploration targeted.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The workload this exploration costed.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Chain to stage 5: the VHDL bundle of the fastest explored point.
    ///
    /// # Errors
    ///
    /// Same as [`IslSession::synthesize`].
    pub fn synthesize_fastest(&self) -> Result<Synthesized, FlowError> {
        let best = self.fastest().expect("explorations are non-empty");
        self.session.synthesize(best.arch.window, best.arch.depth)
    }

    /// Chain to stage 6: certify the fastest explored point on `init`.
    ///
    /// # Errors
    ///
    /// Same as [`IslSession::certify`].
    pub fn certify_fastest(&self, init: &FrameSet) -> Result<Certified, FlowError> {
        let best = self.fastest().expect("explorations are non-empty");
        self.session.certify(init, best.arch)
    }
}

/// Stage 5 output: a complete VHDL bundle.
#[derive(Debug, Clone)]
pub struct Synthesized {
    #[allow(dead_code)]
    session: IslSession,
    bundle: VhdlBundle,
}

impl Synthesized {
    /// The assembled bundle.
    pub fn bundle(&self) -> &VhdlBundle {
        &self.bundle
    }

    /// Take the bundle out of the stage handle.
    pub fn into_bundle(self) -> VhdlBundle {
        self.bundle
    }

    /// Write the bundle (and its `run_ghdl.sh`) into `dir`.
    ///
    /// # Errors
    ///
    /// [`FlowError::Io`] on filesystem failures.
    pub fn write_to(&self, dir: &Path) -> Result<Vec<PathBuf>, FlowError> {
        self.bundle.write_to(dir)
    }
}

/// Stage 6 output: a certified architecture instance, `Arc`-shared out of
/// the session store.
#[derive(Debug, Clone)]
pub struct Certified {
    session: IslSession,
    certificate: Arc<ArchitectureCertificate>,
}

impl Certified {
    /// The certification evidence.
    pub fn certificate(&self) -> &Arc<ArchitectureCertificate> {
        &self.certificate
    }

    /// The certified instance.
    pub fn arch(&self) -> Architecture {
        self.certificate.arch
    }

    /// Chain back to stage 5, consuming the stored vectors: the VHDL bundle
    /// of the certified decomposition **with** the golden-vector files and
    /// their replay testbenches — ready for a one-command external
    /// GHDL/ModelSim run ([`VhdlBundle::write_to`] + `run_ghdl.sh`).
    ///
    /// # Errors
    ///
    /// Same as [`IslSession::synthesize`].
    pub fn synthesize(&self) -> Result<Synthesized, FlowError> {
        let _span = isl_telemetry::span("stage", "Synthesized");
        let cert = &self.certificate;
        let main_depth = level_depths(cert.iterations, cert.arch.depth)[0];
        let cone = self
            .session
            .cone_at(Stage::Synthesize, cert.arch.window, main_depth)?;
        Ok(Synthesized {
            session: self.session.clone(),
            bundle: self.session.bundle_of(&cone, &cert.vector_files)?,
        })
    }

    /// Quantify the certificate's *detection power*: sweep every
    /// instruction of the certified decomposition's cone programs against
    /// `schedule`'s fault models (bit-flips, stuck-ats) on `init`, replay
    /// the recorded golden stimuli under each fault, and report how many
    /// injected faults the golden-vector check would catch — detected /
    /// masked / silent counts, per-level breakdown and detection latency,
    /// each detection triaged to instruction granularity
    /// ([`isl_cosim::FaultCoverageReport`]).
    ///
    /// Certification proves the clean datapath computes the right words;
    /// the campaign measures how loudly that proof fails when a bit
    /// breaks — the reliability number to quote next to the certificate.
    ///
    /// # Errors
    ///
    /// [`FlowError::Verification`] / [`FlowError::Simulation`] via the
    /// cosim campaign driver (frame-set mismatch, cone construction).
    pub fn fault_campaign(
        &self,
        init: &FrameSet,
        schedule: &isl_cosim::MaskSchedule,
    ) -> Result<isl_cosim::FaultCoverageReport, FlowError> {
        let cert = &self.certificate;
        let spec = &self.session.spec;
        let cosim = CoSimulator::new(&spec.pattern, cert.format)
            .map_err(|e| FlowError::from(e).at(Stage::Certify, None))?
            .with_border(spec.border);
        cosim
            .fault_campaign(init, cert.iterations, cert.arch.window, cert.arch.depth, schedule)
            .map_err(|e| FlowError::from(e).at(Stage::Certify, None))
    }
}

// ---------------------------------------------------------------------------
// Stage 7: precision design-space exploration.
// ---------------------------------------------------------------------------

/// The accuracy contract a format search optimises against: bounds on the
/// measured deviation of the certified fixed-point run from the
/// **exact-arithmetic (`f64`) run of the same cone decomposition**
/// ([`ArchitectureCertificate::max_quant_error`] /
/// [`ArchitectureCertificate::rms_quant_error`]), plus the widest word the
/// search may probe. Budgeting against the same-decomposition reference
/// isolates the precision axis: the decomposition's cone-base border
/// semantics is format-independent, so its contribution (visible in
/// [`ArchitectureCertificate::max_fixed_error`]) cannot be bought back
/// with more bits.
///
/// See the crate-level [choosing an error budget](crate#choosing-an-error-budget)
/// notes for how to pick the bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBudget {
    /// Bound on the largest `|fixed − exact|` deviation over the full run.
    pub max_abs: f64,
    /// Bound on the RMS deviation (`f64::INFINITY` leaves it unbounded).
    pub rms: f64,
    /// Widest total word the search may probe, `4..=54`. 54 bits is the
    /// widest format whose raw words round-trip *exactly* through the
    /// `f64`-mediated golden-vector verification (`f64` carries 53 mantissa
    /// bits); the raw [`FixedFormat`] datapath itself rails correctly up to
    /// 64 bits, which the numeric regression tests pin separately.
    pub max_width: u32,
}

impl ErrorBudget {
    /// The widest certifiable word: beyond 54 bits, raw words no longer
    /// round-trip exactly through `f64` and word-for-word vector
    /// certification stops being meaningful.
    pub const MAX_WIDTH: u32 = 54;

    /// A budget bounding only the max-abs error, probing up to the full
    /// certifiable width range.
    pub fn max_abs(bound: f64) -> Self {
        ErrorBudget {
            max_abs: bound,
            rms: f64::INFINITY,
            max_width: Self::MAX_WIDTH,
        }
    }

    /// Additionally bound the RMS error.
    pub fn with_rms(mut self, rms: f64) -> Self {
        self.rms = rms;
        self
    }

    /// Cap the widest word the search may probe (e.g. the DSP granularity
    /// of the target part).
    pub fn with_max_width(mut self, max_width: u32) -> Self {
        self.max_width = max_width;
        self
    }

    /// Whether a measured `(max_abs, rms)` error pair meets the budget.
    /// NaN errors never do.
    pub fn admits(&self, max_abs: f64, rms: f64) -> bool {
        max_abs <= self.max_abs && rms <= self.rms
    }

    pub(crate) fn validate(&self) -> Result<(), FlowError> {
        if self.max_abs.is_nan() || self.max_abs <= 0.0 {
            return Err(FlowError::Format(format!(
                "max-abs budget must be positive, got {}",
                self.max_abs
            )));
        }
        if self.rms.is_nan() || self.rms <= 0.0 {
            return Err(FlowError::Format(format!(
                "rms budget must be positive (or infinite), got {}",
                self.rms
            )));
        }
        if !(4..=Self::MAX_WIDTH).contains(&self.max_width) {
            return Err(FlowError::Format(format!(
                "max width must be in 4..={}, got {}",
                Self::MAX_WIDTH,
                self.max_width
            )));
        }
        Ok(())
    }
}

/// One probed format of a search: the measured error of its certified run
/// and the budget verdict. Probes are recorded in probe order (widest
/// first, then the binary-search sequence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormatProbe {
    /// The probed format.
    pub format: FixedFormat,
    /// Measured max-abs error of the certified run at this format.
    pub max_abs_error: f64,
    /// Measured RMS error of the certified run at this format.
    pub rms_error: f64,
    /// Whether this format meets the budget.
    pub within_budget: bool,
}

/// The stored result of one format search (an [`crate::ArtifactStore`]
/// artifact kind with its own hit/miss counters).
#[derive(Debug, Clone, PartialEq)]
pub struct FormatSearchOutcome {
    /// The budget the search ran against.
    pub budget: ErrorBudget,
    /// The narrowest certified format meeting the budget.
    pub chosen: FixedFormat,
    /// The session's format before the search (the comparison baseline).
    pub default_format: FixedFormat,
    /// Synthesised LUT area of the architecture at the default format.
    pub default_area_luts: u64,
    /// Synthesised LUT area at the chosen format — strictly lower than
    /// [`FormatSearchOutcome::default_area_luts`] whenever the chosen word
    /// is strictly narrower (the width-parameterised techmap scales every
    /// operator with the operand width).
    pub chosen_area_luts: u64,
    /// Every probed format with its measured errors, in probe order.
    pub probes: Vec<FormatProbe>,
    /// The certificate of the chosen format (bitwise engine checks +
    /// word-for-word golden vectors, like any [`IslSession::certify`]).
    pub certificate: Arc<ArchitectureCertificate>,
}

/// Stage 7 output: a completed precision search, `Arc`-shared out of the
/// session store.
#[derive(Debug, Clone)]
pub struct FormatSearched {
    session: IslSession,
    outcome: Arc<FormatSearchOutcome>,
}

impl FormatSearched {
    /// The full stored outcome (probes, areas, certificate).
    pub fn outcome(&self) -> &Arc<FormatSearchOutcome> {
        &self.outcome
    }

    /// The narrowest certified format meeting the budget.
    pub fn format(&self) -> FixedFormat {
        self.outcome.chosen
    }

    /// Every probed format with its measured errors.
    pub fn probes(&self) -> &[FormatProbe] {
        &self.outcome.probes
    }

    /// The certificate of the chosen format.
    pub fn certificate(&self) -> &Arc<ArchitectureCertificate> {
        &self.outcome.certificate
    }

    /// The certified architecture instance the search probed.
    pub fn arch(&self) -> Architecture {
        self.outcome.certificate.arch
    }

    /// Fraction of the default format's LUT area the searched format saves
    /// (`0.0` when the search could not narrow the word).
    pub fn area_saving(&self) -> f64 {
        if self.outcome.default_area_luts == 0 {
            return 0.0;
        }
        1.0 - self.outcome.chosen_area_luts as f64 / self.outcome.default_area_luts as f64
    }

    /// Chain back into the pipeline: a session whose synthesis options
    /// carry the **chosen format**, sharing this session's store — explore
    /// with it and the Pareto front is costed at the searched width; its
    /// [`IslSession::synthesize`] emits an `isl_fixed_pkg` declaring the
    /// searched word.
    pub fn session(&self) -> IslSession {
        self.session.clone().with_format(self.outcome.chosen)
    }
}
