//! The end-to-end flow object.

use isl_algorithms::Algorithm;
use isl_cosim::CoSimulator;
use isl_dse::{DesignSpace, Exploration, Explorer};
use isl_estimate::{
    Architecture, AreaValidation, ScheduleModel, ThroughputEstimator, ThroughputReport, Workload,
};
use isl_fpga::{Device, FixedFormat, SynthOptions, Synthesizer};
use isl_ir::{Cone, StencilPattern, Window};
use isl_sim::{BorderMode, FrameSet, Simulator};
use isl_symexec::compile_str;
use isl_vhdl::{
    check::verify_vectors, fixed_package, generate_cone, generate_testbench,
    generate_vector_testbench, generate_wrapper, VectorFile, VhdlOptions,
};

use crate::error::FlowError;

/// Everything needed to drop a cone into a VHDL project.
#[derive(Debug, Clone, PartialEq)]
pub struct VhdlBundle {
    /// The fixed-point support package (`isl_fixed_pkg`).
    pub package: String,
    /// The cone entity + architecture.
    pub entity: String,
    /// The tile wrapper (serial window loader + fire/collect control).
    pub wrapper: String,
    /// A self-checking testbench (drives the bare cone).
    pub testbench: String,
    /// The entity name.
    pub entity_name: String,
    /// Pipeline depth, cycles.
    pub pipeline_stages: u32,
}

/// The automatic HLS flow of the paper, end to end.
///
/// See the [crate-level documentation](crate) for a full example.
#[derive(Debug, Clone)]
pub struct IslFlow {
    pattern: StencilPattern,
    iterations: u32,
    border: BorderMode,
    synth_options: SynthOptions,
    schedule: ScheduleModel,
}

impl IslFlow {
    /// Phase 1: parse, analyse and symbolically execute a C kernel.
    ///
    /// # Errors
    ///
    /// [`FlowError::Analysis`] with the frontend/symexec diagnostic.
    pub fn from_source(source: &str) -> Result<Self, FlowError> {
        let (pattern, info) = compile_str(source)?;
        let border = info
            .border
            .as_deref()
            .and_then(BorderMode::parse)
            .unwrap_or_default();
        Ok(IslFlow {
            pattern,
            iterations: info.iterations.unwrap_or(1),
            border,
            synth_options: SynthOptions::default(),
            schedule: ScheduleModel::default(),
        })
    }

    /// Build the flow from a built-in algorithm.
    ///
    /// # Errors
    ///
    /// Same as [`IslFlow::from_source`].
    pub fn from_algorithm(algorithm: &Algorithm) -> Result<Self, FlowError> {
        Self::from_source(algorithm.source)
    }

    /// Build the flow from an already-extracted pattern.
    pub fn from_pattern(pattern: StencilPattern, iterations: u32) -> Self {
        IslFlow {
            pattern,
            iterations: iterations.max(1),
            border: BorderMode::default(),
            synth_options: SynthOptions::default(),
            schedule: ScheduleModel::default(),
        }
    }

    /// Override the border mode.
    pub fn with_border(mut self, border: BorderMode) -> Self {
        self.border = border;
        self
    }

    /// Override the iteration count.
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Override synthesis options (fixed-point format, sharing, jitter).
    pub fn with_synth_options(mut self, options: SynthOptions) -> Self {
        self.synth_options = options;
        self
    }

    /// Override the schedule model.
    pub fn with_schedule(mut self, schedule: ScheduleModel) -> Self {
        self.schedule = schedule;
        self
    }

    /// The extracted stencil pattern.
    pub fn pattern(&self) -> &StencilPattern {
        &self.pattern
    }

    /// Iterations per frame (the paper's `N`).
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Border mode used for simulation.
    pub fn border(&self) -> BorderMode {
        self.border
    }

    /// A workload for this ISL over `width`×`height` frames.
    pub fn workload(&self, width: u32, height: u32) -> Workload {
        Workload::image(width, height, self.iterations)
    }

    // -- phase 2: cones and VHDL -------------------------------------------

    /// Build the cone of one output window and depth.
    ///
    /// # Errors
    ///
    /// [`FlowError::Cone`] on invalid depth/pattern.
    pub fn build_cone(&self, window: Window, depth: u32) -> Result<Cone, FlowError> {
        Ok(Cone::build(&self.pattern, window, depth)?)
    }

    /// Generate the complete VHDL bundle for one cone.
    ///
    /// # Errors
    ///
    /// [`FlowError::Cone`] on invalid depth/pattern.
    pub fn generate_vhdl(&self, window: Window, depth: u32) -> Result<VhdlBundle, FlowError> {
        let cone = self.build_cone(window, depth)?;
        let fmt = self.synth_options.format;
        let module = generate_cone(&cone, &VhdlOptions { format: fmt });
        let testbench = generate_testbench(&cone, &module, fmt);
        let wrapper = generate_wrapper(&cone, &module);
        Ok(VhdlBundle {
            package: fixed_package(fmt),
            entity_name: module.entity_name.clone(),
            pipeline_stages: module.pipeline_stages,
            entity: module.code,
            wrapper: wrapper.code,
            testbench,
        })
    }

    // -- phase 3: estimation -------------------------------------------------

    /// Validate the Eq. 1 area model over a window/depth grid on `device`
    /// (the Figure 5 / Figure 8 experiment).
    ///
    /// # Errors
    ///
    /// [`FlowError::Estimation`] on calibration/synthesis failures.
    pub fn validate_area_model(
        &self,
        device: &Device,
        windows: &[Window],
        depths: &[u32],
        calibration_points: usize,
    ) -> Result<AreaValidation, FlowError> {
        let synth = Synthesizer::with_options(device, self.synth_options);
        Ok(AreaValidation::run(
            &synth,
            &self.pattern,
            windows,
            depths,
            calibration_points,
        )?)
    }

    /// Estimate one architecture's throughput on `device`.
    ///
    /// # Errors
    ///
    /// [`FlowError::Estimation`] on infeasibility or bad parameters.
    pub fn throughput(
        &self,
        device: &Device,
        arch: Architecture,
        workload: Workload,
    ) -> Result<ThroughputReport, FlowError> {
        let synth = Synthesizer::with_options(device, self.synth_options);
        let est = ThroughputEstimator::with_schedule(&synth, self.schedule);
        Ok(est.estimate(&self.pattern, arch, workload)?)
    }

    /// Best throughput for a window/depth when the device is packed with as
    /// many cores as fit (the Figure 7 / Figure 10 experiment).
    ///
    /// # Errors
    ///
    /// [`FlowError::Estimation`] on infeasibility.
    pub fn best_on_device(
        &self,
        device: &Device,
        window: Window,
        depth: u32,
        workload: Workload,
    ) -> Result<ThroughputReport, FlowError> {
        let synth = Synthesizer::with_options(device, self.synth_options);
        let est = ThroughputEstimator::with_schedule(&synth, self.schedule);
        Ok(est.best_on_device(&self.pattern, window, depth, workload)?)
    }

    // -- phase 4: exploration -------------------------------------------------

    /// Explore the design space and extract the Pareto set (the Figure 6 /
    /// Figure 9 experiment).
    ///
    /// # Errors
    ///
    /// [`FlowError::Exploration`] when nothing is feasible.
    pub fn explore(
        &self,
        device: &Device,
        workload: Workload,
        space: &DesignSpace,
    ) -> Result<Exploration, FlowError> {
        let explorer = Explorer::new(device)
            .with_synth_options(self.synth_options)
            .with_schedule(self.schedule);
        Ok(explorer.explore(&self.pattern, workload, space)?)
    }

    // -- simulation -------------------------------------------------------------

    /// A functional simulator for this ISL (golden / tiled / cone-DAG).
    ///
    /// # Errors
    ///
    /// [`FlowError::Simulation`] for unsupported ranks.
    pub fn simulator(&self) -> Result<Simulator<'_>, FlowError> {
        Ok(Simulator::new(&self.pattern)?.with_border(self.border))
    }

    /// Run this ISL's full iteration count on `init` through the compiled
    /// tiled engine with the exact window/depth decomposition of `arch` —
    /// i.e. simulate what the explored architecture instance computes.
    /// Bit-identical to the golden run for local border modes.
    ///
    /// # Errors
    ///
    /// [`FlowError::Simulation`] for unsupported ranks, non-local borders,
    /// or mismatched frame sets.
    pub fn run_architecture(
        &self,
        init: &isl_sim::FrameSet,
        arch: Architecture,
    ) -> Result<isl_sim::FrameSet, FlowError> {
        let sim = self.simulator()?;
        Ok(sim.run_tiled(init, self.iterations, arch.window, arch.depth)?)
    }

    // -- hardware co-simulation --------------------------------------------

    /// Certify an explored architecture instance end to end on `init`:
    ///
    /// 1. the **compiled quantised tiled** run (fixed-point rounding after
    ///    every operation, at `arch`'s exact window/depth decomposition) is
    ///    checked bit-identical to the tree-walking quantised reference;
    /// 2. the **compiled quantised cone-DAG** run — the hardware's actual
    ///    multi-level datapath semantics — likewise;
    /// 3. the bit-true **integer co-simulator** replays the decomposition
    ///    on raw fixed-point words and records every cone firing as golden
    ///    vectors, which must pass [`isl_vhdl::check::verify_vectors`]
    ///    (independent re-derivation of every response word) with zero
    ///    mismatches; the vector-file testbenches are generated and
    ///    structurally checked along the way.
    ///
    /// Returns the evidence as an [`ArchitectureCertificate`] (vector files
    /// included, ready to ship next to the VHDL bundle).
    ///
    /// # Errors
    ///
    /// [`FlowError::Verification`] on any divergence;
    /// [`FlowError::Simulation`] for unsupported ranks, non-local borders or
    /// mismatched frame sets.
    pub fn verify_architecture(
        &self,
        init: &FrameSet,
        arch: Architecture,
    ) -> Result<ArchitectureCertificate, FlowError> {
        let fmt = self.synth_options.format;
        let q = isl_cosim::quantizer_of(fmt);
        let sim = self.simulator()?;
        let iters = self.iterations;
        let (window, depth) = (arch.window, arch.depth);

        let bitwise = |a: &FrameSet, b: &FrameSet, what: &str| -> Result<usize, FlowError> {
            let mut n = 0;
            for fi in 0..a.len() {
                for (i, (x, y)) in a
                    .frame(fi)
                    .as_slice()
                    .iter()
                    .zip(b.frame(fi).as_slice())
                    .enumerate()
                {
                    if x.to_bits() != y.to_bits() {
                        return Err(FlowError::Verification(format!(
                            "{what}: field {fi} element {i}: compiled {x} vs reference {y}"
                        )));
                    }
                    n += 1;
                }
            }
            Ok(n)
        };

        // 1) Quantised tiled semantics, compiled vs golden tree walk.
        let tiled = sim.run_tiled_quantized(init, iters, window, depth, q)?;
        let tiled_ref = sim.run_tiled_quantized_reference(init, iters, window, depth, q)?;
        let mut quantized_elements = bitwise(&tiled, &tiled_ref, "quantised tiled")?;

        // 2) Quantised cone-DAG semantics, compiled vs golden graph walk.
        let dag = sim.run_cone_dag_quantized(init, iters, window, depth, q)?;
        let dag_ref = sim.run_cone_dag_quantized_reference(init, iters, window, depth, q)?;
        quantized_elements += bitwise(&dag, &dag_ref, "quantised cone-DAG")?;

        // 3) Bit-true integer co-simulation + golden-vector certification.
        let cosim = CoSimulator::new(&self.pattern, fmt)?.with_border(self.border);
        let vector_files = cosim.golden_vectors(init, iters, window, depth)?;
        let mut vector_records = 0;
        let mut vector_words = 0;
        for file in &vector_files {
            let cone = self.build_cone(file.window, file.depth)?;
            let report = verify_vectors(&cone, fmt, file)
                .map_err(|e| FlowError::Verification(e.to_string()))?;
            vector_records += report.records;
            vector_words += report.words;
            // The exchange works end to end: the file round-trips through
            // its text form and drives a structurally valid testbench.
            let reparsed = VectorFile::parse(&file.to_text())
                .map_err(|e| FlowError::Verification(e.to_string()))?;
            if &reparsed != file {
                return Err(FlowError::Verification(
                    "vector file text round-trip diverged".into(),
                ));
            }
            let module = generate_cone(&cone, &VhdlOptions { format: fmt });
            let tb = generate_vector_testbench(&module, file)
                .map_err(|e| FlowError::Verification(e.to_string()))?;
            isl_vhdl::check::balance_only(&tb)
                .map_err(|e| FlowError::Verification(e.to_string()))?;
        }

        // Informative accuracy bound: how far the fixed-point hardware run
        // drifted from the exact f64 run after the full iteration count.
        let golden = sim.run(init, iters)?;
        let fixed = cosim
            .run_cone_levels(init, iters, window, depth)?
            .dequantize(fmt);
        let max_fixed_error = golden.max_abs_diff(&fixed);

        Ok(ArchitectureCertificate {
            arch,
            iterations: iters,
            format: fmt,
            quantized_elements,
            vector_files,
            vector_records,
            vector_words,
            max_fixed_error,
        })
    }
}

/// Evidence that one architecture instance computes what the hardware will:
/// returned by [`IslFlow::verify_architecture`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArchitectureCertificate {
    /// The certified instance.
    pub arch: Architecture,
    /// Iterations of the certified run.
    pub iterations: u32,
    /// Fixed-point format of the datapath.
    pub format: FixedFormat,
    /// Frame elements compared bit-for-bit across the quantised compiled /
    /// reference engine pairs (tiled + cone-DAG).
    pub quantized_elements: usize,
    /// Golden-vector files, one per distinct cone shape of the
    /// decomposition — every firing of the run, certified mismatch-free.
    pub vector_files: Vec<VectorFile>,
    /// Cone firings certified across all vector files.
    pub vector_records: usize,
    /// Response words certified bit-for-bit.
    pub vector_words: usize,
    /// Largest |fixed-point − f64| deviation of the full run (the numeric
    /// cost of the hardware datapath, measured — not assumed).
    pub max_fixed_error: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_sim::{synthetic, FrameSet};

    const BLUR: &str = r#"
#pragma isl iterations 6
#pragma isl border mirror
void blur(const float in[H][W], float out[H][W]) {
    for (int y = 0; y < H; y++)
        for (int x = 0; x < W; x++)
            out[y][x] = (in[y-1][x] + in[y+1][x] + in[y][x-1] + in[y][x+1]) * 0.25f;
}
"#;

    #[test]
    fn source_to_flow() {
        let flow = IslFlow::from_source(BLUR).unwrap();
        assert_eq!(flow.iterations(), 6);
        assert_eq!(flow.border(), BorderMode::Mirror);
        assert_eq!(flow.pattern().radius(), 1);
    }

    #[test]
    fn bad_source_reports_analysis_error() {
        let err = IslFlow::from_source("void f() {").unwrap_err();
        assert!(matches!(err, FlowError::Analysis(_)));
    }

    #[test]
    fn end_to_end_explore_and_vhdl() {
        let flow = IslFlow::from_source(BLUR).unwrap();
        let device = Device::virtex6_xc6vlx760();
        let space = DesignSpace::new(1..=3, 1..=2, 2);
        let result = flow.explore(&device, flow.workload(128, 96), &space).unwrap();
        assert!(!result.pareto().is_empty());
        let best = result.fastest().unwrap();
        let bundle = flow.generate_vhdl(best.arch.window, best.arch.depth).unwrap();
        isl_vhdl::check::validate(&bundle.entity).unwrap();
        isl_vhdl::check::validate_package(&bundle.package).unwrap();
        assert!(bundle.testbench.contains(&bundle.entity_name));
    }

    #[test]
    fn simulator_tiled_equals_golden_through_flow() {
        let flow = IslFlow::from_source(BLUR).unwrap();
        let sim = flow.simulator().unwrap();
        let init = FrameSet::from_frames(vec![synthetic::noise(20, 14, 5)]).unwrap();
        let golden = sim.run(&init, flow.iterations()).unwrap();
        let tiled = sim
            .run_tiled(&init, flow.iterations(), Window::square(4), 3)
            .unwrap();
        assert!(golden.max_abs_diff(&tiled) < 1e-12);
    }

    #[test]
    fn explored_architecture_simulates_to_golden() {
        // The DSE → simulation loop: pick the fastest explored instance and
        // execute exactly its window/depth decomposition on frames.
        let flow = IslFlow::from_source(BLUR).unwrap();
        let device = Device::virtex6_xc6vlx760();
        let space = DesignSpace::new(2..=4, 1..=3, 2);
        let result = flow.explore(&device, flow.workload(64, 48), &space).unwrap();
        let best = result.fastest().unwrap();
        let init = FrameSet::from_frames(vec![synthetic::noise(64, 48, 11)]).unwrap();
        let by_arch = flow.run_architecture(&init, best.arch).unwrap();
        let golden = flow
            .simulator()
            .unwrap()
            .run(&init, flow.iterations())
            .unwrap();
        assert_eq!(by_arch, golden);
    }

    #[test]
    fn verify_architecture_certifies_explored_point() {
        let flow = IslFlow::from_source(BLUR).unwrap();
        let device = Device::virtex6_xc6vlx760();
        let space = DesignSpace::new(2..=4, 1..=3, 2);
        let result = flow.explore(&device, flow.workload(24, 18), &space).unwrap();
        let best = result.fastest().unwrap();
        let init = FrameSet::from_frames(vec![synthetic::noise(24, 18, 3)]).unwrap();
        let cert = flow.verify_architecture(&init, best.arch).unwrap();
        assert_eq!(cert.arch, best.arch);
        assert!(cert.quantized_elements > 0);
        assert!(cert.vector_records > 0);
        assert!(cert.vector_words > 0);
        assert!(!cert.vector_files.is_empty());
        // A 6-iteration blur in Q8.10 stays within a small multiple of the
        // quantisation step.
        assert!(cert.max_fixed_error < 0.25, "{}", cert.max_fixed_error);
    }

    #[test]
    fn from_algorithm_wires_defaults() {
        let algo = isl_algorithms::chambolle();
        let flow = IslFlow::from_algorithm(&algo).unwrap();
        assert_eq!(flow.iterations(), algo.default_iterations);
        assert_eq!(flow.pattern().dynamic_fields().len(), 2);
        assert_eq!(flow.pattern().params().len(), 2);
    }

    #[test]
    fn area_model_validation_through_flow() {
        let flow = IslFlow::from_source(BLUR).unwrap();
        let device = Device::virtex6_xc6vlx760();
        let windows: Vec<Window> = (1..=4).map(Window::square).collect();
        let v = flow
            .validate_area_model(&device, &windows, &[1, 2], 2)
            .unwrap();
        assert_eq!(v.rows.len(), 8);
        assert!(v.max_error_pct < 12.0);
    }

    #[test]
    fn throughput_through_flow() {
        let flow = IslFlow::from_source(BLUR).unwrap();
        let device = Device::virtex6_xc6vlx760();
        let r = flow
            .throughput(
                &device,
                Architecture::new(Window::square(3), 2, 2),
                flow.workload(256, 192),
            )
            .unwrap();
        assert!(r.fps > 0.0);
        let best = flow
            .best_on_device(&device, Window::square(3), 2, flow.workload(256, 192))
            .unwrap();
        assert!(best.fps >= r.fps);
    }
}
