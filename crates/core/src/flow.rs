//! The pre-redesign flat flow object, kept as thin shims over the staged
//! session API.
//!
//! **Deprecated in favour of [`IslSession`]** (see the
//! [migration table](crate#migrating-from-islflow)): every method below
//! delegates to one shared session, so existing callers keep compiling —
//! and silently gain the artifact store (repeated calls stop rebuilding
//! cones, recompiling programs and rerunning calibration syntheses).

use isl_algorithms::Algorithm;
use isl_dse::{DesignSpace, Exploration};
use isl_estimate::{
    Architecture, AreaValidation, ScheduleModel, ThroughputReport, Workload,
};
use isl_fpga::{Device, SynthOptions};
use isl_ir::{Cone, StencilPattern, Window};
use isl_sim::{BorderMode, FrameSet, Simulator};

use crate::error::FlowError;
use crate::session::{ArchitectureCertificate, IslSession, VhdlBundle};

/// The automatic HLS flow of the paper, end to end — the flat façade over
/// one shared [`IslSession`].
///
/// **Deprecated**: prefer the staged session API ([`IslSession`]); this
/// type remains so downstream code keeps compiling unchanged. Each shim is
/// one delegation — consult the
/// [migration table](crate#migrating-from-islflow) for the staged
/// equivalent of every method.
#[derive(Debug, Clone)]
pub struct IslFlow {
    session: IslSession,
}

impl IslFlow {
    /// Phase 1: parse, analyse and symbolically execute a C kernel.
    ///
    /// *Staged equivalent:* [`IslSession::from_source`].
    ///
    /// # Errors
    ///
    /// [`FlowError::Analysis`] with the frontend/symexec diagnostic.
    pub fn from_source(source: &str) -> Result<Self, FlowError> {
        Ok(IslFlow {
            session: IslSession::from_source(source)?,
        })
    }

    /// Build the flow from a built-in algorithm.
    ///
    /// *Staged equivalent:* [`IslSession::from_algorithm`].
    ///
    /// # Errors
    ///
    /// Same as [`IslFlow::from_source`].
    pub fn from_algorithm(algorithm: &Algorithm) -> Result<Self, FlowError> {
        Ok(IslFlow {
            session: IslSession::from_algorithm(algorithm)?,
        })
    }

    /// Build the flow from an already-extracted pattern.
    ///
    /// *Staged equivalent:* [`IslSession::from_pattern`].
    pub fn from_pattern(pattern: StencilPattern, iterations: u32) -> Self {
        IslFlow {
            session: IslSession::from_pattern(pattern, iterations),
        }
    }

    /// The session this flow delegates to — the bridge for incremental
    /// migration (all artifacts accumulated through the flat API are
    /// visible to staged calls and vice versa).
    pub fn session(&self) -> &IslSession {
        &self.session
    }

    /// Override the border mode.
    pub fn with_border(mut self, border: BorderMode) -> Self {
        self.session = self.session.with_border(border);
        self
    }

    /// Override the iteration count.
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.session = self.session.with_iterations(iterations);
        self
    }

    /// Override synthesis options (fixed-point format, sharing, jitter).
    pub fn with_synth_options(mut self, options: SynthOptions) -> Self {
        self.session = self.session.with_synth_options(options);
        self
    }

    /// Override the schedule model.
    pub fn with_schedule(mut self, schedule: ScheduleModel) -> Self {
        self.session = self.session.with_schedule(schedule);
        self
    }

    /// The extracted stencil pattern.
    pub fn pattern(&self) -> &StencilPattern {
        self.session.pattern()
    }

    /// Iterations per frame (the paper's `N`).
    pub fn iterations(&self) -> u32 {
        self.session.iterations()
    }

    /// Border mode used for simulation.
    pub fn border(&self) -> BorderMode {
        self.session.border()
    }

    /// A workload for this ISL over `width`×`height` frames.
    pub fn workload(&self, width: u32, height: u32) -> Workload {
        self.session.workload(width, height)
    }

    // -- phase 2: cones and VHDL -------------------------------------------

    /// Build the cone of one output window and depth.
    ///
    /// *Staged equivalent:* [`IslSession::decompose`] (or
    /// [`IslSession::cone`] for the `Arc`-shared handle — this shim clones
    /// the stored cone for signature compatibility).
    ///
    /// # Errors
    ///
    /// [`FlowError::Cone`] on invalid depth/pattern.
    pub fn build_cone(&self, window: Window, depth: u32) -> Result<Cone, FlowError> {
        Ok((*self.session.cone(window, depth)?).clone())
    }

    /// Generate the complete VHDL bundle for one cone.
    ///
    /// *Staged equivalent:* [`IslSession::synthesize`] (and
    /// [`crate::Certified::synthesize`] for a bundle that ships certified
    /// golden vectors).
    ///
    /// # Errors
    ///
    /// [`FlowError::Cone`] on invalid depth/pattern.
    pub fn generate_vhdl(&self, window: Window, depth: u32) -> Result<VhdlBundle, FlowError> {
        Ok(self.session.synthesize(window, depth)?.into_bundle())
    }

    // -- phase 3: estimation -------------------------------------------------

    /// Validate the Eq. 1 area model over a window/depth grid on `device`
    /// (the Figure 5 / Figure 8 experiment).
    ///
    /// *Staged equivalent:* [`IslSession::validate_area_model`].
    ///
    /// # Errors
    ///
    /// [`FlowError::Estimation`] on calibration/synthesis failures.
    pub fn validate_area_model(
        &self,
        device: &Device,
        windows: &[Window],
        depths: &[u32],
        calibration_points: usize,
    ) -> Result<AreaValidation, FlowError> {
        self.session
            .validate_area_model(device, windows, depths, calibration_points)
    }

    /// Estimate one architecture's throughput on `device`.
    ///
    /// *Staged equivalent:* [`IslSession::throughput`].
    ///
    /// # Errors
    ///
    /// [`FlowError::Estimation`] on infeasibility or bad parameters.
    pub fn throughput(
        &self,
        device: &Device,
        arch: Architecture,
        workload: Workload,
    ) -> Result<ThroughputReport, FlowError> {
        self.session.throughput(device, arch, workload)
    }

    /// Best throughput for a window/depth when the device is packed with as
    /// many cores as fit (the Figure 7 / Figure 10 experiment).
    ///
    /// *Staged equivalent:* [`IslSession::best_on_device`].
    ///
    /// # Errors
    ///
    /// [`FlowError::Estimation`] on infeasibility.
    pub fn best_on_device(
        &self,
        device: &Device,
        window: Window,
        depth: u32,
        workload: Workload,
    ) -> Result<ThroughputReport, FlowError> {
        self.session.best_on_device(device, window, depth, workload)
    }

    // -- phase 4: exploration -------------------------------------------------

    /// Explore the design space and extract the Pareto set (the Figure 6 /
    /// Figure 9 experiment).
    ///
    /// *Staged equivalent:* [`IslSession::explore`] (which keeps the result
    /// `Arc`-shared; this shim clones it out for signature compatibility).
    /// For several workloads or devices, see [`IslSession::explore_many`].
    ///
    /// # Errors
    ///
    /// [`FlowError::Exploration`] when nothing is feasible.
    pub fn explore(
        &self,
        device: &Device,
        workload: Workload,
        space: &DesignSpace,
    ) -> Result<Exploration, FlowError> {
        Ok((**self.session.explore(device, workload, space)?.exploration()).clone())
    }

    // -- simulation -------------------------------------------------------------

    /// A functional simulator for this ISL (golden / tiled / cone-DAG).
    ///
    /// *Staged equivalent:* [`IslSession::simulator`].
    ///
    /// # Errors
    ///
    /// [`FlowError::Simulation`] for unsupported ranks.
    pub fn simulator(&self) -> Result<Simulator<'_>, FlowError> {
        self.session.simulator()
    }

    /// Run this ISL's full iteration count on `init` through the compiled
    /// tiled engine with the exact window/depth decomposition of `arch`.
    ///
    /// *Staged equivalent:* [`IslSession::run_architecture`].
    ///
    /// # Errors
    ///
    /// [`FlowError::Simulation`] for unsupported ranks, non-local borders,
    /// or mismatched frame sets.
    pub fn run_architecture(
        &self,
        init: &FrameSet,
        arch: Architecture,
    ) -> Result<FrameSet, FlowError> {
        self.session.run_architecture(init, arch)
    }

    // -- hardware co-simulation --------------------------------------------

    /// Certify an explored architecture instance end to end on `init` (see
    /// [`IslSession::certify`] for the three-step evidence).
    ///
    /// *Staged equivalent:* [`IslSession::certify`] (which keeps the
    /// certificate `Arc`-shared and stored; this shim clones it out for
    /// signature compatibility). For batches, see
    /// [`IslSession::verify_many`].
    ///
    /// # Errors
    ///
    /// [`FlowError::Verification`] on any divergence;
    /// [`FlowError::Simulation`] for unsupported ranks, non-local borders or
    /// mismatched frame sets.
    pub fn verify_architecture(
        &self,
        init: &FrameSet,
        arch: Architecture,
    ) -> Result<ArchitectureCertificate, FlowError> {
        Ok((**self.session.certify(init, arch)?.certificate()).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_sim::{synthetic, FrameSet};

    const BLUR: &str = r#"
#pragma isl iterations 6
#pragma isl border mirror
void blur(const float in[H][W], float out[H][W]) {
    for (int y = 0; y < H; y++)
        for (int x = 0; x < W; x++)
            out[y][x] = (in[y-1][x] + in[y+1][x] + in[y][x-1] + in[y][x+1]) * 0.25f;
}
"#;

    #[test]
    fn source_to_flow() {
        let flow = IslFlow::from_source(BLUR).unwrap();
        assert_eq!(flow.iterations(), 6);
        assert_eq!(flow.border(), BorderMode::Mirror);
        assert_eq!(flow.pattern().radius(), 1);
    }

    #[test]
    fn bad_source_reports_analysis_error() {
        let err = IslFlow::from_source("void f() {").unwrap_err();
        assert!(matches!(err, FlowError::Analysis(_)));
    }

    #[test]
    fn end_to_end_explore_and_vhdl() {
        let flow = IslFlow::from_source(BLUR).unwrap();
        let device = Device::virtex6_xc6vlx760();
        let space = DesignSpace::new(1..=3, 1..=2, 2);
        let result = flow.explore(&device, flow.workload(128, 96), &space).unwrap();
        assert!(!result.pareto().is_empty());
        let best = result.fastest().unwrap();
        let bundle = flow.generate_vhdl(best.arch.window, best.arch.depth).unwrap();
        isl_vhdl::check::validate(&bundle.entity).unwrap();
        isl_vhdl::check::validate_package(&bundle.package).unwrap();
        assert!(bundle.testbench.contains(&bundle.entity_name));
    }

    #[test]
    fn simulator_tiled_equals_golden_through_flow() {
        let flow = IslFlow::from_source(BLUR).unwrap();
        let sim = flow.simulator().unwrap();
        let init = FrameSet::from_frames(vec![synthetic::noise(20, 14, 5)]).unwrap();
        let golden = sim.run(&init, flow.iterations()).unwrap();
        let tiled = sim
            .run_tiled(&init, flow.iterations(), Window::square(4), 3)
            .unwrap();
        assert!(golden.max_abs_diff(&tiled) < 1e-12);
    }

    #[test]
    fn explored_architecture_simulates_to_golden() {
        // The DSE → simulation loop: pick the fastest explored instance and
        // execute exactly its window/depth decomposition on frames.
        let flow = IslFlow::from_source(BLUR).unwrap();
        let device = Device::virtex6_xc6vlx760();
        let space = DesignSpace::new(2..=4, 1..=3, 2);
        let result = flow.explore(&device, flow.workload(64, 48), &space).unwrap();
        let best = result.fastest().unwrap();
        let init = FrameSet::from_frames(vec![synthetic::noise(64, 48, 11)]).unwrap();
        let by_arch = flow.run_architecture(&init, best.arch).unwrap();
        let golden = flow
            .simulator()
            .unwrap()
            .run(&init, flow.iterations())
            .unwrap();
        assert_eq!(by_arch, golden);
    }

    #[test]
    fn verify_architecture_certifies_explored_point() {
        let flow = IslFlow::from_source(BLUR).unwrap();
        let device = Device::virtex6_xc6vlx760();
        let space = DesignSpace::new(2..=4, 1..=3, 2);
        let result = flow.explore(&device, flow.workload(24, 18), &space).unwrap();
        let best = result.fastest().unwrap();
        let init = FrameSet::from_frames(vec![synthetic::noise(24, 18, 3)]).unwrap();
        let cert = flow.verify_architecture(&init, best.arch).unwrap();
        assert_eq!(cert.arch, best.arch);
        assert!(cert.quantized_elements > 0);
        assert!(cert.vector_records > 0);
        assert!(cert.vector_words > 0);
        assert!(!cert.vector_files.is_empty());
        // A 6-iteration blur in Q8.10 stays within a small multiple of the
        // quantisation step.
        assert!(cert.max_fixed_error < 0.25, "{}", cert.max_fixed_error);
    }

    #[test]
    fn from_algorithm_wires_defaults() {
        let algo = isl_algorithms::chambolle();
        let flow = IslFlow::from_algorithm(&algo).unwrap();
        assert_eq!(flow.iterations(), algo.default_iterations);
        assert_eq!(flow.pattern().dynamic_fields().len(), 2);
        assert_eq!(flow.pattern().params().len(), 2);
    }

    #[test]
    fn area_model_validation_through_flow() {
        let flow = IslFlow::from_source(BLUR).unwrap();
        let device = Device::virtex6_xc6vlx760();
        let windows: Vec<Window> = (1..=4).map(Window::square).collect();
        let v = flow
            .validate_area_model(&device, &windows, &[1, 2], 2)
            .unwrap();
        assert_eq!(v.rows.len(), 8);
        assert!(v.max_error_pct < 12.0);
    }

    #[test]
    fn throughput_through_flow() {
        let flow = IslFlow::from_source(BLUR).unwrap();
        let device = Device::virtex6_xc6vlx760();
        let r = flow
            .throughput(
                &device,
                Architecture::new(Window::square(3), 2, 2),
                flow.workload(256, 192),
            )
            .unwrap();
        assert!(r.fps > 0.0);
        let best = flow
            .best_on_device(&device, Window::square(3), 2, flow.workload(256, 192))
            .unwrap();
        assert!(best.fps >= r.fps);
    }

    #[test]
    fn explore_follows_workload_iterations() {
        // The pre-redesign contract: the workload's iteration count wins
        // over the spec's (the pragma says 6; the workload says 4 — the
        // remainder depths of the calibration must follow the workload).
        let flow = IslFlow::from_source(BLUR).unwrap();
        let device = Device::virtex6_xc6vlx760();
        let space = DesignSpace::new(2..=3, 3..=3, 2);
        let result = flow
            .explore(&device, Workload::image(64, 48, 4), &space)
            .unwrap();
        assert!(!result.points().is_empty());
    }

    #[test]
    fn shim_calls_share_the_session_store() {
        // The deprecated façade delegates to one session: a second explore
        // with identical inputs must do zero new cone builds or syntheses.
        let flow = IslFlow::from_source(BLUR).unwrap();
        let device = Device::virtex6_xc6vlx760();
        let space = DesignSpace::new(1..=3, 1..=2, 2);
        let a = flow.explore(&device, flow.workload(64, 48), &space).unwrap();
        let warm = flow.session().store_stats();
        let b = flow.explore(&device, flow.workload(64, 48), &space).unwrap();
        assert_eq!(a.points(), b.points());
        let hot = flow.session().store_stats();
        assert_eq!(warm.cones.misses, hot.cones.misses);
        assert_eq!(warm.syntheses.misses, hot.syntheses.misses);
        assert_eq!(warm.calibrations.misses, hot.calibrations.misses);
        assert!(hot.calibrations.hits > warm.calibrations.hits);
    }
}
