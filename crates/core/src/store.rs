//! The session-wide artifact store.
//!
//! Every expensive artifact of the pipeline — built [`Cone`]s, compiled
//! bytecode programs, calibration synthesis reports, DSE calibrations,
//! co-simulation golden vectors, whole architecture certificates and
//! precision format-search outcomes — is
//! keyed by its **content**: the pattern's structural fingerprint plus
//! every input that can change the value (shape, options, device, frame
//! bits). All the underlying producers are deterministic, so a stored
//! artifact is bit-identical to what a cold recompute would produce
//! (property-tested in `tests/tests/session_props.rs`), and the store can
//! hand out immutable `Arc`-shared handles freely — across stages, repeated
//! calls and threads.
//!
//! The three lower-level caches ([`ConeCache`], [`SynthCache`],
//! [`ProgramCache`]) are owned here and *shared into* the component crates
//! (synthesiser, explorer, simulator), so reuse spans the whole pipeline:
//! the cone the DSE facts pass built is the cone the VHDL backend renders
//! and the cone-DAG engine lowers. Every cache counts hits and misses;
//! [`ArtifactStore::stats`] is how the acceptance tests *prove* a warm pass
//! did zero redundant work.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use isl_dse::Calibration;
use isl_fpga::{FixedFormat, SynthCache, SynthOptions};
use isl_ir::{CacheStats, Cone, ConeCache, Window};
use isl_sim::{BorderMode, FrameSet, ProgramCache};
use isl_vhdl::VectorFile;

use crate::error::FlowError;
use crate::persist::DiskTier;
use crate::session::{ArchitectureCertificate, ErrorBudget, FormatSearchOutcome};

/// One entry of a [`CacheMap`]: either the finished artifact or a marker
/// that exactly one thread is building it right now.
#[derive(Debug)]
enum Slot<V> {
    Building,
    Ready(Arc<V>),
}

/// One generic content-keyed map with hit/miss counters and
/// **single-flight** builds: concurrent requests for one missing key elect
/// exactly one builder; the rest block on the condvar and are served the
/// builder's artifact (counted as hits — they computed nothing).
#[derive(Debug)]
struct CacheMap<K, V> {
    state: Mutex<HashMap<K, Slot<V>>>,
    ready: Condvar,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<K, V> Default for CacheMap<K, V> {
    fn default() -> Self {
        CacheMap {
            state: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }
}

/// Removes a `Building` marker (and wakes waiters) if the builder exits
/// without publishing — an error or a panic. Waiters then re-elect.
struct BuildGuard<'a, K: std::hash::Hash + Eq + Clone, V> {
    cache: &'a CacheMap<K, V>,
    key: K,
    armed: bool,
}

impl<K: std::hash::Hash + Eq + Clone, V> Drop for BuildGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.armed {
            let mut map = self.cache.state.lock().expect("artifact store");
            if matches!(map.get(&self.key), Some(Slot::Building)) {
                map.remove(&self.key);
            }
            drop(map);
            self.cache.ready.notify_all();
        }
    }
}

impl<K: std::hash::Hash + Eq + Clone, V> CacheMap<K, V> {
    /// Serve `key` from the map or produce it with `produce` (outside the
    /// lock, single-flight) and store it. `produce` reports whether it
    /// *built* the value (`true`) or sourced it from elsewhere — the disk
    /// tier — (`false`); only genuine builds count as misses, so the miss
    /// counters keep meaning "something was actually computed". Errors are
    /// not cached; waiters of a failed build re-elect a builder.
    fn get_or_build<E>(
        &self,
        key: K,
        produce: impl FnOnce() -> Result<(V, bool), E>,
    ) -> Result<Arc<V>, E> {
        {
            let mut map = self.state.lock().expect("artifact store");
            loop {
                match map.get(&key) {
                    Some(Slot::Ready(v)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Arc::clone(v));
                    }
                    Some(Slot::Building) => {
                        map = self.ready.wait(map).expect("artifact store");
                    }
                    None => {
                        map.insert(key.clone(), Slot::Building);
                        break;
                    }
                }
            }
        }
        let mut guard = BuildGuard { cache: self, key, armed: true };
        match produce() {
            Ok((value, built)) => {
                if built {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                let arc = Arc::new(value);
                let mut map = self.state.lock().expect("artifact store");
                map.insert(guard.key.clone(), Slot::Ready(Arc::clone(&arc)));
                guard.armed = false;
                drop(map);
                self.ready.notify_all();
                Ok(arc)
            }
            Err(e) => Err(e), // guard drop clears the marker and notifies
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The option bits that feed synthesis-derived artifact keys.
type OptionBits = (FixedFormat, bool, bool, bool, bool);

fn option_bits(o: &SynthOptions) -> OptionBits {
    (
        o.format,
        o.inter_cone_sharing,
        o.jitter,
        o.simplify,
        o.use_dsp,
    )
}

/// Encode a border mode into hashable bits (the constant by bit pattern).
fn border_bits(b: BorderMode) -> (u8, u64) {
    match b {
        BorderMode::Clamp => (0, 0),
        BorderMode::Mirror => (1, 0),
        BorderMode::Wrap => (2, 0),
        BorderMode::Constant(c) => (3, c.to_bits()),
    }
}

/// Identity of one DSE calibration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CalibrationKey {
    pub(crate) pattern: u64,
    pub(crate) device: String,
    pub(crate) options: OptionBits,
    pub(crate) iterations: u32,
    pub(crate) sides: Vec<u32>,
    pub(crate) depths: Vec<u32>,
}

impl CalibrationKey {
    pub(crate) fn new(
        pattern: u64,
        device: &isl_fpga::Device,
        options: &SynthOptions,
        iterations: u32,
        space: &isl_dse::DesignSpace,
    ) -> Self {
        CalibrationKey {
            pattern,
            device: device.name.clone(),
            options: option_bits(options),
            iterations,
            sides: space.window_sides.clone(),
            depths: space.depths.clone(),
        }
    }

    pub(crate) fn describe(&self) -> String {
        format!(
            "calibration {:016x} on {} N={}",
            self.pattern, self.device, self.iterations
        )
    }
}

/// Identity of one co-simulated run of one cone decomposition (golden
/// vectors do not depend on the core count; certificates add it).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct RunKey {
    pub(crate) pattern: u64,
    pub(crate) init: u64,
    pub(crate) format: FixedFormat,
    pub(crate) border: (u8, u64),
    pub(crate) iterations: u32,
    pub(crate) window: Window,
    pub(crate) depth: u32,
}

impl RunKey {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        pattern: u64,
        init: &isl_sim::FrameSet,
        format: FixedFormat,
        border: BorderMode,
        iterations: u32,
        window: Window,
        depth: u32,
    ) -> Self {
        RunKey {
            pattern,
            init: init.fingerprint(),
            format,
            border: border_bits(border),
            iterations,
            window,
            depth,
        }
    }

    pub(crate) fn describe(&self) -> String {
        format!(
            "run {:016x}/{:016x} w{} d{} N={}",
            self.pattern, self.init, self.window, self.depth, self.iterations
        )
    }
}

/// Identity of the format-independent `f64` reference runs of one
/// decomposition (the whole-frame golden run and the exact-arithmetic
/// cone-DAG run): [`RunKey`] minus the fixed-point format. Certification
/// measures every probed format against the same pair, so a format search
/// computes it once instead of once per probe.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct RefKey {
    pub(crate) pattern: u64,
    pub(crate) init: u64,
    pub(crate) border: (u8, u64),
    pub(crate) iterations: u32,
    pub(crate) window: Window,
    pub(crate) depth: u32,
}

impl RefKey {
    pub(crate) fn new(
        pattern: u64,
        init: &FrameSet,
        border: BorderMode,
        iterations: u32,
        window: Window,
        depth: u32,
    ) -> Self {
        RefKey {
            pattern,
            init: init.fingerprint(),
            border: border_bits(border),
            iterations,
            window,
            depth,
        }
    }
}

/// Identity of one precision format search: the certified run it probes
/// (pattern, frames, border, decomposition, cores), the device and
/// non-format synthesis options its area axis is computed under, the
/// session's default format (the search reports area relative to it), and
/// the budget (by bit pattern). The probed formats themselves are *not*
/// part of the key — they are the search's output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SearchKey {
    pub(crate) run: RunKey,
    pub(crate) cores: u32,
    pub(crate) device: String,
    pub(crate) options: OptionBits,
    pub(crate) budget: (u64, u64, u32),
}

impl SearchKey {
    pub(crate) fn new(
        run: RunKey,
        cores: u32,
        device: &isl_fpga::Device,
        options: &SynthOptions,
        budget: &ErrorBudget,
    ) -> Self {
        SearchKey {
            run,
            cores,
            device: device.name.clone(),
            options: option_bits(options),
            budget: (
                budget.max_abs.to_bits(),
                budget.rms.to_bits(),
                budget.max_width,
            ),
        }
    }

    pub(crate) fn describe(&self) -> String {
        format!("format search over {} on {}", self.run.describe(), self.device)
    }
}

/// Per-kind hit/miss counters of an [`ArtifactStore`] — the observable
/// evidence of reuse. `misses` only grow when something was actually built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Built cones (shared by DSE, synthesis probes, engines, VHDL).
    pub cones: CacheStats,
    /// Compiled bytecode programs (pattern kernels and cone programs).
    pub programs: CacheStats,
    /// Synthesis reports (calibration and probe syntheses).
    pub syntheses: CacheStats,
    /// DSE calibrations (estimators + cone facts per device/space).
    pub calibrations: CacheStats,
    /// Golden-vector sets of co-simulated decompositions.
    pub vectors: CacheStats,
    /// Architecture certificates.
    pub certificates: CacheStats,
    /// Format-independent `f64` reference-run pairs (golden + exact
    /// cone-DAG) shared by every certification of one decomposition.
    pub references: CacheStats,
    /// Precision format-search outcomes.
    pub searches: CacheStats,
    /// Artifacts served from the persistent disk tier (decoded, not
    /// recomputed). Zero when the store has no disk tier.
    pub disk_hits: usize,
    /// Disk-tier lookups that found no record (the artifact was built
    /// cold). Zero when the store has no disk tier.
    pub disk_misses: usize,
    /// Corrupt disk records skipped — framing/checksum failures at load
    /// plus payloads that failed their codec. Corruption degrades to a
    /// cold build, never a panic.
    pub load_skipped_corrupt: usize,
    /// Size of the persistent store file at the last load or flush, bytes.
    pub bytes_on_disk: u64,
    /// Format-search escalation probes whose full certification was
    /// skipped because the `isl-analyze` abstract interpreter proved the
    /// width statically may-saturating and the cheap error measurement
    /// confirmed the budget miss. Probe results stay bit-identical; this
    /// counts avoided work only.
    pub analysis_pruned_probes: usize,
}

impl StoreStats {
    /// Total artifacts built (cache misses) across every kind.
    pub fn total_misses(&self) -> usize {
        self.cones.misses
            + self.programs.misses
            + self.syntheses.misses
            + self.calibrations.misses
            + self.vectors.misses
            + self.certificates.misses
            + self.references.misses
            + self.searches.misses
    }

    /// Total lookups served from the store across every kind.
    pub fn total_hits(&self) -> usize {
        self.cones.hits
            + self.programs.hits
            + self.syntheses.hits
            + self.calibrations.hits
            + self.vectors.hits
            + self.certificates.hits
            + self.references.hits
            + self.searches.hits
    }

    /// Misses of the artifact kinds a *quantised build* produces — compiled
    /// programs, golden-vector sets and certificates. The format-search
    /// acceptance criterion ("a warm re-search performs zero redundant
    /// quantised builds") is an assertion that this number does not move.
    pub fn quantized_build_misses(&self) -> usize {
        self.programs.misses + self.vectors.misses + self.certificates.misses
    }

    /// `(kind name, counters)` rows in declaration order — the iteration
    /// the `Display` impl and the telemetry run report share.
    pub fn rows(&self) -> [(&'static str, CacheStats); 8] {
        [
            ("cones", self.cones),
            ("programs", self.programs),
            ("syntheses", self.syntheses),
            ("calibrations", self.calibrations),
            ("vectors", self.vectors),
            ("certificates", self.certificates),
            ("references", self.references),
            ("searches", self.searches),
        ]
    }
}

impl std::fmt::Display for StoreStats {
    /// One aligned line per cache kind, e.g.
    /// `cones          hits     12   misses      3`, closed by the disk
    /// tier's counters.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (name, s)) in self.rows().iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{name:<13} hits {:>6}   misses {:>6}", s.hits, s.misses)?;
        }
        writeln!(f)?;
        write!(
            f,
            "{:<13} hits {:>6}   misses {:>6}   corrupt {:>4}   bytes {:>9}",
            "disk", self.disk_hits, self.disk_misses, self.load_skipped_corrupt, self.bytes_on_disk
        )?;
        writeln!(f)?;
        write!(
            f,
            "{:<13} pruned probes {:>4}",
            "analysis", self.analysis_pruned_probes
        )?;
        Ok(())
    }
}

/// The concurrency-safe artifact store one [`crate::IslSession`] owns (and
/// all its clones share): every expensive artifact of the pipeline, keyed
/// by content, served as immutable `Arc` handles, with per-kind hit/miss
/// counters ([`ArtifactStore::stats`]) that make reuse provable.
///
/// A store opened with [`ArtifactStore::open_persistent`] additionally
/// carries a **disk tier**: on a memory miss the persistent record file is
/// consulted first (a decoded artifact is a `disk_hit`, not a build), cold
/// builds are written back, and [`ArtifactStore::checkpoint`] — also run
/// on drop — publishes the file atomically. Corrupt records degrade to
/// cold builds with counted skips, never a panic.
#[derive(Debug, Default)]
pub struct ArtifactStore {
    cones: ConeCache,
    programs: ProgramCache,
    synths: SynthCache,
    calibrations: CacheMap<CalibrationKey, Calibration>,
    vectors: CacheMap<RunKey, Vec<VectorFile>>,
    certificates: CacheMap<(RunKey, u32), ArchitectureCertificate>,
    references: CacheMap<RefKey, (FrameSet, FrameSet)>,
    searches: CacheMap<SearchKey, FormatSearchOutcome>,
    disk: Option<DiskTier>,
    /// See [`StoreStats::analysis_pruned_probes`].
    pruned_probes: AtomicUsize,
}

impl Drop for ArtifactStore {
    /// Best-effort flush of the disk tier when the last session handle
    /// goes away. Failures are reported on stderr (a drop cannot return
    /// them); call [`ArtifactStore::checkpoint`] explicitly to observe
    /// flush errors.
    fn drop(&mut self) {
        if self.disk.is_some() {
            if let Err(e) = self.checkpoint() {
                eprintln!("isl-hls: persistent store flush failed on drop: {e}");
            }
        }
    }
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store backed by the persistent record file at `path` (created on
    /// first checkpoint if missing): previously persisted artifacts are
    /// served instead of recomputed, and new builds are written back at
    /// [`ArtifactStore::checkpoint`] / drop. Synthesis reports persisted
    /// by an earlier process are pre-seeded into the synthesis cache.
    ///
    /// A version-mismatched file is discarded wholesale; corrupt records
    /// are skipped and counted ([`StoreStats::load_skipped_corrupt`]).
    ///
    /// # Errors
    ///
    /// [`FlowError::Io`] when the file exists but cannot be read.
    pub fn open_persistent(path: impl AsRef<Path>) -> Result<Self, FlowError> {
        let tier = DiskTier::open(path.as_ref())?;
        let mut store = ArtifactStore::new();
        tier.seed_syntheses(&store.synths);
        store.disk = Some(tier);
        Ok(store)
    }

    /// Cap the persistent file size, in bytes; checkpoints evict the
    /// least-recently-used records down to the budget before writing.
    /// No-op on a store without a disk tier.
    pub fn with_byte_budget(mut self, byte_budget: u64) -> Self {
        if let Some(tier) = self.disk.take() {
            self.disk = Some(tier.with_byte_budget(byte_budget));
        }
        self
    }

    /// Whether this store carries a persistent disk tier.
    pub fn is_persistent(&self) -> bool {
        self.disk.is_some()
    }

    /// Flush the disk tier: sync the synthesis-report cache into it and
    /// publish the record file atomically (write-then-rename). A store
    /// without a disk tier, or with nothing new, writes nothing. Returns
    /// the bytes written (0 when clean).
    ///
    /// # Errors
    ///
    /// [`FlowError::Io`] on filesystem failures; the previous file is
    /// untouched.
    pub fn checkpoint(&self) -> Result<u64, FlowError> {
        match &self.disk {
            Some(tier) => {
                tier.sync_syntheses(&self.synths);
                tier.flush()
            }
            None => Ok(0),
        }
    }

    /// The shared cone store (handed to the synthesiser, explorer and
    /// simulators).
    pub fn cones(&self) -> &ConeCache {
        &self.cones
    }

    /// The shared compiled-program store (handed to simulators).
    pub fn programs(&self) -> &ProgramCache {
        &self.programs
    }

    /// The shared synthesis-report store (handed to the synthesiser and
    /// explorer).
    pub fn syntheses(&self) -> &SynthCache {
        &self.synths
    }

    /// One cone, via the shared cone store.
    pub(crate) fn cone(
        &self,
        pattern: &isl_ir::StencilPattern,
        window: Window,
        depth: u32,
        simplify: bool,
    ) -> Result<Arc<Cone>, isl_ir::ConeError> {
        self.cones.get_or_build(pattern, window, depth, simplify)
    }

    /// Disk-then-build producer: consult the disk tier first (a decoded
    /// artifact is *not* a build), fall back to `build` and write the
    /// result back. The `bool` feeds the memory cache's miss counter.
    fn disk_or_build<V, E>(
        &self,
        fetch: impl FnOnce(&DiskTier) -> Option<V>,
        put: impl FnOnce(&DiskTier, &V),
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        if let Some(tier) = &self.disk {
            if let Some(value) = fetch(tier) {
                return Ok((value, false));
            }
        }
        let value = build()?;
        if let Some(tier) = &self.disk {
            put(tier, &value);
        }
        Ok((value, true))
    }

    pub(crate) fn calibration<E>(
        &self,
        key: CalibrationKey,
        build: impl FnOnce() -> Result<Calibration, E>,
    ) -> Result<Arc<Calibration>, E> {
        self.calibrations.get_or_build(key.clone(), || {
            self.disk_or_build(
                |t| t.fetch_calibration(&key),
                |t, v| t.put_calibration(&key, v),
                build,
            )
        })
    }

    pub(crate) fn golden_vectors<E>(
        &self,
        key: RunKey,
        build: impl FnOnce() -> Result<Vec<VectorFile>, E>,
    ) -> Result<Arc<Vec<VectorFile>>, E> {
        self.vectors.get_or_build(key.clone(), || {
            self.disk_or_build(
                |t| t.fetch_vectors(&key),
                |t, v| t.put_vectors(&key, v),
                build,
            )
        })
    }

    pub(crate) fn certificate<E>(
        &self,
        key: RunKey,
        cores: u32,
        build: impl FnOnce() -> Result<ArchitectureCertificate, E>,
    ) -> Result<Arc<ArchitectureCertificate>, E> {
        self.certificates.get_or_build((key.clone(), cores), || {
            self.disk_or_build(
                |t| t.fetch_certificate(&key, cores),
                |t, v| t.put_certificate(&key, cores, v),
                build,
            )
        })
    }

    /// The `(whole-frame golden, exact cone-DAG)` reference pair of one
    /// decomposition — shared by every certification probing it.
    pub(crate) fn reference_runs<E>(
        &self,
        key: RefKey,
        build: impl FnOnce() -> Result<(FrameSet, FrameSet), E>,
    ) -> Result<Arc<(FrameSet, FrameSet)>, E> {
        self.references.get_or_build(key.clone(), || {
            self.disk_or_build(
                |t| t.fetch_references(&key),
                |t, v| t.put_references(&key, v),
                build,
            )
        })
    }

    pub(crate) fn format_search<E>(
        &self,
        key: SearchKey,
        build: impl FnOnce() -> Result<FormatSearchOutcome, E>,
    ) -> Result<Arc<FormatSearchOutcome>, E> {
        self.searches.get_or_build(key.clone(), || {
            self.disk_or_build(
                |t| t.fetch_search(&key),
                |t, v| t.put_search(&key, v),
                build,
            )
        })
    }

    /// Snapshot every hit/miss counter (disk tier included).
    pub fn stats(&self) -> StoreStats {
        let disk = self.disk.as_ref().map(DiskTier::stats).unwrap_or_default();
        StoreStats {
            cones: self.cones.stats(),
            programs: self.programs.stats(),
            syntheses: self.synths.stats(),
            calibrations: self.calibrations.stats(),
            vectors: self.vectors.stats(),
            certificates: self.certificates.stats(),
            references: self.references.stats(),
            searches: self.searches.stats(),
            disk_hits: disk.hits as usize,
            disk_misses: disk.misses as usize,
            load_skipped_corrupt: disk.skipped_corrupt as usize,
            bytes_on_disk: disk.bytes_on_disk,
            analysis_pruned_probes: self.pruned_probes.load(Ordering::Relaxed),
        }
    }

    /// Count one escalation probe whose full certification the static
    /// analyzer's saturation proof made skippable.
    pub(crate) fn note_pruned_probe(&self) {
        self.pruned_probes.fetch_add(1, Ordering::Relaxed);
    }
}
