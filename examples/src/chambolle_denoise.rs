//! The paper's Section 4.2 case study: the Chambolle total-variation
//! algorithm — functionally (denoising a synthetic image) and
//! architecturally (area validation + throughput, Figures 8-10).
//!
//! Run with `cargo run -p isl-examples --bin chambolle_denoise --release`.

#![forbid(unsafe_code)]

use isl_hls::algorithms::{chambolle, chambolle as chambolle_mod};
use isl_hls::prelude::*;
use isl_hls::sim::synthetic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let algo = chambolle();
    let flow = IslFlow::from_algorithm(&algo)?;
    let device = Device::virtex6_xc6vlx760();

    // -- functional demonstration: denoise ---------------------------------
    let (w, h) = (48, 48);
    let clean = synthetic::gaussian_spots(w, h, 21, 4);
    let noisy = synthetic::add_noise(&clean, 22, 0.4);
    let init = FrameSet::from_frames(vec![
        Frame::new(w, h), // px
        Frame::new(w, h), // py
        noisy.clone(),    // observed image g (static field)
    ])?;
    let lambda = 0.3;
    let sim = isl_hls::sim::Simulator::new(flow.pattern())?
        .with_params(vec![0.25, lambda])?;
    let out = sim.run(&init, 40)?;
    let denoised =
        isl_hls::algorithms::chambolle::recover_image(&out, BorderMode::Clamp, lambda);
    println!("== functional check: TV denoising of a 48x48 synthetic scene ==");
    println!("  RMS error before: {:.4}", noisy.rms_diff(&clean));
    println!("  RMS error after:  {:.4}", denoised.rms_diff(&clean));
    let _ = chambolle_mod; // module alias used above

    // -- Figure 8: area estimation ------------------------------------------
    let windows: Vec<Window> = (1..=6).map(Window::square).collect();
    let v = flow.validate_area_model(&device, &windows, &[1, 2, 3], 2)?;
    println!("\n== Figure 8: Chambolle area estimation ==");
    println!("  paper: max error 6.36 %, avg 2.19 %");
    println!(
        "  ours:  max error {:.2} %, avg {:.2} % over {} points",
        v.max_error_pct,
        v.avg_error_pct,
        v.rows.len()
    );

    // -- Figure 9: Pareto curve ------------------------------------------------
    let space = DesignSpace::new(1..=8, 1..=3, 4);
    let result = flow.explore(&device, flow.workload(1024, 768), &space)?;
    println!("\n== Figure 9: Chambolle Pareto curve (1024x768) ==");
    println!("  kLUTs      time/frame   window depth cores");
    for p in result.pareto() {
        println!(
            "  {:>8.1}  {:>9.1} ms   {:>6} {:>5} {:>5}",
            p.estimated_luts / 1e3,
            p.time_per_frame_s * 1e3,
            p.arch.window.to_string(),
            p.arch.depth,
            p.arch.cores
        );
    }

    // -- Figure 10: throughput vs window -----------------------------------
    println!("\n== Figure 10: Chambolle throughput on Virtex-6 (1024x768) ==");
    println!("  paper: best is 8x8 (two cones fit), not 9x9; ~24 fps at 1024x768");
    println!("  window   fps     cores");
    for side in 4..=9u32 {
        match flow.best_on_device(&device, Window::square(side), 1, flow.workload(1024, 768)) {
            Ok(r) => println!(
                "  {:>4}x{:<4} {:>6.1}  {:>5}",
                side, side, r.fps, r.arch.cores
            ),
            Err(e) => println!("  {side:>4}x{side:<4} infeasible ({e})"),
        }
    }

    // Comparison with the hand-made design [19].
    println!("\n== vs the hand-made design [19] (months of work) ==");
    for (res, paper_manual, paper_auto) in [((1024, 768), 38.0, 24.0), ((512, 512), 99.0, 72.0)] {
        let ours = flow
            .best_on_device(
                &device,
                Window::square(8),
                1,
                flow.workload(res.0, res.1),
            )
            .map(|r| r.fps)
            .unwrap_or(0.0);
        println!(
            "  {}x{}: manual {paper_manual} fps | paper's flow {paper_auto} fps | this repro {ours:.1} fps",
            res.0, res.1
        );
    }
    Ok(())
}
