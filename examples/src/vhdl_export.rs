//! Export a ready-to-simulate VHDL project for every built-in algorithm:
//! support package, entity, wrapper, self-checking testbench — and, for
//! the certified shape, the golden-vector files + replay testbenches, so
//! an external simulator run is one command (`sh run_ghdl.sh`).
//!
//! Run with `cargo run -p isl-examples --bin vhdl_export` — files land in
//! `target/vhdl_export/<algorithm>/`.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use isl_hls::algorithms::all;
use isl_hls::prelude::*;
use isl_hls::sim::synthetic;
use isl_hls::vhdl::check;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_root = PathBuf::from("target/vhdl_export");

    for algo in all() {
        let session = IslSession::from_algorithm(&algo)?;
        let depth = session.iterations().min(2);
        let window = Window::square(3);

        // Certify the shape on a small frame so the exported bundle ships
        // replayable golden vectors next to the VHDL.
        let init = FrameSet::from_frames(
            (0..session.pattern().fields().len())
                .map(|i| synthetic::noise(18, 12, 40 + i as u64))
                .collect(),
        )?;
        let arch = Architecture::new(window, depth, 1);
        let certified = session.certify(&init, arch)?;
        let synthesized = certified.synthesize()?;
        let bundle = synthesized.bundle();

        // The structural checker gates everything we write out.
        check::validate_package(&bundle.package)?;
        check::validate(&bundle.entity)?;

        let out_dir = out_root.join(algo.name);
        let paths = synthesized.write_to(&out_dir)?;

        println!(
            "{:<10} -> {} ({} pipeline stages, {} files incl. {} vector set(s), {} certified firings)",
            algo.name,
            out_dir.display(),
            bundle.pipeline_stages,
            paths.len(),
            bundle.vectors.len(),
            certified.certificate().vector_records,
        );
    }

    println!(
        "\nEach directory is self-contained: `sh run_ghdl.sh` analyses the\n\
         package, entities and testbenches and replays every certified\n\
         golden-vector firing word-for-word (any VHDL-93 simulator accepts\n\
         the same file list)."
    );
    Ok(())
}
