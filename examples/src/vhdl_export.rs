//! Export a ready-to-simulate VHDL project for a chosen cone: support
//! package, entity and self-checking testbench.
//!
//! Run with `cargo run -p isl-examples --bin vhdl_export` — files land in
//! `target/vhdl_export/`.

use std::fs;
use std::path::PathBuf;

use isl_hls::algorithms::all;
use isl_hls::prelude::*;
use isl_hls::vhdl::check;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from("target/vhdl_export");
    fs::create_dir_all(&out_dir)?;

    for algo in all() {
        let flow = IslFlow::from_algorithm(&algo)?;
        let depth = flow.iterations().min(2);
        let bundle = flow.generate_vhdl(Window::square(3), depth)?;

        // The structural checker gates everything we write out.
        check::validate_package(&bundle.package)?;
        check::validate(&bundle.entity)?;

        let pkg_path = out_dir.join("isl_fixed_pkg.vhd");
        fs::write(&pkg_path, &bundle.package)?;
        let entity_path = out_dir.join(format!("{}.vhd", bundle.entity_name));
        fs::write(&entity_path, &bundle.entity)?;
        let wrapper_path = out_dir.join(format!("{}_tile.vhd", bundle.entity_name));
        fs::write(&wrapper_path, &bundle.wrapper)?;
        let tb_path = out_dir.join(format!("tb_{}.vhd", bundle.entity_name));
        fs::write(&tb_path, &bundle.testbench)?;

        println!(
            "{:<10} -> {} ({} pipeline stages, {} lines of VHDL + {} lines of testbench)",
            algo.name,
            entity_path.display(),
            bundle.pipeline_stages,
            bundle.entity.lines().count(),
            bundle.testbench.lines().count(),
        );
    }

    println!(
        "\nCompile order: isl_fixed_pkg.vhd, then any entity, then its tb_*.vhd.\n\
         Each testbench drives one stimulus window and asserts the outputs\n\
         against values computed by the flow's own evaluator."
    );
    Ok(())
}
