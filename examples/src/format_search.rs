//! Precision design-space exploration: search the narrowest certified
//! fixed-point format within an error budget, then feed the searched
//! format back into DSE.
//!
//! ```sh
//! cargo run --release -p isl-examples --bin format_search
//! ```

#![forbid(unsafe_code)]

use isl_hls::prelude::*;
use isl_hls::sim::synthetic;

fn main() -> Result<(), FlowError> {
    let device = Device::virtex6_xc6vlx760();
    for algo in [
        isl_hls::algorithms::gaussian_igf(),
        isl_hls::algorithms::chambolle(),
    ] {
        let session = IslSession::from_algorithm(&algo)?;
        let fields = session.pattern().fields().len();
        let init = FrameSet::from_frames(
            (0..fields)
                .map(|i| synthetic::noise(48, 36, 11 + i as u64))
                .collect(),
        )
        .expect("congruent frames");
        let arch = Architecture::new(Window::square(4), 2, 2);

        // Anchor the budget on the default format's measured accuracy: ask
        // for the narrowest certified format at least as accurate as the
        // hand-chosen Q8.10.
        let baseline = session.certify(&init, arch)?;
        let budget = ErrorBudget::max_abs(baseline.certificate().max_quant_error);
        let searched = session.search_format(&device, &init, arch, budget)?;
        println!(
            "{:<10} default {} ({} LUT) -> searched {} ({} LUT, {:.1}% saved) in {} probes",
            algo.name,
            searched.outcome().default_format,
            searched.outcome().default_area_luts,
            searched.format(),
            searched.outcome().chosen_area_luts,
            100.0 * searched.area_saving(),
            searched.probes().len(),
        );
        for p in searched.probes() {
            println!(
                "  probe {:<14} max-abs {:.3e} rms {:.3e} {}",
                p.format.to_string(),
                p.max_abs_error,
                p.rms_error,
                if p.within_budget { "pass" } else { "fail" },
            );
        }

        // The searched format flows back into the pipeline: explore with it
        // and the Pareto front is costed at the searched width; the emitted
        // isl_fixed_pkg declares the searched word.
        let tuned = searched.session();
        let space = DesignSpace::new(2..=5, 1..=3, 4);
        let explored = tuned.explore(&device, tuned.workload(256, 192), &space)?;
        let best = explored.fastest().expect("feasible points exist");
        println!(
            "  re-explored at {}: fastest {} cores w{} -> {:.1} fps, {:.0} LUT",
            searched.format(),
            best.arch.cores,
            best.arch.window,
            best.fps,
            best.estimated_luts,
        );
        let bundle = tuned.synthesize(best.arch.window, best.arch.depth)?;
        assert!(bundle
            .bundle()
            .package
            .contains(&format!("DATA_WIDTH : integer := {}", searched.format().width)));

        // A warm re-search is a store lookup; probing again builds nothing.
        let stats = session.store_stats();
        let again = session.search_format(&device, &init, arch, budget)?;
        assert_eq!(again.format(), searched.format());
        assert_eq!(
            session.store_stats().quantized_build_misses(),
            stats.quantized_build_misses(),
            "warm re-search must not rebuild quantised artifacts"
        );
        println!(
            "  warm re-search served from the store (searches: {:?})",
            session.store_stats().searches
        );
    }
    Ok(())
}
