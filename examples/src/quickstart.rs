//! Quickstart: from a C stencil kernel to Pareto-optimal FPGA
//! architectures, through the staged session API
//! (`Spec → Decomposed → Estimated → Explored → Synthesized`).
//!
//! Run with `cargo run -p isl-examples --bin quickstart`.

#![forbid(unsafe_code)]

use isl_hls::prelude::*;

const KERNEL: &str = r#"
#pragma isl iterations 10
#pragma isl border clamp
void blur(const float in[H][W], float out[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            out[y][x] = (1.0f * in[y-1][x-1] + 2.0f * in[y-1][x] + 1.0f * in[y-1][x+1]
                       + 2.0f * in[y][x-1]   + 4.0f * in[y][x]   + 2.0f * in[y][x+1]
                       + 1.0f * in[y+1][x-1] + 2.0f * in[y+1][x] + 1.0f * in[y+1][x+1]) / 16.0f;
        }
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage 1 (Spec): dependency analysis by symbolic execution. The
    // session owns the artifact store every later stage reads and writes —
    // here backed by a persistent file, so artifacts outlive the process.
    let store = std::env::temp_dir().join("isl-quickstart.islstore");
    std::fs::remove_file(&store).ok();
    let session = IslSession::from_source(KERNEL)?.with_persistent_store(&store)?;
    println!("== extracted stencil pattern ==");
    println!("{}", session.pattern());
    println!("iterations per frame: {}", session.iterations());

    // Stage 2 (Decomposed): one architecture shape, its cones Arc-shared
    // out of the store.
    let decomposed = session.decompose(Window::square(4), 2)?;
    let cone = decomposed.main_cone();
    println!("\n== cone {} (levels {:?}) ==", cone.signature(), decomposed.levels());
    println!("  inputs (window + halo): {}", cone.inputs().len());
    println!("  outputs:                {}", cone.outputs().len());
    println!("  registers after reuse:  {}", cone.registers());
    println!("  ops without reuse:      {:.0}", cone.tree_op_count());
    println!(
        "  reuse factor:           {:.1}x",
        cone.tree_op_count() / cone.registers() as f64
    );

    // Stage 3 (Estimated): α calibration + cone facts for the space — the
    // expensive half, stored and reusable across workloads.
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(1..=6, 1..=5, 8);
    let cold_start = std::time::Instant::now();
    let estimated = session.estimate(&device, &space)?;
    let cold_estimate = cold_start.elapsed();
    println!(
        "\n(alpha calibration used {} syntheses in total)",
        estimated.syntheses()
    );

    // Stage 4 (Explored): enumerate 1024x768 frames against the stored
    // calibration — pure arithmetic from here.
    let explored = estimated.explore(session.workload(1024, 768))?;
    println!(
        "== design space: {} feasible points, {} on the Pareto front ==",
        explored.points().len(),
        explored.pareto().len()
    );
    println!("\n  window  depth  cores |      LUTs  time/frame        fps");
    println!("  --------------------------------------------------------");
    for p in explored.pareto() {
        println!(
            "  {:>6}  {:>5}  {:>5} | {:>9.0}  {:>9.2} ms  {:>8.1}",
            p.arch.window.to_string(),
            p.arch.depth,
            p.arch.cores,
            p.estimated_luts,
            p.time_per_frame_s * 1e3,
            p.fps
        );
    }

    // Stage 5 (Synthesized): VHDL for the fastest architecture.
    let synthesized = explored.synthesize_fastest()?;
    let bundle = synthesized.bundle();
    println!(
        "\n== VHDL for the fastest point: entity `{}`, {} pipeline stages ==",
        bundle.entity_name, bundle.pipeline_stages
    );
    for line in bundle.entity.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");

    // Stage 6 (FormatSearched): shrink the datapath word under an error
    // budget. The search is gated by `isl-analyze`, an abstract
    // interpreter over the compiled cone bytecode: before certifying an
    // escalation width it proves, in the raw fixed-point word domain,
    // whether that width can saturate on the measured value range. A
    // bright three-digit input drives the blur's 16x pre-normalisation
    // sum over the early widths' rails, so those probes are *statically
    // doomed* — each one's full bit-true certification is replaced by the
    // range proof plus a light error measurement (bit-identical result,
    // counted under `analysis pruned probes` below).
    let search_session = IslSession::from_source(KERNEL)?;
    let bright = FrameSet::from_frames(vec![Frame::from_fn(20, 14, |x, y| {
        100.0 + ((x * 7 + y * 13) % 100) as f64
    })])?;
    let arch = Architecture::new(Window::square(4), 2, 1);
    let searched =
        search_session.search_format(&device, &bright, arch, ErrorBudget::max_abs(1e-3))?;
    let search_stats = search_session.store_stats();
    println!(
        "\n== format search on bright input: {} after {} probes ({} certify probes pruned by saturation proofs) ==",
        searched.format(),
        searched.probes().len(),
        search_stats.analysis_pruned_probes,
    );
    // The same analyzer hands out the positive certificate: at the chosen
    // format, no instruction of the cone program can clamp for any input
    // in the bright band — `first_overflow() == None` is a proof over
    // *all* such inputs, not a sampled observation.
    let fmt = searched.format();
    let gate_cone = search_session.cone(arch.window, arch.depth)?;
    let cone_program = isl_hls::sim::CompiledCone::compile_with(&gate_cone, &[], false);
    let proof = isl_hls::analyze::Analysis::of_cone(
        &cone_program,
        fmt,
        isl_hls::analyze::WordRange::new(fmt.quantize(-200.0), fmt.quantize(200.0)),
    )?;
    println!(
        "   saturation-freedom certificate at {fmt}: first possible overflow = {:?}",
        proof.first_overflow(),
    );

    // The store makes repeats free: a second explore of the same inputs
    // rebuilds nothing (the session serves every artifact from the store).
    let before = session.store_stats();
    let again = session.explore(&device, session.workload(1024, 768), &space)?;
    let after = session.store_stats();
    assert_eq!(explored.points(), again.points());
    println!(
        "\n== warm re-explore: {} store hits, {} new builds (cold pass built {}) ==",
        after.total_hits() - before.total_hits(),
        after.total_misses() - before.total_misses(),
        before.total_misses(),
    );

    // Per-cache breakdown of the whole run (`StoreStats` is `Display`).
    println!("\n== artifact store, per cache ==\n{after}");

    // The disk tier makes *restarts* nearly free too: flush, then open a
    // brand-new session on the same file — a stand-in for a second
    // process — and replay the expensive calibration from disk.
    let flushed = session.checkpoint()?;
    let warm_start = std::time::Instant::now();
    let second = IslSession::from_source(KERNEL)?.with_persistent_store(&store)?;
    let replayed = second.explore(&device, second.workload(1024, 768), &space)?;
    let warm_estimate = warm_start.elapsed();
    assert_eq!(explored.points(), replayed.points());
    let disk = second.store_stats();
    println!("\n== cold process vs warm disk ==");
    println!("  cold calibration:        {:>8.1} ms", cold_estimate.as_secs_f64() * 1e3);
    println!(
        "  warm-disk replay:        {:>8.1} ms  ({:.0}x, {} bytes on disk, {flushed} flushed)",
        warm_estimate.as_secs_f64() * 1e3,
        cold_estimate.as_secs_f64() / warm_estimate.as_secs_f64().max(1e-9),
        disk.bytes_on_disk,
    );
    println!(
        "  second process built     {} artifacts (disk hits {}, corrupt skips {})",
        disk.total_misses(),
        disk.disk_hits,
        disk.load_skipped_corrupt,
    );
    std::fs::remove_file(&store).ok();
    Ok(())
}
