//! Quickstart: from a C stencil kernel to Pareto-optimal FPGA architectures.
//!
//! Run with `cargo run -p isl-examples --bin quickstart`.

use isl_hls::prelude::*;

const KERNEL: &str = r#"
#pragma isl iterations 10
#pragma isl border clamp
void blur(const float in[H][W], float out[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            out[y][x] = (1.0f * in[y-1][x-1] + 2.0f * in[y-1][x] + 1.0f * in[y-1][x+1]
                       + 2.0f * in[y][x-1]   + 4.0f * in[y][x]   + 2.0f * in[y][x+1]
                       + 1.0f * in[y+1][x-1] + 2.0f * in[y+1][x] + 1.0f * in[y+1][x+1]) / 16.0f;
        }
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase 1: dependency analysis by symbolic execution.
    let flow = IslFlow::from_source(KERNEL)?;
    println!("== extracted stencil pattern ==");
    println!("{}", flow.pattern());
    println!("iterations per frame: {}", flow.iterations());

    // Phase 2: one cone, inspected.
    let cone = flow.build_cone(Window::square(4), 2)?;
    println!("\n== cone {} ==", cone.signature());
    println!("  inputs (window + halo): {}", cone.inputs().len());
    println!("  outputs:                {}", cone.outputs().len());
    println!("  registers after reuse:  {}", cone.registers());
    println!("  ops without reuse:      {:.0}", cone.tree_op_count());
    println!(
        "  reuse factor:           {:.1}x",
        cone.tree_op_count() / cone.registers() as f64
    );

    // Phases 3-4: explore architectures for 1024x768 frames on a Virtex-6.
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(1..=6, 1..=5, 8);
    let result = flow.explore(&device, flow.workload(1024, 768), &space)?;
    println!(
        "\n== design space: {} feasible points, {} on the Pareto front ==",
        result.points().len(),
        result.pareto().len()
    );
    println!(
        "(alpha calibration used {} syntheses in total)",
        result.calibration_syntheses()
    );
    println!("\n  window  depth  cores |      LUTs  time/frame        fps");
    println!("  --------------------------------------------------------");
    for p in result.pareto() {
        println!(
            "  {:>6}  {:>5}  {:>5} | {:>9.0}  {:>9.2} ms  {:>8.1}",
            p.arch.window.to_string(),
            p.arch.depth,
            p.arch.cores,
            p.estimated_luts,
            p.time_per_frame_s * 1e3,
            p.fps
        );
    }

    // Generate VHDL for the fastest architecture.
    let best = result.fastest().expect("space is feasible");
    let bundle = flow.generate_vhdl(best.arch.window, best.arch.depth)?;
    println!(
        "\n== VHDL for the fastest point: entity `{}`, {} pipeline stages ==",
        bundle.entity_name, bundle.pipeline_stages
    );
    for line in bundle.entity.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");
    Ok(())
}
