//! Bring your own stencil: write a kernel, verify the cone architecture is
//! exact, and explore implementations — the full user journey.
//!
//! Run with `cargo run -p isl-examples --bin custom_stencil --release`.

#![forbid(unsafe_code)]

use isl_hls::prelude::*;
use isl_hls::sim::synthetic;

/// An anisotropic-smoothing kernel: diffuse, but clamp the per-step change
/// (a data-dependent select the flow turns into hardware multiplexers).
const KERNEL: &str = r#"
#pragma isl iterations 12
#pragma isl border clamp
#pragma isl param limit 0.05
void aniso(const float u[H][W], float u_out[H][W], float limit) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float lap = (u[y-1][x] + u[y+1][x] + u[y][x-1] + u[y][x+1]) * 0.25f - u[y][x];
            float step = 0.5f * lap;
            float clamped = step > limit ? limit : (step < -limit ? -limit : step);
            u_out[y][x] = u[y][x] + clamped;
        }
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = IslFlow::from_source(KERNEL)?;
    println!("== pattern extracted from the custom kernel ==");
    println!("{}", flow.pattern());

    // Prove the cone architecture computes exactly the golden iteration.
    let sim = flow.simulator()?;
    let init = FrameSet::from_frames(vec![synthetic::add_noise(
        &synthetic::gradient(40, 30),
        13,
        0.5,
    )])?;
    let golden = sim.run(&init, flow.iterations())?;
    let mut worst: f64 = 0.0;
    for (window, depth) in [
        (Window::square(4), 3),
        (Window::square(5), 4),
        (Window::rect(6, 3), 2),
    ] {
        let tiled = sim.run_tiled(&init, flow.iterations(), window, depth)?;
        let diff = golden.max_abs_diff(&tiled);
        worst = worst.max(diff);
        println!("  tiled {window} depth {depth}: max |diff| vs golden = {diff:.2e}");
    }
    assert!(worst < 1e-12, "cone execution must be exact");

    // Explore on two devices to see the cost of a smaller part.
    for device in [Device::virtex6_xc6vlx760(), Device::small_multimedia()] {
        let space = DesignSpace::new(1..=5, 1..=4, 8);
        match flow.explore(&device, flow.workload(640, 480), &space) {
            Ok(result) => {
                let fastest = result.fastest().expect("feasible");
                println!(
                    "\n== {}: {} feasible points, fastest = {:.1} fps (window {}, depth {}, {} cores, {:.0} kLUTs)",
                    device.name,
                    result.points().len(),
                    fastest.fps,
                    fastest.arch.window,
                    fastest.arch.depth,
                    fastest.arch.cores,
                    fastest.estimated_luts / 1e3,
                );
            }
            Err(e) => println!("\n== {}: {e}", device.name),
        }
    }
    Ok(())
}
