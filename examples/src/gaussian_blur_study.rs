//! The paper's Section 4.1 case study: the iterative Gaussian filter.
//!
//! Reproduces the three IGF experiments — area-estimation accuracy
//! (Figure 5), the Pareto curve (Figure 6) and device-constrained throughput
//! (Figure 7) — and additionally demonstrates the filter functionally on a
//! synthetic image.
//!
//! Run with `cargo run -p isl-examples --bin gaussian_blur_study --release`.

#![forbid(unsafe_code)]

use isl_hls::algorithms::gaussian_igf;
use isl_hls::prelude::*;
use isl_hls::sim::synthetic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let algo = gaussian_igf();
    let flow = IslFlow::from_algorithm(&algo)?;
    let device = Device::virtex6_xc6vlx760();

    // -- functional demonstration -----------------------------------------
    let sim = flow.simulator()?;
    let image = synthetic::checkerboard(64, 48, 4);
    let init = FrameSet::from_frames(vec![image.clone()])?;
    let blurred = sim.run(&init, flow.iterations())?;
    let var = |f: &Frame| {
        let m = f.mean();
        f.as_slice().iter().map(|v| (v - m) * (v - m)).sum::<f64>() / f.len() as f64
    };
    println!("== functional check: 10-iteration blur on a 64x48 checkerboard ==");
    println!("  variance before: {:.4}", var(&image));
    println!("  variance after:  {:.4}", var(blurred.frame(0)));

    // -- Figure 5: area estimation accuracy ---------------------------------
    let windows: Vec<Window> = (1..=9).map(Window::square).collect();
    let depths = [1u32, 2, 3, 4, 5];
    let v = flow.validate_area_model(&device, &windows, &depths, 2)?;
    println!("\n== Figure 5: IGF area estimation (actual vs Eq.1) ==");
    println!("  paper: max error 6.58 %, avg 2.93 %");
    println!(
        "  ours:  max error {:.2} %, avg {:.2} % over {} points",
        v.max_error_pct,
        v.avg_error_pct,
        v.rows.len()
    );
    println!(
        "  estimation cost: {:.0} s of modeled synthesis vs {:.0} s for the full grid",
        v.calibration_cpu_s, v.full_synthesis_cpu_s
    );

    // -- Figure 6: Pareto curve ----------------------------------------------
    let result = flow.explore(&device, flow.workload(1024, 768), &DesignSpace::paper())?;
    println!("\n== Figure 6: IGF Pareto curve (1024x768) ==");
    println!("  {} points evaluated, Pareto set:", result.points().len());
    println!("  kLUTs      time/frame   window depth cores");
    for p in result.pareto() {
        println!(
            "  {:>8.1}  {:>9.2} ms   {:>6} {:>5} {:>5}",
            p.estimated_luts / 1e3,
            p.time_per_frame_s * 1e3,
            p.arch.window.to_string(),
            p.arch.depth,
            p.arch.cores
        );
    }

    // -- Figure 7: throughput vs window on the packed device ------------------
    println!("\n== Figure 7: IGF throughput on Virtex-6 XC6VLX760 (1024x768) ==");
    println!("  paper: divisor depths (1, 2, 5) win; peak ~110 fps");
    println!("  window-area   d=1      d=2      d=3      d=4      d=5");
    for side in 2..=9u32 {
        print!("  {:>11}", side * side);
        for depth in 1..=5u32 {
            match flow.best_on_device(&device, Window::square(side), depth, flow.workload(1024, 768))
            {
                Ok(r) => print!("  {:>7.1}", r.fps),
                Err(_) => print!("   (infeasible)"),
            }
        }
        println!();
    }
    Ok(())
}
