//! Certify an explored architecture against the hardware datapath, end to
//! end: DSE picks a (window, depth, cores) instance, `verify_architecture`
//! proves the quantised engines bit-identical to their references and the
//! golden vectors mismatch-free, and the vector file + vector testbench
//! are written next to the VHDL so any external simulator can replay them.

use isl_hls::prelude::*;
use isl_hls::sim::synthetic;
use isl_hls::vhdl::{generate_cone, generate_vector_testbench, VhdlOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let algo = isl_hls::algorithms::gaussian_igf();
    let flow = IslFlow::from_algorithm(&algo)?;
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(2..=6, 1..=3, 8);
    let result = flow.explore(&device, flow.workload(48, 36), &space)?;
    let best = result.fastest().expect("feasible points exist");
    println!(
        "== DSE picked: window {}, depth {}, {} cores",
        best.arch.window, best.arch.depth, best.arch.cores
    );

    let init = FrameSet::from_frames(vec![synthetic::noise(48, 36, 7)])?;
    let cert = flow.verify_architecture(&init, best.arch)?;
    println!(
        "== certified: {} quantised elements bit-identical, {} cone firings / {} words mismatch-free",
        cert.quantized_elements, cert.vector_records, cert.vector_words
    );
    println!(
        "   fixed-point vs f64 drift after {} iterations: {:.3e} ({})",
        cert.iterations, cert.max_fixed_error, cert.format
    );

    let out = std::path::Path::new("target/cosim_verify");
    std::fs::create_dir_all(out)?;
    for file in &cert.vector_files {
        let cone = flow.build_cone(file.window, file.depth)?;
        let module = generate_cone(&cone, &VhdlOptions { format: cert.format });
        let tb = generate_vector_testbench(&module, file)?;
        let vec_path = out.join(format!("{}.vectors", file.entity));
        let tb_path = out.join(format!("tb_{}_vec.vhd", file.entity));
        std::fs::write(&vec_path, file.to_text())?;
        std::fs::write(&tb_path, tb)?;
        println!(
            "   wrote {} ({} firings) and {}",
            vec_path.display(),
            file.records.len(),
            tb_path.display()
        );
    }
    println!("Replay in any VHDL simulator: isl_fixed_pkg.vhd + entity + tb_*_vec.vhd.");
    Ok(())
}
