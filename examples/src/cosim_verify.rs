//! Certify an explored architecture against the hardware datapath, end to
//! end, through the staged API: DSE picks a (window, depth, cores)
//! instance, `certify` proves the quantised engines bit-identical to their
//! references and the golden vectors mismatch-free, and
//! `Certified::synthesize` packages vectors + replay testbenches + VHDL
//! into one directory where an external simulator run is one command.

#![forbid(unsafe_code)]

use isl_hls::prelude::*;
use isl_hls::sim::synthetic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let algo = isl_hls::algorithms::gaussian_igf();
    let session = IslSession::from_algorithm(&algo)?;
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(2..=6, 1..=3, 8);

    // Stages 3+4: estimate once, explore, pick the fastest instance.
    let explored = session.explore(&device, session.workload(48, 36), &space)?;
    let best = explored.fastest().expect("feasible points exist");
    println!(
        "== DSE picked: window {}, depth {}, {} cores",
        best.arch.window, best.arch.depth, best.arch.cores
    );

    // Stage 6: certify — quantised engines bitwise + golden vectors
    // word-for-word. The certificate (vectors included) lands in the
    // session store.
    let init = FrameSet::from_frames(vec![synthetic::noise(48, 36, 7)])?;
    let certified = explored.certify_fastest(&init)?;
    let cert = certified.certificate();
    println!(
        "== certified: {} quantised elements bit-identical, {} cone firings / {} words mismatch-free",
        cert.quantized_elements, cert.vector_records, cert.vector_words
    );
    println!(
        "   fixed-point vs f64 drift after {} iterations: {:.3e} ({})",
        cert.iterations, cert.max_fixed_error, cert.format
    );

    // Stage 5, vectors included: the bundle consumes the stored vectors.
    let out = std::path::Path::new("target/cosim_verify");
    let synthesized = certified.synthesize()?;
    let paths = synthesized.write_to(out)?;
    for path in &paths {
        println!("   wrote {}", path.display());
    }
    println!(
        "Replay everything in one command: cd {} && sh run_ghdl.sh",
        out.display()
    );

    // Certifying the same instance again is a pure store hit.
    let again = explored.certify_fastest(&init)?;
    assert_eq!(again.certificate(), certified.certificate());
    let stats = session.store_stats();
    println!(
        "(store: {} hits / {} builds across cones, programs, syntheses, vectors, certificates)",
        stats.total_hits(),
        stats.total_misses()
    );
    Ok(())
}
