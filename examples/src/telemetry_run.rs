//! One fully observed pipeline run: gaussian IGF through
//! Spec → Decomposed → Estimated → Explored → Synthesized → Certified →
//! FormatSearched with telemetry enabled, emitting all three sinks — the
//! human summary to stdout, and optionally the structured JSON run report
//! and the Perfetto-loadable Chrome trace:
//!
//! ```text
//! cargo run -p isl-examples --bin telemetry_run -- \
//!     [--telemetry out.json] [--trace out.trace.json]
//! ```

#![forbid(unsafe_code)]

use isl_hls::prelude::*;
use isl_hls::sim::synthetic;

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let algo = isl_hls::algorithms::gaussian_igf();

    // `with_telemetry` starts the global collector *before* parsing, so
    // the Spec stage is the first span on the record.
    let session = IslSession::with_telemetry(algo.source)?;
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(2..=5, 1..=3, 4);
    let (w, h) = (24u32, 18u32);

    // Stages 2–5: decompose one shape explicitly, explore the space,
    // synthesize the fastest point.
    let explored = session.explore(&device, session.workload(w, h), &space)?;
    let best = explored.fastest().expect("feasible points exist");
    session.decompose(best.arch.window, best.arch.depth)?;
    explored.synthesize_fastest()?;

    // Stages 6–7: certify the fastest point, then search the narrowest
    // format at least as accurate as the default.
    let init = FrameSet::from_frames(
        (0..session.pattern().fields().len())
            .map(|i| synthetic::noise(w as usize, h as usize, 0x5EED + i as u64))
            .collect(),
    )?;
    let certified = explored.certify_fastest(&init)?;
    let budget = ErrorBudget::max_abs(certified.certificate().max_quant_error);
    let searched = session.search_format(&device, &init, best.arch, budget)?;
    println!(
        "{}: w{} d{} at {} ({} probes)\n",
        algo.name,
        best.arch.window,
        best.arch.depth,
        searched.format(),
        searched.probes().len()
    );

    // The three sinks.
    let report = session.telemetry_report();
    println!("{report}");
    if let Some(path) = arg_value(&args, "--telemetry") {
        std::fs::write(&path, report.to_json())?;
        eprintln!("telemetry run report written to {path}");
    }
    if let Some(path) = arg_value(&args, "--trace") {
        std::fs::write(&path, report.chrome_trace())?;
        eprintln!("chrome trace written to {path} (load in ui.perfetto.dev)");
    }
    isl_hls::isl_telemetry::set_enabled(false);
    Ok(())
}
